"""Repository-level pytest configuration.

Makes the package importable straight from the source tree so the test and
benchmark suites run even when an editable install is not possible (offline
environments without the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
