"""Figure 9 — combined SVR + term scoring: Chunk-TermScore vs ID-TermScore.

Paper result: Chunk-TermScore's query time is significantly better than
ID-TermScore (early stopping via fancy lists and chunks) with comparable
update cost; its queries are even faster than the plain ID method's.
"""

from repro.bench.experiments import fig9_termscore


def test_fig9_termscore(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig9_termscore(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig9_termscore",
        "Figure 9: combining term scores (ID-TermScore vs Chunk-TermScore)",
        rows,
        columns=[
            "method", "avg_update_ms", "avg_query_ms", "query_pages",
            "query_io_ms", "long_list_mb",
        ],
    )
    by_method = {row["method"]: row for row in rows}
    chunk_ts = by_method["chunk_termscore"]
    id_ts = by_method["id_termscore"]
    # Chunk-TermScore reads no more pages per query than the full-scan baseline.
    assert chunk_ts["query_pages"] <= id_ts["query_pages"]
