"""Table 1 — size of the long inverted lists for every index method.

Paper result (805 MB corpus): ID 145 MB, Score 2,768 MB, Score-Threshold
847 MB, Chunk 146 MB, ID-TermScore 428 MB, Chunk-TermScore 430 MB.  The shape
to reproduce: Score ≫ Score-Threshold > TermScore variants ≫ Chunk ≈ ID.
"""

from repro.bench.experiments import table1_index_sizes


def test_table1_index_sizes(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: table1_index_sizes(bench_scale), rounds=1, iterations=1
    )
    report(
        "table1_index_sizes",
        "Table 1: size of long inverted lists",
        rows,
        columns=["method", "long_list_bytes", "long_list_mb", "build_seconds"],
    )
    sizes = {row["method"]: row["long_list_bytes"] for row in rows}
    assert sizes["score"] > sizes["score_threshold"] > sizes["chunk"]
    assert sizes["id_termscore"] > sizes["id"]
    assert sizes["chunk"] <= 1.5 * sizes["id"]
