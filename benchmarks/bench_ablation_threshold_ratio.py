"""Ablation (§5.3.1, "figures not shown") — Score-Threshold threshold ratio sweep.

Expected shape, mirroring Table 2 for the Chunk method: small ratios update the
short lists often (expensive updates, cheap queries); large ratios barely touch
them (cheap updates, long query scans).
"""

from repro.bench.experiments import ablation_threshold_ratio


def test_ablation_threshold_ratio(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: ablation_threshold_ratio(bench_scale), rounds=1, iterations=1
    )
    report(
        "ablation_threshold_ratio",
        "Ablation: Score-Threshold threshold ratio",
        rows,
        columns=["threshold_ratio", "avg_update_ms", "avg_query_ms", "query_pages"],
    )
    by_ratio = sorted(rows, key=lambda row: row["threshold_ratio"])
    # The smallest ratio must not have cheaper updates than the largest one.
    assert by_ratio[0]["avg_update_ms"] >= by_ratio[-1]["avg_update_ms"]
