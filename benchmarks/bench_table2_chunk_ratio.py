"""Table 2 — effect of the chunk ratio on update and query time.

Paper result: as the chunk ratio shrinks, per-update time rises (sharply once
chunks become small) while query time falls; the optimal ratio grows with the
mean update step size (≈6.12 for step 100, ≈21.48 for step 1,000).
"""

from repro.bench.experiments import table2_chunk_ratio


def test_table2_chunk_ratio(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: table2_chunk_ratio(bench_scale), rounds=1, iterations=1
    )
    report(
        "table2_chunk_ratio",
        "Table 2: effect of chunk ratio (per mean update step)",
        rows,
        columns=[
            "mean_step", "chunk_ratio", "avg_update_ms", "avg_query_ms",
            "update_pages", "query_pages", "query_io_ms",
        ],
    )
    # Shape check: for the smallest step, the smallest ratio must not have
    # cheaper updates than the largest ratio (smaller chunks => more short-list
    # maintenance), and the largest ratio must not have cheaper queries than
    # the smallest ratio (larger chunks => longer scans).
    smallest_step = min(row["mean_step"] for row in rows)
    step_rows = [row for row in rows if row["mean_step"] == smallest_step]
    by_ratio = sorted(step_rows, key=lambda row: row["chunk_ratio"])
    assert by_ratio[0]["avg_update_ms"] >= by_ratio[-1]["avg_update_ms"]
    assert by_ratio[-1]["query_pages"] >= by_ratio[0]["query_pages"]
