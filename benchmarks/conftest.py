"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper through
:mod:`repro.bench.experiments`, prints the resulting text table and stores it
under ``benchmarks/results/``.  The workload size is controlled by the
``REPRO_BENCH_SCALE`` environment variable (``smoke``, ``small`` — the default —
or ``medium``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.runner import BenchScale  # noqa: E402
from repro.bench.reporting import format_rows, save_report  # noqa: E402

_RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _selected_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name == "smoke":
        return BenchScale.smoke()
    if name == "medium":
        return BenchScale.medium()
    return BenchScale.small()


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    """The workload scale used by every benchmark in this run."""
    return _selected_scale()


@pytest.fixture
def report():
    """Callable that renders rows, prints them and saves them under results/."""

    def _report(name: str, title: str, rows, columns=None) -> str:
        text = format_rows(rows, columns=columns, title=title)
        print("\n" + text)
        save_report(name, text, directory=_RESULTS_DIR)
        return text

    return _report
