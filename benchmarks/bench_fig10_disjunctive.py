"""Figure 10 — disjunctive queries.

Paper result: disjunctive queries cost about the same as conjunctive ones for
the Score-Threshold / Chunk / Chunk-TermScore family (disk pages dominate), but
are *worse* for the ID family because many more candidates flow through the
result heap.
"""

from repro.bench.experiments import fig10_disjunctive


def test_fig10_disjunctive(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig10_disjunctive(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig10_disjunctive",
        "Figure 10: conjunctive vs disjunctive query time",
        rows,
        columns=["method", "conj_query_ms", "disj_query_ms", "conj_pages", "disj_pages"],
    )
    by_method = {row["method"]: row for row in rows}
    # The chunked methods touch a similar number of pages in both modes.
    chunk = by_method["chunk"]
    assert chunk["disj_pages"] <= 1.5 * max(chunk["conj_pages"], 1.0)
