"""Ablation (§4.3.2 design choice) — chunk-boundary strategies.

The paper tried equal-sized and exponentially growing/shrinking chunks before
settling on score-ratio boundaries; this ablation compares the three strategies
under the default workload.
"""

from repro.bench.experiments import ablation_chunk_boundaries


def test_ablation_chunk_boundaries(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: ablation_chunk_boundaries(bench_scale), rounds=1, iterations=1
    )
    report(
        "ablation_chunk_boundaries",
        "Ablation: chunk boundary strategies",
        rows,
        columns=["strategy", "avg_update_ms", "avg_query_ms", "query_pages"],
    )
    assert {row["strategy"] for row in rows} == {"ratio", "equal_count", "exponential"}
