"""Figure 7 — update and query time as the number of score updates grows.

Paper result: the Score method's update cost is orders of magnitude above
everything else (≈17 s vs ≈0.01 ms); the ID method has the cheapest updates but
flat, expensive queries; Score-Threshold and Chunk combine near-ID update cost
with near-Score query cost, Chunk slightly ahead on queries.
"""

from repro.bench.experiments import fig7_varying_updates


def test_fig7_varying_updates(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig7_varying_updates(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig7_varying_updates",
        "Figure 7: varying the number of score updates",
        rows,
        columns=[
            "method", "updates", "updates_measured", "avg_update_ms",
            "avg_query_ms", "query_pages", "query_io_ms",
        ],
    )
    final = {row["method"]: row for row in rows if row["updates"] == max(r["updates"] for r in rows)}
    # Score updates are orders of magnitude more expensive than Chunk updates.
    assert final["score"]["avg_update_ms"] > 20 * final["chunk"]["avg_update_ms"]
    # The ID method scans everything: it must read at least as many pages per
    # query as the Chunk method, which stops early.
    assert final["id"]["query_pages"] >= final["chunk"]["query_pages"]
