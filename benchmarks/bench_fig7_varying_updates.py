"""Figure 7 — update and query time as the number of score updates grows.

Paper result: the Score method's update cost is orders of magnitude above
everything else (≈17 s vs ≈0.01 ms); the ID method has the cheapest updates but
flat, expensive queries; Score-Threshold and Chunk combine near-ID update cost
with near-Score query cost, Chunk slightly ahead on queries.

``test_fig7_batched_storm`` is the batched mode measured against this
per-update baseline: the same storm applied through ``apply_score_updates``
windows must be at least 2x faster overall while answering the query workload
identically.
"""

from repro.bench.experiments import fig7_batched_storm, fig7_varying_updates


def test_fig7_varying_updates(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig7_varying_updates(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig7_varying_updates",
        "Figure 7: varying the number of score updates",
        rows,
        columns=[
            "method", "updates", "updates_measured", "avg_update_ms",
            "avg_query_ms", "query_pages", "query_io_ms",
        ],
    )
    final = {row["method"]: row for row in rows if row["updates"] == max(r["updates"] for r in rows)}
    # Score updates are orders of magnitude more expensive than Chunk updates.
    assert final["score"]["avg_update_ms"] > 20 * final["chunk"]["avg_update_ms"]
    # The ID method scans everything: it must read at least as many pages per
    # query as the Chunk method, which stops early.
    assert final["id"]["query_pages"] >= final["chunk"]["query_pages"]


def test_fig7_batched_storm(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig7_batched_storm(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig7_batched_storm",
        "Figure 7 companion: per-update vs batched application of the storm",
        rows,
        columns=[
            "method", "updates", "batch_size", "avg_update_ms_single",
            "avg_update_ms_batched", "speedup", "update_pages_single",
            "update_pages_batched", "results_match",
        ],
    )
    # The batched write path must leave the read path answer-equivalent.
    assert all(row["results_match"] for row in rows)
    by_method = {row["method"]: row for row in rows}
    # The Score method is where batching pays: its per-update tree probes
    # collapse into sorted leaf-run passes.
    assert by_method["score"]["speedup"] >= 2.0
    # The storm as a whole (dominated by the Score method) must be >= 2x faster.
    single_total = sum(row["avg_update_ms_single"] * row["updates"] for row in rows)
    batched_total = sum(row["avg_update_ms_batched"] * row["updates"] for row in rows)
    assert single_total >= 2.0 * batched_total
