"""Table 3 (Appendix A.3) — document insertions against the Chunk method.

Paper result: query time stays essentially flat as documents are inserted;
score-update cost rises moderately (longer short lists); per-insertion cost
jumps once the accumulated short lists outgrow the hot cache but remains
acceptable (the paper reports ≈0.5 s per 2,000-term document).

``test_table3_insertions_batched`` re-runs the experiment with the score-update
sample applied through the batched pipeline — the batched mode measured
against the per-update baseline.
"""

from repro.bench.experiments import table3_insertions


def _check_table3_invariants(rows):
    # Query cost must stay roughly flat while insertions accumulate.
    query_times = [row["avg_query_ms"] for row in rows]
    assert max(query_times) <= 3.0 * max(min(query_times), 0.001)
    # Short lists grow monotonically with the number of inserted documents.
    sizes = [row["short_list_bytes"] for row in rows]
    assert sizes == sorted(sizes)


def test_table3_insertions(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: table3_insertions(bench_scale), rounds=1, iterations=1
    )
    report(
        "table3_insertions",
        "Table 3: varying the number of document insertions (Chunk method)",
        rows,
        columns=[
            "inserted_docs", "avg_query_ms", "avg_score_update_ms",
            "avg_insertion_ms", "short_list_bytes",
        ],
    )
    _check_table3_invariants(rows)


def test_table3_insertions_batched(benchmark, bench_scale, report):
    def run_both():
        baseline = table3_insertions(bench_scale)
        batched = table3_insertions(bench_scale, batched_score_updates=True)
        return baseline, batched

    baseline, batched = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "table3_insertions_batched",
        "Table 3 companion: score-update sample applied per-update vs batched",
        batched,
        columns=[
            "inserted_docs", "update_mode", "avg_query_ms",
            "avg_score_update_ms", "avg_insertion_ms", "short_list_bytes",
        ],
    )
    # The batched sample must respect the same shape invariants ...
    _check_table3_invariants(batched)
    # ... and batching must not make the update sample slower.  The sample is
    # dominated by cheap Score-table writes (sub-millisecond averages), so the
    # comparison aggregates over all levels rather than judging single rows
    # whose wall clock a scheduler hiccup could swamp.
    single_total = sum(row["avg_score_update_ms"] for row in baseline)
    batched_total = sum(row["avg_score_update_ms"] for row in batched)
    assert batched_total <= 1.2 * max(single_total, 0.004)
