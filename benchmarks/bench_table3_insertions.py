"""Table 3 (Appendix A.3) — document insertions against the Chunk method.

Paper result: query time stays essentially flat as documents are inserted;
score-update cost rises moderately (longer short lists); per-insertion cost
jumps once the accumulated short lists outgrow the hot cache but remains
acceptable (the paper reports ≈0.5 s per 2,000-term document).
"""

from repro.bench.experiments import table3_insertions


def test_table3_insertions(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: table3_insertions(bench_scale), rounds=1, iterations=1
    )
    report(
        "table3_insertions",
        "Table 3: varying the number of document insertions (Chunk method)",
        rows,
        columns=[
            "inserted_docs", "avg_query_ms", "avg_score_update_ms",
            "avg_insertion_ms", "short_list_bytes",
        ],
    )
    # Query cost must stay roughly flat while insertions accumulate.
    query_times = [row["avg_query_ms"] for row in rows]
    assert max(query_times) <= 3.0 * max(min(query_times), 0.001)
    # Short lists grow monotonically with the number of inserted documents.
    sizes = [row["short_list_bytes"] for row in rows]
    assert sizes == sorted(sizes)
