"""Storage-engine microbenchmarks with a committed performance trajectory.

Unlike the ``bench_fig*``/``bench_table*`` modules, which reproduce the paper's
figures, this script times the *shared storage engine* directly: the B+-tree
insert/update path every index method bottoms out in, and the long-list page
decoding path every query scan bottoms out in.  Results are appended to
``BENCH_storage_micro.json`` at the repository root so each PR leaves a
timing trajectory future PRs must not regress.

Usage::

    PYTHONPATH=src python benchmarks/bench_storage_micro.py              # print only
    PYTHONPATH=src python benchmarks/bench_storage_micro.py --append \
        --label my-change                                                # record
    PYTHONPATH=src python benchmarks/bench_storage_micro.py --check      # CI gate

``--check`` compares the freshly measured throughput against the most recent
committed entry for the same scale and exits non-zero when any benchmark is
more than ``--tolerance`` (default 30%) slower — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.posting import (  # noqa: E402
    ChunkRun,
    LazyBytesReader,
    Posting,
    build_rekey_operations,
    encode_chunk_runs,
    encode_id_postings,
    iter_chunk_postings_lazy,
    iter_id_postings_lazy,
)
from repro.storage.environment import StorageEnvironment  # noqa: E402

RESULTS_PATH = _REPO_ROOT / "BENCH_storage_micro.json"

#: (num_postings_per_term, num_terms, num_updates, decode_postings,
#:  macro_docs = corpus size of the query-path macrobenchmarks)
SCALES = {
    "smoke": dict(docs=2000, terms=40, updates=2000, decode_postings=120_000,
                  macro_docs=250),
    "full": dict(docs=8000, terms=120, updates=10_000, decode_postings=400_000,
                 macro_docs=1000),
}


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def bench_btree_insert(docs: int, terms: int, **_: object) -> dict:
    """Bulk-build the Score method's clustered list: (term, -score, doc_id) keys.

    This is the insert-heavy path of every index build; per-insert costs in
    ``BPlusTree`` dominate it.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(7)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    operations = 0
    start = time.perf_counter()
    for doc_id in range(docs):
        score = scores[doc_id]
        for term in range(terms // 8):
            store.put((f"t{(doc_id + term) % terms:04d}", -score, doc_id), None)
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_btree_score_update(docs: int, terms: int, updates: int, **_: object) -> dict:
    """The Score-method update path: re-key one posting per distinct term.

    Each simulated score update deletes the posting under the old score key and
    reinserts it under the new one — the delete+insert storm that makes the
    Score method orders of magnitude slower than the others (Fig 7), and the
    insert/update microbench the PR targets aim at.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(11)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    doc_terms = {
        doc_id: [f"t{(doc_id + k) % terms:04d}" for k in range(terms // 8)]
        for doc_id in range(docs)
    }
    for doc_id in range(docs):
        for term in doc_terms[doc_id]:
            store.put((term, -scores[doc_id], doc_id), None)
    operations = 0
    start = time.perf_counter()
    for update in range(updates):
        doc_id = rng.randrange(docs)
        old_score = scores[doc_id]
        new_score = max(0.0, old_score + rng.uniform(-50.0, 50.0))
        scores[doc_id] = new_score
        for term in doc_terms[doc_id]:
            store.delete_if_present((term, -old_score, doc_id))
            store.put((term, -new_score, doc_id), None)
            operations += 2
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_btree_batch_update(docs: int, terms: int, updates: int, **_: object) -> dict:
    """The batched Score-method update path: bulk re-keying via sorted passes.

    Applies the same update stream as :func:`bench_btree_score_update` but in
    windows: each window's delete and insert keys are coalesced per document,
    sorted, and applied through ``delete_many``/``insert_many``, which descend
    once per leaf run instead of once per key.  ``operations`` counts the same
    logical delete+insert pairs as the per-update bench, so the ops/s ratio of
    the two entries is the batching speedup the trajectory tracks.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(11)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    doc_terms = {
        doc_id: [f"t{(doc_id + k) % terms:04d}" for k in range(terms // 8)]
        for doc_id in range(docs)
    }
    for doc_id in range(docs):
        for term in doc_terms[doc_id]:
            store.put((term, -scores[doc_id], doc_id), None)
    window = 1000
    operations = 0
    start = time.perf_counter()
    for base in range(0, updates, window):
        first_old: dict[int, float] = {}
        final: dict[int, float] = {}
        for _ in range(min(window, updates - base)):
            doc_id = rng.randrange(docs)
            old_score = scores[doc_id]
            new_score = max(0.0, old_score + rng.uniform(-50.0, 50.0))
            scores[doc_id] = new_score
            first_old.setdefault(doc_id, old_score)
            final[doc_id] = new_score
            operations += 2 * len(doc_terms[doc_id])
        coalesced = [
            (doc_id, first_old[doc_id], new_score)
            for doc_id, new_score in final.items()
        ]
        deletes, inserts = build_rekey_operations(
            coalesced, lambda doc_id: doc_terms[doc_id]
        )
        store.delete_many(deletes, ignore_missing=True)
        store.put_many((key, None) for key in inserts)
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_decode_id_list(decode_postings: int, **_: object) -> dict:
    """Full lazy scan of one long ID-ordered inverted list, term scores included.

    The list is written to a heap file and decoded page-at-a-time through
    ``LazyBytesReader`` — the exact code path of the ID/ID-TermScore query scan.
    """
    env = StorageEnvironment(cache_pages=65536, page_size=4096)
    heap = env.create_heapfile("bench.longlists")
    postings = [
        Posting(doc_id=3 * index + 1, term_score=0.25) for index in range(decode_postings)
    ]
    handle = heap.write(encode_id_postings(postings, with_term_scores=True))
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        reader = LazyBytesReader(heap.iter_pages(handle))
        for posting in iter_id_postings_lazy(reader):
            operations += 1
    elapsed = time.perf_counter() - start
    checksum = postings[-1].doc_id
    return {"seconds": elapsed, "operations": operations, "checksum": checksum}


def bench_decode_chunk_list(decode_postings: int, **_: object) -> dict:
    """Full lazy scan of one chunked long list (the Chunk-method query scan)."""
    env = StorageEnvironment(cache_pages=65536, page_size=4096)
    heap = env.create_heapfile("bench.chunklists")
    chunk_size = 512
    runs = []
    doc_id = 1
    for chunk_id in range(decode_postings // chunk_size, 0, -1):
        chunk = tuple(Posting(doc_id=doc_id + 2 * i) for i in range(chunk_size))
        doc_id += 2 * chunk_size
        runs.append(ChunkRun(chunk_id=chunk_id, postings=chunk))
    handle = heap.write(encode_chunk_runs(runs))
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        reader = LazyBytesReader(heap.iter_pages(handle))
        for _chunk_id, _doc_id, _term_score in iter_chunk_postings_lazy(reader):
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_prefix_scan(docs: int, terms: int, **_: object) -> dict:
    """Short-list prefix scans: every method's query path over (term, ...) keys."""
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.shortlists")
    for doc_id in range(docs):
        for k in range(terms // 8):
            term = f"t{(doc_id + k) % terms:04d}"
            store.put((term, doc_id), ("update", 0.5))
    operations = 0
    start = time.perf_counter()
    for rep in range(3):
        for term_id in range(terms):
            for _key, _value in store.prefix_items((f"t{term_id:04d}",)):
                operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def _build_macro_index(shards: int, macro_docs: int, path: "str | None" = None):
    """A Chunk-method text index over a synthetic corpus (the macrobench rig)."""
    from repro.core.text_index import SVRTextIndex
    from repro.workloads.synthetic import SyntheticCorpusConfig, generate_corpus

    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_docs=macro_docs, terms_per_doc=40,
            num_distinct_terms=macro_docs * 4, seed=7,
        )
    )
    index = SVRTextIndex(
        method="chunk", shards=shards, cache_pages=4096, page_size=512,
        chunk_ratio=2.2, min_chunk_size=10, path=path,
    )
    for document in corpus.iter_documents():
        index.add_document_terms(document.doc_id, document.terms, document.score)
    index.finalize()
    return index, corpus


def _macro_queries(corpus, count: int = 24):
    from repro.workloads.queries import QueryWorkload, QueryWorkloadConfig

    config = QueryWorkloadConfig(num_queries=count, selectivity="unselective",
                                 k=10, seed=23)
    frequent = corpus.frequent_terms(
        max(config.candidate_pool_size(corpus.config.num_distinct_terms), 2)
    )
    return QueryWorkload(config, frequent,
                         vocabulary_size=corpus.config.num_distinct_terms).generate()


def bench_query_macro(macro_docs: int, **_: object) -> dict:
    """End-to-end cold-cache top-k queries through the single-pool engine.

    The paper's §5.2 query path in one number: drop the long-list pages, run a
    conjunctive top-10 query, repeat over an unselective workload.  This is
    the macrobench the ROADMAP asked for to keep codec/engine wins honest at
    the query level, not just in isolated decode loops.
    """
    index, corpus = _build_macro_index(shards=1, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    for query in queries:  # warm the Score table / short lists
        index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            index.drop_long_list_cache()
            index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_file_backed_query_macro(macro_docs: int, **_: object) -> dict:
    """Cold-cache top-k queries through the durable file-backed engine.

    The same rig as :func:`bench_query_macro`, but the index lives on a
    :class:`~repro.storage.persistence.file_disk.FileBackedDisk`: the build is
    checkpointed so the long-list pages reside in ``pages.dat``, and every
    cold-cache query pays real file reads through the buffer pool.  The ratio
    of this entry to ``query_macro`` is the end-to-end durability tax the
    trajectory tracks (the simulated I/O counters are identical by
    construction — only wall-clock differs).
    """
    import shutil
    import tempfile

    storage_dir = tempfile.mkdtemp(prefix="repro-bench-file-")
    try:
        index, corpus = _build_macro_index(
            shards=1, macro_docs=macro_docs, path=storage_dir + "/index"
        )
        index.checkpoint()  # long lists now live in pages.dat, not the WAL
        queries = _macro_queries(corpus)
        for query in queries:  # warm the Score table / short lists
            index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
        rounds = 3
        operations = 0
        start = time.perf_counter()
        for _ in range(rounds):
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
                operations += 1
        elapsed = time.perf_counter() - start
        index.close()
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)
    return {"seconds": elapsed, "operations": operations}


def bench_sharded_query_throughput(macro_docs: int, **_: object) -> dict:
    """Mixed multi-client traffic against the 4-shard term-partitioned engine.

    Four simulated clients interleave top-k queries with batched score-update
    windows through ``MultiClientDriver`` — the sharded engine's intended
    workload.  ``operations`` counts queries + updates, so the entry tracks
    end-to-end mixed-traffic throughput across PRs.
    """
    from repro.workloads.multiclient import MultiClientConfig, MultiClientDriver
    from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig

    index, corpus = _build_macro_index(shards=4, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    updates = UpdateWorkload(
        UpdateWorkloadConfig(num_updates=40 * len(queries), seed=11),
        corpus.scores(),
    ).generate_list()
    driver = MultiClientDriver(
        MultiClientConfig(num_clients=4, query_fraction=0.5, batch_window=64,
                          seed=31),
        queries, updates,
    )
    start = time.perf_counter()
    result = driver.run(index)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "operations": result.queries_run + result.updates_applied,
        "checksum": round(result.shard_skew, 4),
    }


BENCHES = {
    "btree_insert": bench_btree_insert,
    "btree_score_update": bench_btree_score_update,
    "btree_batch_update": bench_btree_batch_update,
    "decode_id_list": bench_decode_id_list,
    "decode_chunk_list": bench_decode_chunk_list,
    "prefix_scan": bench_prefix_scan,
    "query_macro": bench_query_macro,
    "file_backed_query_macro": bench_file_backed_query_macro,
    "sharded_query_throughput": bench_sharded_query_throughput,
}


# ---------------------------------------------------------------------------
# Trajectory file handling
# ---------------------------------------------------------------------------


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _environment() -> str:
    """Coarse execution-environment tag for apples-to-apples comparisons.

    Absolute wall-clock differs wildly between a dev machine and a shared CI
    runner, so the regression gate only ever compares entries recorded in the
    same environment.
    """
    import os

    return "ci" if os.environ.get("CI") else "local"


def load_trajectory() -> list[dict]:
    if not RESULTS_PATH.exists():
        return []
    return json.loads(RESULTS_PATH.read_text())


def run_all(scale: str, reps: int = 3) -> dict:
    """Run every bench ``reps`` times and keep the best (fastest) repetition.

    The smoke benchmarks measure well under a second each; best-of-N filters
    out transient interference (a background process, a noisy CI neighbour)
    that would otherwise make the regression gate flake.
    """
    params = SCALES[scale]
    results = {}
    for name, bench in BENCHES.items():
        measured = min((bench(**params) for _ in range(max(1, reps))),
                       key=lambda m: m["seconds"])
        ops_per_sec = measured["operations"] / measured["seconds"] if measured["seconds"] else 0.0
        results[name] = {
            "seconds": round(measured["seconds"], 4),
            "operations": measured["operations"],
            "ops_per_sec": round(ops_per_sec, 1),
        }
        print(f"{name:24s} {measured['seconds']:8.3f}s  "
              f"{measured['operations']:>10d} ops  {ops_per_sec:>12.0f} ops/s")
    return results


def latest_entry_for_scale(trajectory: list[dict], scale: str,
                           environment: str) -> dict | None:
    """Most recent entry with the same scale *and* environment.

    Entries written before the environment tag existed default to "local".
    """
    for entry in reversed(trajectory):
        if (entry.get("scale") == scale
                and entry.get("environment", "local") == environment):
            return entry
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--append", action="store_true",
                        help="append this run to BENCH_storage_micro.json")
    parser.add_argument("--check", action="store_true",
                        help="fail when slower than the last committed entry")
    parser.add_argument("--label", default="")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown for --check")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per bench; the fastest is kept")
    args = parser.parse_args()

    trajectory = load_trajectory()
    environment = _environment()
    baseline = latest_entry_for_scale(trajectory, args.scale, environment)
    results = run_all(args.scale, reps=args.reps)

    status = 0
    if baseline is not None:
        print(f"\nvs committed entry {baseline.get('label', '?')!r} "
              f"({baseline.get('git', '?')}, {baseline.get('timestamp', '?')}, "
              f"{environment}):")
        for name, current in results.items():
            previous = baseline.get("results", {}).get(name)
            if not previous or not previous.get("ops_per_sec"):
                continue
            speedup = current["ops_per_sec"] / previous["ops_per_sec"]
            flag = ""
            if args.check and speedup < 1.0 - args.tolerance:
                flag = "  << REGRESSION"
                status = 1
            print(f"  {name:24s} {speedup:6.2f}x{flag}")
    elif args.check:
        print(f"no committed {environment} baseline for scale {args.scale} "
              f"- nothing to check (commit one from this environment to arm the gate)")

    if args.append:
        entry = {
            "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "git": _git_revision(),
            "label": args.label or "unlabelled",
            "scale": args.scale,
            "environment": environment,
            "python": sys.version.split()[0],
            "results": results,
        }
        trajectory.append(entry)
        RESULTS_PATH.write_text(json.dumps(trajectory, indent=1) + "\n")
        print("\nappended to", RESULTS_PATH)
    return status


if __name__ == "__main__":
    sys.exit(main())
