"""Storage-engine microbenchmarks with a committed performance trajectory.

Unlike the ``bench_fig*``/``bench_table*`` modules, which reproduce the paper's
figures, this script times the *shared storage engine* directly: the B+-tree
insert/update path every index method bottoms out in, and the long-list page
decoding path every query scan bottoms out in.  Results are appended to
``BENCH_storage_micro.json`` at the repository root so each PR leaves a
timing trajectory future PRs must not regress.

Usage::

    PYTHONPATH=src python benchmarks/bench_storage_micro.py              # print only
    PYTHONPATH=src python benchmarks/bench_storage_micro.py --append \
        --label my-change                                                # record
    PYTHONPATH=src python benchmarks/bench_storage_micro.py --check      # CI gate

``--check`` compares the freshly measured throughput against the most recent
committed entry for the same scale and exits non-zero when any benchmark is
more than ``--tolerance`` (default 30%) slower — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.posting import (  # noqa: E402
    ChunkRun,
    LazyBytesReader,
    Posting,
    block_codec_from_environ,
    build_rekey_operations,
    encode_blocked_chunk_runs,
    encode_blocked_id_postings,
    iter_blocked_chunk_postings_lazy,
    iter_blocked_id_postings_lazy,
)
from repro.storage.environment import StorageEnvironment  # noqa: E402

RESULTS_PATH = _REPO_ROOT / "BENCH_storage_micro.json"

#: (num_postings_per_term, num_terms, num_updates, decode_postings,
#:  macro_docs = corpus size of the query-path macrobenchmarks)
SCALES = {
    "smoke": dict(docs=2000, terms=40, updates=2000, decode_postings=120_000,
                  macro_docs=250),
    "full": dict(docs=8000, terms=120, updates=10_000, decode_postings=400_000,
                 macro_docs=1000),
}


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def bench_btree_insert(docs: int, terms: int, **_: object) -> dict:
    """Bulk-build the Score method's clustered list: (term, -score, doc_id) keys.

    This is the insert-heavy path of every index build; per-insert costs in
    ``BPlusTree`` dominate it.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(7)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    operations = 0
    start = time.perf_counter()
    for doc_id in range(docs):
        score = scores[doc_id]
        for term in range(terms // 8):
            store.put((f"t{(doc_id + term) % terms:04d}", -score, doc_id), None)
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_btree_score_update(docs: int, terms: int, updates: int, **_: object) -> dict:
    """The Score-method update path: re-key one posting per distinct term.

    Each simulated score update deletes the posting under the old score key and
    reinserts it under the new one — the delete+insert storm that makes the
    Score method orders of magnitude slower than the others (Fig 7), and the
    insert/update microbench the PR targets aim at.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(11)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    doc_terms = {
        doc_id: [f"t{(doc_id + k) % terms:04d}" for k in range(terms // 8)]
        for doc_id in range(docs)
    }
    for doc_id in range(docs):
        for term in doc_terms[doc_id]:
            store.put((term, -scores[doc_id], doc_id), None)
    operations = 0
    start = time.perf_counter()
    for update in range(updates):
        doc_id = rng.randrange(docs)
        old_score = scores[doc_id]
        new_score = max(0.0, old_score + rng.uniform(-50.0, 50.0))
        scores[doc_id] = new_score
        for term in doc_terms[doc_id]:
            store.delete_if_present((term, -old_score, doc_id))
            store.put((term, -new_score, doc_id), None)
            operations += 2
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_btree_batch_update(docs: int, terms: int, updates: int, **_: object) -> dict:
    """The batched Score-method update path: bulk re-keying via sorted passes.

    Applies the same update stream as :func:`bench_btree_score_update` but in
    windows: each window's delete and insert keys are coalesced per document,
    sorted, and applied through ``delete_many``/``insert_many``, which descend
    once per leaf run instead of once per key.  ``operations`` counts the same
    logical delete+insert pairs as the per-update bench, so the ops/s ratio of
    the two entries is the batching speedup the trajectory tracks.
    """
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.scorelists")
    rng = random.Random(11)
    scores = [rng.uniform(0.0, 1000.0) for _ in range(docs)]
    doc_terms = {
        doc_id: [f"t{(doc_id + k) % terms:04d}" for k in range(terms // 8)]
        for doc_id in range(docs)
    }
    for doc_id in range(docs):
        for term in doc_terms[doc_id]:
            store.put((term, -scores[doc_id], doc_id), None)
    window = 1000
    operations = 0
    start = time.perf_counter()
    for base in range(0, updates, window):
        first_old: dict[int, float] = {}
        final: dict[int, float] = {}
        for _ in range(min(window, updates - base)):
            doc_id = rng.randrange(docs)
            old_score = scores[doc_id]
            new_score = max(0.0, old_score + rng.uniform(-50.0, 50.0))
            scores[doc_id] = new_score
            first_old.setdefault(doc_id, old_score)
            final[doc_id] = new_score
            operations += 2 * len(doc_terms[doc_id])
        coalesced = [
            (doc_id, first_old[doc_id], new_score)
            for doc_id, new_score in final.items()
        ]
        deletes, inserts = build_rekey_operations(
            coalesced, lambda doc_id: doc_terms[doc_id]
        )
        store.delete_many(deletes, ignore_missing=True)
        store.put_many((key, None) for key in inserts)
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_decode_id_list(decode_postings: int, **_: object) -> dict:
    """Full lazy scan of one long ID-ordered inverted list, term scores included.

    The list is written to a heap file in the blocked layout and decoded
    page-at-a-time through ``LazyBytesReader`` — the exact code path of the
    ID/ID-TermScore query scan under the production (blocked) codec.  The
    block payload codec follows ``REPRO_BLOCK_CODEC``, so running the bench
    with ``groupvarint`` vs the ``varbyte`` default measures the group-varint
    decode speedup directly; ``extra["codec"]`` records which one was timed.
    """
    env = StorageEnvironment(cache_pages=65536, page_size=4096)
    heap = env.create_heapfile("bench.longlists")
    postings = [
        Posting(doc_id=3 * index + 1, term_score=0.25) for index in range(decode_postings)
    ]
    handle = heap.write(encode_blocked_id_postings(postings, with_term_scores=True))
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        reader = LazyBytesReader(heap.iter_pages(handle))
        for posting in iter_blocked_id_postings_lazy(reader):
            operations += 1
    elapsed = time.perf_counter() - start
    checksum = postings[-1].doc_id
    return {"seconds": elapsed, "operations": operations, "checksum": checksum,
            "extra": {"codec": block_codec_from_environ()}}


def bench_decode_chunk_list(decode_postings: int, **_: object) -> dict:
    """Full lazy scan of one blocked chunked long list (the Chunk query scan).

    Codec selection follows ``REPRO_BLOCK_CODEC`` exactly as in
    :func:`bench_decode_id_list`.
    """
    env = StorageEnvironment(cache_pages=65536, page_size=4096)
    heap = env.create_heapfile("bench.chunklists")
    chunk_size = 512
    runs = []
    doc_id = 1
    for chunk_id in range(decode_postings // chunk_size, 0, -1):
        chunk = tuple(Posting(doc_id=doc_id + 2 * i) for i in range(chunk_size))
        doc_id += 2 * chunk_size
        runs.append(ChunkRun(chunk_id=chunk_id, postings=chunk))
    handle = heap.write(encode_blocked_chunk_runs(runs))
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        reader = LazyBytesReader(heap.iter_pages(handle))
        for _chunk_id, _doc_id, _term_score in iter_blocked_chunk_postings_lazy(reader):
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations,
            "extra": {"codec": block_codec_from_environ()}}


def bench_prefix_scan(docs: int, terms: int, **_: object) -> dict:
    """Short-list prefix scans: every method's query path over (term, ...) keys."""
    env = StorageEnvironment(cache_pages=8192, page_size=4096)
    store = env.create_kvstore("bench.shortlists")
    for doc_id in range(docs):
        for k in range(terms // 8):
            term = f"t{(doc_id + k) % terms:04d}"
            store.put((term, doc_id), ("update", 0.5))
    operations = 0
    start = time.perf_counter()
    for rep in range(3):
        for term_id in range(terms):
            for _key, _value in store.prefix_items((f"t{term_id:04d}",)):
                operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def _build_macro_index(shards: int, macro_docs: int, path: "str | None" = None,
                       threads: int = 1):
    """A Chunk-method text index over a synthetic corpus (the macrobench rig)."""
    from repro.core.text_index import SVRTextIndex
    from repro.workloads.synthetic import SyntheticCorpusConfig, generate_corpus

    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_docs=macro_docs, terms_per_doc=40,
            num_distinct_terms=macro_docs * 4, seed=7,
        )
    )
    index = SVRTextIndex(
        method="chunk", shards=shards, threads=threads, cache_pages=4096,
        page_size=512, chunk_ratio=2.2, min_chunk_size=10, path=path,
    )
    for document in corpus.iter_documents():
        index.add_document_terms(document.doc_id, document.terms, document.score)
    index.finalize()
    return index, corpus


def _macro_queries(corpus, count: int = 24):
    from repro.workloads.queries import QueryWorkload, QueryWorkloadConfig

    config = QueryWorkloadConfig(num_queries=count, selectivity="unselective",
                                 k=10, seed=23)
    frequent = corpus.frequent_terms(
        max(config.candidate_pool_size(corpus.config.num_distinct_terms), 2)
    )
    return QueryWorkload(config, frequent,
                         vocabulary_size=corpus.config.num_distinct_terms).generate()


def bench_query_macro(macro_docs: int, **_: object) -> dict:
    """End-to-end cold-cache top-k queries through the single-pool engine.

    The paper's §5.2 query path in one number: drop the long-list pages, run a
    conjunctive top-10 query, repeat over an unselective workload.  This is
    the macrobench the ROADMAP asked for to keep codec/engine wins honest at
    the query level, not just in isolated decode loops.
    """
    index, corpus = _build_macro_index(shards=1, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    for query in queries:  # warm the Score table / short lists
        index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
    rounds = 3
    operations = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            index.drop_long_list_cache()
            index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
            operations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "operations": operations}


def bench_file_backed_query_macro(macro_docs: int, **_: object) -> dict:
    """Cold-cache top-k queries through the durable file-backed engine.

    The same rig as :func:`bench_query_macro`, but the index lives on a
    :class:`~repro.storage.persistence.file_disk.FileBackedDisk`: the build is
    checkpointed so the long-list pages reside in ``pages.dat``, and every
    cold-cache query pays real file reads through the buffer pool.  The ratio
    of this entry to ``query_macro`` is the end-to-end durability tax the
    trajectory tracks (the simulated I/O counters are identical by
    construction — only wall-clock differs).
    """
    import shutil
    import tempfile

    storage_dir = tempfile.mkdtemp(prefix="repro-bench-file-")
    try:
        index, corpus = _build_macro_index(
            shards=1, macro_docs=macro_docs, path=storage_dir + "/index"
        )
        index.checkpoint()  # long lists now live in pages.dat, not the WAL
        queries = _macro_queries(corpus)
        for query in queries:  # warm the Score table / short lists
            index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
        rounds = 3
        operations = 0
        start = time.perf_counter()
        for _ in range(rounds):
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
                operations += 1
        elapsed = time.perf_counter() - start
        index.close()
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)
    return {"seconds": elapsed, "operations": operations}


def bench_fault_overhead(macro_docs: int, **_: object) -> dict:
    """Cost of the fault-injection harness on the hot file-backed query path.

    Two interleaved passes over the :func:`bench_file_backed_query_macro` rig:
    one with no injector attached (production — every site takes the
    ``fault_injector is None`` fast path) and one with an *inert* injector
    attached (an enabled plan whose only spec is scheduled far past any
    occurrence count, so every site pays the full roll/bookkeeping slow path
    without ever faulting).  ``seconds``/``operations`` report the disabled
    pass — directly comparable to ``file_backed_query_macro`` across
    trajectory entries, which is how the "<5% with injection disabled" budget
    is tracked — and ``extra["attached_inert_vs_disabled"]`` reports the
    attached/disabled wall-clock ratio measured in this run (the worst-case
    ceiling: a *firing* plan costs more, a detached one costs the fast path).

    ``extra["disabled_vs_query_macro"]`` anchors the entry to a *same-run*
    memory-backed :func:`bench_query_macro` measurement: comparing two
    separate trajectory entries drifted with every unrelated macro-path
    change, which muddied the budget check; measuring both sides in one
    invocation removes that confound.
    """
    import shutil
    import tempfile

    from repro.storage.faults import FaultPlan, FaultSpec

    inert = FaultPlan(specs=(FaultSpec(op="read", kind="transient", at=10**15),))
    storage_dir = tempfile.mkdtemp(prefix="repro-bench-fault-")
    try:
        index, corpus = _build_macro_index(
            shards=1, macro_docs=macro_docs, path=storage_dir + "/index"
        )
        index.checkpoint()  # long lists now live in pages.dat, not the WAL
        queries = _macro_queries(corpus)
        for query in queries:  # warm the Score table / short lists
            index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
        rounds = 3
        operations = 0
        disabled = attached = 0.0
        for _ in range(rounds):
            index.clear_faults()
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
                operations += 1
            disabled += time.perf_counter() - start
            index.inject_faults(inert)
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
            attached += time.perf_counter() - start
        index.clear_faults()
        index.close()
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)
    ratio = attached / disabled if disabled else 0.0
    macro = bench_query_macro(macro_docs)
    macro_ops_per_sec = macro["operations"] / macro["seconds"]
    disabled_ops_per_sec = operations / disabled if disabled else 0.0
    return {
        "seconds": disabled,
        "operations": operations,
        "extra": {
            "attached_inert_vs_disabled": round(ratio, 3),
            "disabled_vs_query_macro": round(
                disabled_ops_per_sec / macro_ops_per_sec, 3
            ) if macro_ops_per_sec else 0.0,
        },
    }


def bench_obs_overhead(macro_docs: int, **_: object) -> dict:
    """Cost of the observability layer on the hot memory-backed query path.

    Two interleaved passes over the :func:`bench_query_macro` rig: one with
    tracing disabled (production default — every ``span()`` takes the
    ``tracing_enabled()`` fast path and only the always-on metrics registry
    records) and one under ``set_tracing(True)`` (full span trees, per-term
    slow-query attribution, block-scan spans).  ``seconds``/``operations``
    report the untraced pass — directly comparable to ``query_macro`` across
    trajectory entries — and ``extra["traced_vs_untraced"]`` reports the
    traced/untraced wall-clock ratio measured in this run (the acceptance
    budget is <= 1.05).

    ``extra["untraced_vs_query_macro"]`` anchors the entry to a *same-run*
    :func:`bench_query_macro` measurement, mirroring ``fault_overhead``:
    same-run anchoring avoids the drift that comparing two separate
    trajectory entries would reintroduce.
    """
    from repro.obs.trace import SLOW_QUERIES, set_tracing

    index, corpus = _build_macro_index(shards=1, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    for query in queries:  # warm the Score table / short lists
        index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
    rounds = 3
    operations = 0
    untraced = traced = 0.0
    previous = set_tracing(False)
    try:
        for _ in range(rounds):
            set_tracing(False)
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
                operations += 1
            untraced += time.perf_counter() - start
            set_tracing(True)
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
            traced += time.perf_counter() - start
    finally:
        set_tracing(previous)
        SLOW_QUERIES.clear()
    index.close()
    ratio = traced / untraced if untraced else 0.0
    macro = bench_query_macro(macro_docs)
    macro_ops_per_sec = macro["operations"] / macro["seconds"]
    untraced_ops_per_sec = operations / untraced if untraced else 0.0
    return {
        "seconds": untraced,
        "operations": operations,
        "extra": {
            "traced_vs_untraced": round(ratio, 3),
            "untraced_vs_query_macro": round(
                untraced_ops_per_sec / macro_ops_per_sec, 3
            ) if macro_ops_per_sec else 0.0,
        },
    }


def bench_explain_overhead(macro_docs: int, **_: object) -> dict:
    """Cost of EXPLAIN / EXPLAIN ANALYZE relative to the plain query path.

    Three interleaved passes over the :func:`bench_query_macro` rig: the
    plain cold-cache query pass (reported as ``seconds``/``operations``,
    directly comparable to ``query_macro``), a plan-only ``explain()`` pass
    (peek reads only — no query runs, so it should be *cheaper* than the
    query it describes), and an ``explain(analyze=True)`` pass (plan + the
    real query under tracing + actuals grafting — the diagnostic mode, where
    a small multiple is acceptable).  ``extra`` records both wall-clock
    ratios against the plain pass measured in this run, so the trajectory
    catches EXPLAIN quietly growing storage reads or analyze regressing past
    its diagnostic budget.
    """
    from repro.obs.trace import SLOW_QUERIES

    index, corpus = _build_macro_index(shards=1, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    for query in queries:  # warm the Score table / short lists
        index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
    rounds = 3
    operations = 0
    plain = explain_s = analyze_s = 0.0
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.search(query.keywords, k=query.k,
                             conjunctive=query.conjunctive)
                operations += 1
            plain += time.perf_counter() - start
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.explain(query.keywords, k=query.k,
                              conjunctive=query.conjunctive)
            explain_s += time.perf_counter() - start
            start = time.perf_counter()
            for query in queries:
                index.drop_long_list_cache()
                index.explain(query.keywords, k=query.k,
                              conjunctive=query.conjunctive, analyze=True)
            analyze_s += time.perf_counter() - start
    finally:
        SLOW_QUERIES.clear()  # analyze traces can cross the slow threshold
    index.close()
    return {
        "seconds": plain,
        "operations": operations,
        "extra": {
            "explain_vs_query": round(explain_s / plain, 3) if plain else 0.0,
            "analyze_vs_query": round(analyze_s / plain, 3) if plain else 0.0,
        },
    }


def bench_sharded_query_throughput(macro_docs: int, **_: object) -> dict:
    """Mixed multi-client traffic against the 4-shard term-partitioned engine.

    Four simulated clients interleave top-k queries with batched score-update
    windows through ``MultiClientDriver`` — the sharded engine's intended
    workload.  ``operations`` counts queries + updates, so the entry tracks
    end-to-end mixed-traffic throughput across PRs.
    """
    from repro.workloads.multiclient import MultiClientConfig, MultiClientDriver
    from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig

    index, corpus = _build_macro_index(shards=4, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    updates = UpdateWorkload(
        UpdateWorkloadConfig(num_updates=40 * len(queries), seed=11),
        corpus.scores(),
    ).generate_list()
    driver = MultiClientDriver(
        MultiClientConfig(num_clients=4, query_fraction=0.5, batch_window=64,
                          seed=31),
        queries, updates,
    )
    start = time.perf_counter()
    result = driver.run(index)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "operations": result.queries_run + result.updates_applied,
        "checksum": round(result.shard_skew, 4),
    }


def bench_parallel_query_throughput(macro_docs: int, **_: object) -> dict:
    """The concurrent execution subsystem under streaming-update service load.

    The paper's motivating regime — top-k queries answered *while* heavy
    score-update traffic streams in — on the same corpus as
    :func:`bench_sharded_query_throughput`: eight closed-loop clients, one
    update-heavy mix (160 updates per query at ``query_fraction=0.25``),
    against ``SVRTextIndex(shards=4, threads=4)``.  The router fans per-term
    query scans out across the single-writer shard executors and drains
    update windows that gather behind the writer lock as one combined batch
    (cross-client group application), which is where the wall-clock win over
    serial execution comes from.

    Honesty guard: each repetition *also* replays the identical per-client
    schedules serially (round-robin ``MultiClientDriver`` on a ``threads=1``
    index) and reports that run in
    ``extra["serial_same_mix_ops_per_sec"]`` — so the entry carries its own
    same-workload baseline alongside the latency profile, rather than only
    the mix-sensitive comparison against the ``sharded_query_throughput``
    entry.  ``operations`` counts queries + updates like every throughput
    entry here.
    """
    from repro.workloads.multiclient import MultiClientConfig, MultiClientDriver
    from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver
    from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig

    clients, query_fraction, window = 8, 0.25, 64
    index, corpus = _build_macro_index(shards=4, macro_docs=macro_docs)
    queries = _macro_queries(corpus)
    updates = UpdateWorkload(
        UpdateWorkloadConfig(num_updates=160 * len(queries), seed=11),
        corpus.scores(),
    ).generate_list()

    serial_driver = MultiClientDriver(
        MultiClientConfig(num_clients=clients, query_fraction=query_fraction,
                          batch_window=window, seed=31),
        queries, updates,
    )
    start = time.perf_counter()
    serial_result = serial_driver.run(index)
    serial_elapsed = time.perf_counter() - start
    serial_ops = serial_result.queries_run + serial_result.updates_applied
    index.close()

    index, _corpus = _build_macro_index(shards=4, macro_docs=macro_docs, threads=4)
    driver = ServiceLoadDriver(
        ServiceLoadConfig(num_clients=clients, query_fraction=query_fraction,
                          batch_window=window, seed=31),
        queries, updates,
    )
    start = time.perf_counter()
    result = driver.run(index)
    elapsed = time.perf_counter() - start
    index.close()
    return {
        "seconds": elapsed,
        "operations": result.queries_run + result.updates_applied,
        "checksum": round(result.shard_load.skew, 4) if result.shard_load else 0.0,
        "extra": {
            "p50_query_ms": round(result.query_latency_ms(0.50), 3),
            "p95_query_ms": round(result.query_latency_ms(0.95), 3),
            "p99_query_ms": round(result.query_latency_ms(0.99), 3),
            "combined_windows": result.combined_windows,
            "serial_same_mix_ops_per_sec": round(serial_ops / serial_elapsed, 1),
        },
    }


def bench_block_skip_query(macro_docs: int, **_: object) -> dict:
    """Block-max pruned top-k queries through the parallel fan-out.

    A zipf-skewed corpus (few hot terms with very long lists) queried
    conjunctive top-5 through ``IndexRouter(shards=4, threads=4)`` with the
    blocked codec and pruning on — the regime where the executor-side stream
    pumps consult the shared heap threshold and stop decoding at block
    granularity.  ``extra["blocks_skipped"]`` records how many blocks the
    skip step avoided reading (the pruning-effectiveness signal the
    trajectory tracks alongside the throughput number); a drop to zero means
    the skip step silently stopped firing even if wall-clock looks fine.
    """
    from repro.core.index_router import IndexRouter

    # The skip step needs lists long enough that the heap floor passes a
    # block bound, and a post-build update storm (updates promote documents
    # into the short lists, which is what arms the pruning bound) — below
    # ~4000 documents the whole workload fits ahead of the floor and nothing
    # skips, so both scales share that minimum.
    n_docs = max(4000, macro_docs * 4)
    terms = [f"t{i:02d}" for i in range(12)]
    rng = random.Random(3)
    router = IndexRouter.build("score_threshold", shard_count=4, threads=4,
                               page_size=512, cache_pages=4096,
                               threshold_ratio=1.2)
    for doc_id in range(n_docs):
        count = rng.randint(3, 8)
        chosen = [terms[min(int(rng.paretovariate(1.3)) % 12, 11)]
                  for _ in range(count)]
        router.add_document(doc_id, rng.expovariate(0.002) + 1.0, terms=chosen)
    router.finalize()
    update_rng = random.Random(99)
    for _ in range(150):
        router.update_score(update_rng.randrange(n_docs),
                            update_rng.expovariate(0.002) + 1.0)
    if router._pool is not None:
        # Lazy pumps make the page/skip accounting deterministic across runs.
        router._pool.scatter = False
    queries = [(["t00", "t01"], 5, True), (["t00"], 5, False),
               (["t01", "t02"], 3, False), (["t03", "t05", "t07"], 5, False)]
    rounds = 3
    operations = skipped = pages = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for keywords, k, conjunctive in queries:
            router.drop_long_list_cache()
            response = router.query(keywords, k=k, conjunctive=conjunctive)
            skipped += response.stats.blocks_skipped
            pages += response.stats.pages_read
            operations += 1
    elapsed = time.perf_counter() - start
    router.shutdown()
    return {
        "seconds": elapsed,
        "operations": operations,
        "extra": {"blocks_skipped": skipped, "pages_read": pages},
    }


def bench_adaptive_batch_window(docs: int, terms: int, updates: int,
                                **_: object) -> dict:
    """Adaptive vs fixed update windows on a fig7-style batched storm.

    Runs the same Chunk-method update storm through
    ``apply_updates_batched`` once per fixed candidate window — 64, 256 (the
    pre-adaptive default) and 1024 (past the fig7 experiment's 1000) — and
    once with the adaptive controller, each against a fresh index over a
    shared cache-pressured corpus.  The controller hill-climbs on measured
    per-update cost, so it discovers that this engine's sorted bulk passes
    keep getting cheaper with window size and converges near its
    ``max_batch`` guardrail (the stall bound a service configures) — beating
    every fixed candidate without anyone picking a number.  The reported
    throughput is the adaptive run's; ``extra`` records each fixed
    candidate's ops/s and the converged window, which is the evidence behind
    ``apply_updates_batched(adaptive=True)`` being the default.
    """
    from dataclasses import replace

    from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup
    from repro.workloads.synthetic import SyntheticCorpusConfig

    # The storm must be long enough for the controller's geometric ramp to
    # amortize (it reaches max_batch within ~16k updates), whatever the
    # scale's own update count is.
    del updates
    scale = replace(
        BenchScale.small(),
        corpus=SyntheticCorpusConfig(num_docs=600, terms_per_doc=60,
                                     num_distinct_terms=5000, seed=7),
        cache_pages=192,
        num_updates=20_000,
    )
    runner = ExperimentRunner(scale)
    stream = runner.make_updates()
    setup = MethodSetup("chunk")
    extra: dict = {}

    def run_mode(adaptive: bool, batch_size: int) -> tuple[float, int, float]:
        index, _build_s = runner.build_index(setup)
        start = time.perf_counter()
        metrics = runner.apply_updates_batched(
            index, stream, batch_size=batch_size, adaptive=adaptive
        )
        elapsed = time.perf_counter() - start
        return elapsed, metrics.operations, metrics.extra.get("batch_window", 0.0)

    for fixed in (64, 256, 1024):
        elapsed, operations, _window = run_mode(adaptive=False, batch_size=fixed)
        extra[f"fixed_{fixed}_ops_per_sec"] = round(operations / elapsed, 1)
    elapsed, operations, window = run_mode(adaptive=True, batch_size=256)
    extra["adaptive_window"] = window
    return {"seconds": elapsed, "operations": operations, "extra": extra}


def bench_buffer_policy_scan(docs: int, terms: int, **_: object) -> dict:
    """Scan-resistance of the midpoint-insertion pool vs plain LRU.

    The fig7-shaped access pattern in miniature: a hot set (the Score table
    and short lists) is touched between cold long-list scans that are larger
    than the cache.  Under plain LRU every scan flushes the hot set; under
    ``BufferPool(policy="midpoint")`` scanned pages die in the probationary
    segment and the hot set stays protected.  ``extra`` records both hit
    rates; the reported ops/s is the midpoint run's (hits are ~free, so
    scan resistance shows up as throughput too).
    """
    from repro.storage.buffer_pool import BufferPool
    from repro.storage.disk import SimulatedDisk

    cache_pages = 256
    hot_pages = 128       # fits the midpoint policy's protected segment (160)
    hot_reps = 8          # Score-table/short-list touches between scans
    scan_pages = 1024     # one long-list scan, 4x the whole cache
    rounds = max(4, docs // 500)

    def run_policy(policy: str) -> tuple[float, int, float, int]:
        disk = SimulatedDisk(page_size=4096)
        pool = BufferPool(disk, capacity_pages=cache_pages, policy=policy)
        page_ids = [pool.allocate().page_id for _ in range(hot_pages + scan_pages)]
        hot = page_ids[:hot_pages]
        cold = page_ids[hot_pages:]
        pool.drop()
        pool.stats.reset()
        disk.stats.reset()
        operations = 0
        start = time.perf_counter()
        for _round in range(rounds):
            for _rep in range(hot_reps):
                for page_id in hot:
                    pool.get(page_id)
                    operations += 1
            for page_id in cold:  # the cold sequential long-list scan
                pool.get(page_id)
                operations += 1
        elapsed = time.perf_counter() - start
        return elapsed, operations, pool.stats.hit_rate, disk.stats.reads

    _lru_s, _lru_ops, lru_hit_rate, lru_reads = run_policy("lru")
    elapsed, operations, midpoint_hit_rate, midpoint_reads = run_policy("midpoint")
    return {
        "seconds": elapsed,
        "operations": operations,
        "extra": {
            "lru_hit_rate": round(lru_hit_rate, 4),
            "midpoint_hit_rate": round(midpoint_hit_rate, 4),
            "lru_disk_reads": lru_reads,
            "midpoint_disk_reads": midpoint_reads,
        },
    }


BENCHES = {
    "btree_insert": bench_btree_insert,
    "btree_score_update": bench_btree_score_update,
    "btree_batch_update": bench_btree_batch_update,
    "decode_id_list": bench_decode_id_list,
    "decode_chunk_list": bench_decode_chunk_list,
    "prefix_scan": bench_prefix_scan,
    "query_macro": bench_query_macro,
    "file_backed_query_macro": bench_file_backed_query_macro,
    "fault_overhead": bench_fault_overhead,
    "obs_overhead": bench_obs_overhead,
    "explain_overhead": bench_explain_overhead,
    "sharded_query_throughput": bench_sharded_query_throughput,
    "parallel_query_throughput": bench_parallel_query_throughput,
    "block_skip_query": bench_block_skip_query,
    "adaptive_batch_window": bench_adaptive_batch_window,
    "buffer_policy_scan": bench_buffer_policy_scan,
}


# ---------------------------------------------------------------------------
# Trajectory file handling
# ---------------------------------------------------------------------------


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _environment() -> str:
    """Execution-environment tag for apples-to-apples comparisons.

    Absolute wall-clock differs wildly between a dev machine and a shared CI
    runner, so the regression gate only ever compares entries recorded in the
    same environment.  Beyond the coarse ci/local split the tag carries the
    dimensions that actually move these numbers between hosts: the core count
    (the parallel throughput entries are meaningless without it), the Python
    minor version, and ``PYTHONHASHSEED`` (hash randomisation perturbs dict
    iteration order in the build paths).
    """
    import os

    base = "ci" if os.environ.get("CI") else "local"
    return (
        f"{base}/cores={os.cpu_count()}"
        f"/py{sys.version_info.major}.{sys.version_info.minor}"
        f"/hashseed={os.environ.get('PYTHONHASHSEED', 'random')}"
    )


def load_trajectory() -> list[dict]:
    if not RESULTS_PATH.exists():
        return []
    return json.loads(RESULTS_PATH.read_text())


def run_all(scale: str, reps: int = 3) -> dict:
    """Run every bench ``reps`` times and keep the best (fastest) repetition.

    The smoke benchmarks measure well under a second each; best-of-N filters
    out transient interference (a background process, a noisy CI neighbour)
    that would otherwise make the regression gate flake.
    """
    params = SCALES[scale]
    results = {}
    for name, bench in BENCHES.items():
        measured = min((bench(**params) for _ in range(max(1, reps))),
                       key=lambda m: m["seconds"])
        ops_per_sec = measured["operations"] / measured["seconds"] if measured["seconds"] else 0.0
        results[name] = {
            "seconds": round(measured["seconds"], 4),
            "operations": measured["operations"],
            "ops_per_sec": round(ops_per_sec, 1),
        }
        if "extra" in measured:
            results[name]["extra"] = measured["extra"]
        print(f"{name:24s} {measured['seconds']:8.3f}s  "
              f"{measured['operations']:>10d} ops  {ops_per_sec:>12.0f} ops/s")
        for key, value in measured.get("extra", {}).items():
            print(f"    {key:32s} {value}")
    return results


def latest_entry_for_scale(trajectory: list[dict], scale: str,
                           environment: str) -> dict | None:
    """Most recent entry with the same scale *and* environment.

    Entries written before the environment tag existed default to "local";
    entries written before the tag grew its ``/cores=…`` qualifiers carry the
    bare ``ci``/``local`` token, which still matches a current tag with the
    same base — a strictly *looser* comparison than the full tag, used only
    as a fallback when no fully matching entry exists.
    """
    base = environment.split("/", 1)[0]
    fallback = None
    for entry in reversed(trajectory):
        if entry.get("scale") != scale:
            continue
        recorded = entry.get("environment", "local")
        if recorded == environment:
            return entry
        if fallback is None and recorded == base:
            fallback = entry
    return fallback


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--append", action="store_true",
                        help="append this run to BENCH_storage_micro.json")
    parser.add_argument("--check", action="store_true",
                        help="fail when slower than the last committed entry")
    parser.add_argument("--label", default="")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown for --check")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per bench; the fastest is kept")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="NAME=OPS_PER_SEC",
                        help="absolute throughput floor for one benchmark; "
                             "fails the run when the measured ops/s lands "
                             "below it.  Unlike --check (relative to the last "
                             "committed same-environment entry), a floor "
                             "cannot drift: a sequence of sub-tolerance "
                             "regressions that each pass the relative gate "
                             "still trips the floor once the cumulative loss "
                             "is real.  Repeatable.")
    args = parser.parse_args()

    floors: dict[str, float] = {}
    for spec in args.floor:
        name, _, value = spec.partition("=")
        if name not in BENCHES:
            parser.error(f"--floor: unknown benchmark {name!r}")
        try:
            floors[name] = float(value)
        except ValueError:
            parser.error(f"--floor: bad threshold in {spec!r}")

    trajectory = load_trajectory()
    environment = _environment()
    baseline = latest_entry_for_scale(trajectory, args.scale, environment)
    results = run_all(args.scale, reps=args.reps)

    status = 0
    if baseline is not None:
        print(f"\nvs committed entry {baseline.get('label', '?')!r} "
              f"({baseline.get('git', '?')}, {baseline.get('timestamp', '?')}, "
              f"{environment}):")
        for name, current in results.items():
            previous = baseline.get("results", {}).get(name)
            if not previous or not previous.get("ops_per_sec"):
                continue
            speedup = current["ops_per_sec"] / previous["ops_per_sec"]
            flag = ""
            if args.check and speedup < 1.0 - args.tolerance:
                flag = "  << REGRESSION"
                status = 1
            print(f"  {name:24s} {speedup:6.2f}x{flag}")
    elif args.check:
        print(f"no committed {environment} baseline for scale {args.scale} "
              f"- nothing to check (commit one from this environment to arm the gate)")

    if floors:
        print("\nabsolute floors:")
        for name, floor in sorted(floors.items()):
            measured = results[name]["ops_per_sec"]
            below = measured < floor
            if below:
                status = 1
            print(f"  {name:24s} {measured:>12.1f} ops/s  "
                  f"(floor {floor:.0f}){'  << BELOW FLOOR' if below else ''}")

    if args.append:
        entry = {
            "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "git": _git_revision(),
            "label": args.label or "unlabelled",
            "scale": args.scale,
            "environment": environment,
            "python": sys.version.split()[0],
            "results": results,
        }
        trajectory.append(entry)
        RESULTS_PATH.write_text(json.dumps(trajectory, indent=1) + "\n")
        print("\nappended to", RESULTS_PATH)
    return status


if __name__ == "__main__":
    sys.exit(main())
