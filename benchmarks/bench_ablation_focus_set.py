"""Ablation (§5.1) — flash-crowd (focus set) update behaviour on the Chunk method.

Focus-set updates are strictly increasing by default, the scenario that forces
documents across chunk boundaries and into the short lists; this ablation
varies the focus-set size and direction and reports the resulting update/query
cost and short-list growth.
"""

from repro.bench.experiments import ablation_focus_set


def test_ablation_focus_set(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: ablation_focus_set(bench_scale), rounds=1, iterations=1
    )
    report(
        "ablation_focus_set",
        "Ablation: focus-set (flash crowd) updates",
        rows,
        columns=[
            "focus_fraction", "direction", "avg_update_ms", "avg_query_ms",
            "short_list_bytes",
        ],
    )
    baseline = [row for row in rows if row["focus_fraction"] == 0.0]
    focused = [row for row in rows if row["focus_fraction"] > 0.0]
    assert baseline and focused
