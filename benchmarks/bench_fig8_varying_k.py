"""Figure 8 — query time as the number of desired results k varies.

Paper result: the ID method is flat in k (it always scans everything);
Score-Threshold and Chunk are cheaper at small k and converge towards ID as k
grows, with Chunk dominating Score-Threshold (smaller lists, no stored scores).
"""

from repro.bench.experiments import fig8_varying_k


def test_fig8_varying_k(benchmark, bench_scale, report):
    rows = benchmark.pedantic(
        lambda: fig8_varying_k(bench_scale), rounds=1, iterations=1
    )
    report(
        "fig8_varying_k",
        "Figure 8: varying the number of desired results (k)",
        rows,
        columns=["method", "k", "avg_query_ms", "query_pages", "query_io_ms"],
    )
    by_method: dict[str, list] = {}
    for row in rows:
        by_method.setdefault(row["method"], []).append(row)
    ks = sorted({row["k"] for row in rows})
    # ID is insensitive to k (page counts identical across k).
    id_pages = [row["query_pages"] for row in sorted(by_method["id"], key=lambda r: r["k"])]
    assert max(id_pages) - min(id_pages) <= max(1.0, 0.05 * max(id_pages))
    # Chunk reads no more pages than ID at the smallest k.
    smallest = ks[0]
    chunk_small = next(r for r in by_method["chunk"] if r["k"] == smallest)
    id_small = next(r for r in by_method["id"] if r["k"] == smallest)
    assert chunk_small["query_pages"] <= id_small["query_pages"]
