"""Tests for incrementally maintained materialised views and the database catalogue."""

import pytest

from repro.errors import RelationalError, UnknownTableError, ViewError
from repro.relational.database import Database
from repro.relational.materialized_view import ViewDependency, foreign_key_mapper, primary_key_mapper
from repro.relational.functions import ScalarFunction
from repro.relational.types import ColumnType


@pytest.fixture
def counters_db():
    database = Database()
    counters = database.create_table(
        "counters",
        columns=[("item_id", ColumnType.INTEGER), ("clicks", ColumnType.INTEGER)],
        primary_key="item_id",
    )
    for item_id in (1, 2, 3):
        counters.insert({"item_id": item_id, "clicks": item_id * 10})
    return database


def make_view(database, name="clicks_view"):
    counters = database.table("counters")

    def compute(key):
        row = counters.get(key)
        return None if row is None else float(row["clicks"])

    return database.create_materialized_view(
        name,
        compute=compute,
        dependencies=[ViewDependency("counters", primary_key_mapper())],
        initial_keys=[1, 2, 3],
    )


class TestMaterializedView:
    def test_initial_population(self, counters_db):
        view = make_view(counters_db)
        assert view.get(1) == 10.0
        assert view.get(3) == 30.0
        assert len(view) == 3
        assert 2 in view

    def test_incremental_refresh_matches_full_recompute(self, counters_db):
        view = make_view(counters_db)
        table = counters_db.table("counters")
        table.update(2, {"clicks": 999})
        table.insert({"item_id": 4, "clicks": 7})
        assert view.get(2) == 999.0
        assert view.get(4) == 7.0
        expected = {row["item_id"]: float(row["clicks"]) for row in table.scan()}
        assert dict(view.items()) == expected

    def test_deleted_base_rows_remove_view_entries(self, counters_db):
        view = make_view(counters_db)
        counters_db.table("counters").delete(1)
        assert view.get(1) is None
        assert 1 not in view

    def test_subscribers_receive_old_and_new_values(self, counters_db):
        view = make_view(counters_db)
        changes = []
        view.subscribe(lambda key, old, new: changes.append((key, old, new)))
        counters_db.table("counters").update(3, {"clicks": 31})
        assert changes == [(3, 30.0, 31.0)]
        view.unsubscribe(view._subscribers[0])
        counters_db.table("counters").update(3, {"clicks": 32})
        assert len(changes) == 1

    def test_unchanged_values_do_not_notify(self, counters_db):
        view = make_view(counters_db)
        changes = []
        view.subscribe(lambda key, old, new: changes.append(key))
        view.refresh_key(1)
        assert changes == []

    def test_view_requires_dependencies_and_known_tables(self, counters_db):
        with pytest.raises(ViewError):
            counters_db.create_materialized_view("bad", compute=lambda k: 0.0, dependencies=[])
        with pytest.raises(UnknownTableError):
            counters_db.create_materialized_view(
                "bad2", compute=lambda k: 0.0,
                dependencies=[ViewDependency("nope", primary_key_mapper())],
            )

    def test_foreign_key_mapper_covers_old_and_new_keys(self):
        from repro.relational.triggers import ChangeKind, RowChange

        mapper = foreign_key_mapper("movie_id")
        change = RowChange(
            "reviews", ChangeKind.UPDATE, key=5,
            old_row={"movie_id": 1}, new_row={"movie_id": 2},
        )
        assert sorted(mapper(change)) == [1, 2]


class TestDatabaseCatalogue:
    def test_duplicate_names_rejected(self, counters_db):
        make_view(counters_db, "v")
        with pytest.raises(RelationalError):
            make_view(counters_db, "v")
        with pytest.raises(RelationalError):
            counters_db.create_table("counters", [("a", ColumnType.INTEGER)], "a")

    def test_lookups(self, counters_db):
        view = make_view(counters_db, "v2")
        assert counters_db.view("v2") is view
        assert "counters" in counters_db.table_names()
        assert counters_db.has_table("counters")
        with pytest.raises(UnknownTableError):
            counters_db.table("missing")
        with pytest.raises(RelationalError):
            counters_db.view("missing")

    def test_function_registry(self, counters_db):
        fn = ScalarFunction("double", 1, lambda x: 2 * x)
        counters_db.register_function(fn)
        assert counters_db.function("double")(4) == 8
        assert counters_db.function_names() == ["double"]
        with pytest.raises(RelationalError):
            counters_db.register_function(fn)
        with pytest.raises(RelationalError):
            counters_db.function("missing")
