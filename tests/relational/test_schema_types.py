"""Tests for column types, columns and schemas."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, Schema
from repro.relational.types import ColumnType


class TestColumnType:
    def test_integer_validation(self):
        assert ColumnType.INTEGER.validate(5) == 5
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate("5")
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(True)

    def test_float_accepts_ints_and_coerces(self):
        assert ColumnType.FLOAT.validate(5) == 5.0
        assert isinstance(ColumnType.FLOAT.validate(5), float)
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.validate("nope")

    def test_boolean_strict(self):
        assert ColumnType.BOOLEAN.validate(True) is True
        with pytest.raises(SchemaError):
            ColumnType.BOOLEAN.validate(1)

    def test_text_and_string(self):
        assert ColumnType.TEXT.validate("hello") == "hello"
        assert ColumnType.STRING.validate("x") == "x"
        with pytest.raises(SchemaError):
            ColumnType.TEXT.validate(42)

    def test_none_passes_through(self):
        assert ColumnType.INTEGER.validate(None) is None

    def test_is_numeric(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.TEXT.is_numeric


class TestColumn:
    def test_nullable_control(self):
        nullable = Column("a", ColumnType.INTEGER)
        assert nullable.validate(None) is None
        strict = Column("a", ColumnType.INTEGER, nullable=False)
        with pytest.raises(SchemaError):
            strict.validate(None)


def movie_schema():
    return Schema.build(
        [
            Column("movie_id", ColumnType.INTEGER),
            Column("title", ColumnType.STRING),
            Column("rating", ColumnType.FLOAT),
        ],
        primary_key="movie_id",
    )


class TestSchema:
    def test_column_lookup(self):
        schema = movie_schema()
        assert schema.column("title").type is ColumnType.STRING
        assert schema.has_column("rating")
        with pytest.raises(UnknownColumnError):
            schema.column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(
                [Column("a", ColumnType.INTEGER), Column("a", ColumnType.FLOAT)],
                primary_key="a",
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema.build([Column("a", ColumnType.INTEGER)], primary_key="b")

    def test_validate_row_fills_missing_nullable_columns(self):
        schema = movie_schema()
        row = schema.validate_row({"movie_id": 1, "title": "X"})
        assert row == {"movie_id": 1, "title": "X", "rating": None}

    def test_validate_row_requires_primary_key(self):
        schema = movie_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"title": "X"})

    def test_validate_row_rejects_unknown_columns(self):
        schema = movie_schema()
        with pytest.raises(UnknownColumnError):
            schema.validate_row({"movie_id": 1, "bogus": 2})

    def test_validate_update_protects_primary_key(self):
        schema = movie_schema()
        assert schema.validate_update({"rating": 3}) == {"rating": 3.0}
        with pytest.raises(SchemaError):
            schema.validate_update({"movie_id": 7})
        with pytest.raises(UnknownColumnError):
            schema.validate_update({"bogus": 1})
