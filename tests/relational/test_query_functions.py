"""Tests for the query evaluator, expressions and scalar (SQL-bodied) functions."""

import pytest

from repro.errors import FunctionError, RelationalError
from repro.relational import expressions as ex
from repro.relational.database import Database
from repro.relational.functions import (
    ScalarFunction,
    aggregate_lookup,
    column_lookup,
    weighted_sum,
)
from repro.relational.query import Query
from repro.relational.types import ColumnType


@pytest.fixture
def archive_db():
    database = Database()
    movies = database.create_table(
        "movies",
        columns=[("movie_id", ColumnType.INTEGER), ("title", ColumnType.STRING)],
        primary_key="movie_id",
    )
    reviews = database.create_table(
        "reviews",
        columns=[
            ("review_id", ColumnType.INTEGER),
            ("movie_id", ColumnType.INTEGER),
            ("rating", ColumnType.FLOAT),
        ],
        primary_key="review_id",
    )
    reviews.create_index("movie_id")
    stats = database.create_table(
        "statistics",
        columns=[("movie_id", ColumnType.INTEGER), ("visits", ColumnType.INTEGER)],
        primary_key="movie_id",
    )
    for movie_id, title in [(1, "A"), (2, "B"), (3, "C")]:
        movies.insert({"movie_id": movie_id, "title": title})
        stats.insert({"movie_id": movie_id, "visits": movie_id * 100})
    ratings = [(1, 1, 5.0), (2, 1, 3.0), (3, 2, 4.0)]
    for review_id, movie_id, rating in ratings:
        reviews.insert({"review_id": review_id, "movie_id": movie_id, "rating": rating})
    return database


class TestExpressions:
    def test_comparisons_and_null_safety(self):
        row = {"a": 5, "b": None}
        assert ex.eq("a", 5)(row)
        assert ex.ne("a", 4)(row)
        assert ex.gt("a", 4)(row)
        assert not ex.gt("b", 1)(row)
        assert ex.is_null("b")(row)
        assert ex.in_("a", [1, 5])(row)

    def test_boolean_combinators(self):
        row = {"a": 5}
        assert ex.and_(ex.gt("a", 1), ex.lt("a", 10))(row)
        assert ex.or_(ex.eq("a", 0), ex.eq("a", 5))(row)
        assert ex.not_(ex.eq("a", 0))(row)
        assert ex.and_()(row)
        assert not ex.or_()(row)

    def test_project(self):
        assert ex.project({"a": 1, "b": 2}, ["a", "c"]) == {"a": 1, "c": None}


class TestQuery:
    def test_where_select_order_limit(self, archive_db):
        rows = (
            archive_db.query("statistics")
            .where(ex.ge("visits", 200))
            .order_by("visits", descending=True)
            .select(["movie_id"])
            .limit(1)
            .rows()
        )
        assert rows == [{"movie_id": 3}]

    def test_join_on_foreign_key(self, archive_db):
        rows = (
            archive_db.query("movies")
            .join(archive_db.query("reviews"), left_on="movie_id", right_on="movie_id",
                  prefix="r_")
            .rows()
        )
        assert len(rows) == 3
        assert all(row["movie_id"] == row["r_movie_id"] for row in rows)

    def test_group_by_aggregates(self, archive_db):
        rows = (
            archive_db.query("reviews")
            .group_by(["movie_id"], {"avg_rating": ("avg", "rating"),
                                     "n": ("count", "rating")})
            .order_by("movie_id")
            .rows()
        )
        assert rows[0] == {"movie_id": 1, "avg_rating": 4.0, "n": 2.0}
        assert rows[1]["avg_rating"] == 4.0 and rows[1]["n"] == 1.0

    def test_extend_adds_computed_column(self, archive_db):
        rows = (
            archive_db.query("statistics")
            .extend("double_visits", lambda row: row["visits"] * 2)
            .order_by("movie_id")
            .rows()
        )
        assert rows[0]["double_visits"] == 200

    def test_unknown_aggregate_and_negative_limit_rejected(self, archive_db):
        with pytest.raises(RelationalError):
            archive_db.query("reviews").group_by(["movie_id"], {"x": ("median", "rating")})
        with pytest.raises(RelationalError):
            archive_db.query("reviews").limit(-1)

    def test_count_and_scalar(self, archive_db):
        query = archive_db.query("reviews")
        assert query.count() == 3
        assert query.order_by("rating", descending=True).scalar("rating") == 5.0
        assert Query([]).scalar("anything") is None


class TestScalarFunctions:
    def test_arity_enforced(self):
        fn = ScalarFunction("f", 2, lambda a, b: a + b)
        assert fn(1, 2) == 3
        with pytest.raises(FunctionError):
            fn(1)

    def test_aggregate_lookup_matches_manual_average(self, archive_db):
        s1 = aggregate_lookup(archive_db, "S1", "reviews", "movie_id", "rating", "avg")
        assert s1(1) == pytest.approx(4.0)
        assert s1(3) == 0.0  # no reviews -> default

    def test_column_lookup(self, archive_db):
        s2 = column_lookup(archive_db, "S2", "statistics", "movie_id", "visits")
        assert s2(2) == 200.0
        assert s2(99) == 0.0

    def test_unknown_aggregate_rejected(self, archive_db):
        with pytest.raises(FunctionError):
            aggregate_lookup(archive_db, "S", "reviews", "movie_id", "rating", "median")

    def test_weighted_sum_matches_paper_example(self):
        agg = weighted_sum("Agg", [100.0, 0.5, 1.0])
        assert agg(4.5, 200.0, 30.0) == pytest.approx(580.0)
