"""Tests for relational tables: CRUD, secondary indexes and triggers."""

import pytest

from repro.errors import ConstraintError, UnknownColumnError
from repro.relational.database import Database
from repro.relational.triggers import ChangeKind
from repro.relational.types import ColumnType


@pytest.fixture
def movies():
    database = Database()
    table = database.create_table(
        "movies",
        columns=[
            ("movie_id", ColumnType.INTEGER),
            ("title", ColumnType.STRING),
            ("year", ColumnType.INTEGER),
        ],
        primary_key="movie_id",
    )
    for movie_id, title, year in [
        (1, "American Thrift", 1962),
        (2, "Amateur Film", 1962),
        (3, "Harbor Days", 1950),
    ]:
        table.insert({"movie_id": movie_id, "title": title, "year": year})
    return database, table


class TestCrud:
    def test_insert_and_get(self, movies):
        _db, table = movies
        assert table.get(1)["title"] == "American Thrift"
        assert table.get(99) is None
        assert len(table) == 3
        assert 2 in table

    def test_duplicate_primary_key_rejected(self, movies):
        _db, table = movies
        with pytest.raises(ConstraintError):
            table.insert({"movie_id": 1, "title": "Copy", "year": 2000})

    def test_update_changes_only_named_columns(self, movies):
        _db, table = movies
        new_row = table.update(2, {"year": 1963})
        assert new_row["year"] == 1963
        assert new_row["title"] == "Amateur Film"
        assert table.get(2)["year"] == 1963

    def test_update_missing_row_raises(self, movies):
        _db, table = movies
        with pytest.raises(ConstraintError):
            table.update(77, {"year": 2001})

    def test_delete(self, movies):
        _db, table = movies
        old = table.delete(3)
        assert old["title"] == "Harbor Days"
        assert table.get(3) is None
        with pytest.raises(ConstraintError):
            table.delete(3)

    def test_upsert(self, movies):
        _db, table = movies
        table.upsert({"movie_id": 1, "title": "Renamed", "year": 1962})
        table.upsert({"movie_id": 9, "title": "Fresh", "year": 2001})
        assert table.get(1)["title"] == "Renamed"
        assert table.get(9)["title"] == "Fresh"

    def test_scan_in_primary_key_order(self, movies):
        _db, table = movies
        assert [row["movie_id"] for row in table.scan()] == [1, 2, 3]

    def test_scan_where(self, movies):
        _db, table = movies
        old_movies = list(table.scan_where(lambda row: row["year"] < 1960))
        assert [row["movie_id"] for row in old_movies] == [3]


class TestSecondaryIndexes:
    def test_index_lookup_matches_scan(self, movies):
        _db, table = movies
        table.create_index("year")
        assert table.indexed_columns() == ["year"]
        from_index = sorted(row["movie_id"] for row in table.lookup_by_index("year", 1962))
        assert from_index == [1, 2]

    def test_index_maintained_on_update_and_delete(self, movies):
        _db, table = movies
        table.create_index("year")
        table.update(1, {"year": 1999})
        assert [row["movie_id"] for row in table.lookup_by_index("year", 1999)] == [1]
        assert [row["movie_id"] for row in table.lookup_by_index("year", 1962)] == [2]
        table.delete(2)
        assert list(table.lookup_by_index("year", 1962)) == []

    def test_lookup_without_index_falls_back_to_scan(self, movies):
        _db, table = movies
        assert [row["movie_id"] for row in table.lookup_by_index("year", 1950)] == [3]

    def test_index_on_unknown_column_rejected(self, movies):
        _db, table = movies
        with pytest.raises(UnknownColumnError):
            table.create_index("bogus")


class TestTriggers:
    def test_changes_are_delivered_with_old_and_new_rows(self, movies):
        database, table = movies
        events = []
        database.triggers.register("movies", events.append)
        table.insert({"movie_id": 10, "title": "New", "year": 2000})
        table.update(10, {"year": 2001})
        table.delete(10)
        kinds = [event.kind for event in events]
        assert kinds == [ChangeKind.INSERT, ChangeKind.UPDATE, ChangeKind.DELETE]
        assert events[1].old_row["year"] == 2000
        assert events[1].new_row["year"] == 2001
        assert events[1].changed_columns() == {"year"}
        assert events[2].new_row is None

    def test_noop_update_fires_no_trigger(self, movies):
        database, table = movies
        events = []
        database.triggers.register("movies", events.append)
        table.update(1, {"year": 1962})
        assert events == []
