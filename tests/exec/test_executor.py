"""Unit tests for the concurrent execution subsystem (repro.exec)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    ExecutorClosedError,
    ExecutorError,
    ShardTimeoutError,
)
from repro.exec.executor import ExecutorPool, ShardExecutor, ShardFuture
from repro.exec.fanout import StreamPump
from repro.exec.locks import ReadWriteLock


class TestShardFuture:
    def test_completed(self):
        future = ShardFuture.completed(42)
        assert future.done
        assert future.result() == 42

    def test_failed(self):
        future = ShardFuture.failed(ValueError("boom"))
        with pytest.raises(ValueError):
            future.result()

    def test_steal_runs_on_caller(self):
        ran_in = []
        future = ShardFuture(lambda: ran_in.append(threading.get_ident()) or "ok")
        assert future.result(steal=True) == "ok"
        assert ran_in == [threading.get_ident()]

    def test_cancel_prevents_execution(self):
        ran = []
        future = ShardFuture(lambda: ran.append(1))
        assert future.cancel()
        assert future.result() is None
        assert ran == []

    def test_cancel_loses_to_completed_run(self):
        future = ShardFuture(lambda: "value")
        assert future.result(steal=True) == "value"
        assert not future.cancel()
        assert future.result() == "value"


class TestShardExecutor:
    def test_tasks_run_in_submission_order_on_one_thread(self):
        executor = ShardExecutor("t-exec")
        try:
            order, threads = [], set()

            def task(i):
                def run():
                    order.append(i)
                    threads.add(threading.get_ident())
                return run

            futures = [executor.submit(task(i)) for i in range(20)]
            for future in futures:
                future.result()
            assert order == list(range(20))
            assert len(threads) == 1
            assert threading.get_ident() not in threads
        finally:
            executor.close()

    def test_exception_propagates(self):
        executor = ShardExecutor("t-exec-err")
        try:
            def boom():
                raise RuntimeError("task failed")

            with pytest.raises(RuntimeError, match="task failed"):
                executor.submit(boom).result()
            # the worker survives a failed task
            assert executor.submit(lambda: "next").result() == "next"
        finally:
            executor.close()

    def test_close_idempotent_and_rejects_submissions(self):
        executor = ShardExecutor("t-exec-close")
        executor.close()
        executor.close()
        with pytest.raises(ExecutorClosedError):
            executor.submit(lambda: None)

    def test_kill_rejects_submissions_until_revived(self):
        executor = ShardExecutor("t-exec-kill")
        assert executor.submit(lambda: 1).result() == 1
        executor.kill()
        executor.kill()  # idempotent
        assert executor.dead and not executor.closed
        with pytest.raises(ExecutorClosedError, match="dead"):
            executor.submit(lambda: None)
        executor.close()

    def test_timeout_raises_typed_and_builtin_compatible_error(self):
        future = ShardFuture()  # never resolves
        with pytest.raises(ShardTimeoutError):
            future.result(timeout=0.01)
        with pytest.raises(TimeoutError):  # builtin idiom keeps working
            future.result(timeout=0.01)
        with pytest.raises(ExecutorError):
            future.result(timeout=0.01)


class TestExecutorPool:
    def test_inline_mode_creates_no_threads(self):
        pool = ExecutorPool(shard_count=4, threads=1)
        assert not pool.parallel
        assert pool.worker_count == 0
        assert pool.executor_for(2) is None
        assert pool.run_on(2, lambda: threading.get_ident()) == threading.get_ident()
        pool.close()

    def test_inline_mode_propagates_errors(self):
        pool = ExecutorPool(shard_count=1, threads=1)

        def boom():
            raise KeyError("inline")

        with pytest.raises(KeyError):
            pool.run_on(0, boom)

    def test_shard_to_executor_mapping_is_stable_single_writer(self):
        with ExecutorPool(shard_count=4, threads=2) as pool:
            assert pool.parallel
            assert pool.worker_count == 2
            for shard in range(4):
                assert pool.executor_for(shard) is pool.executor_for(shard)
            # shards sharing a worker still serialize through one mailbox
            assert pool.executor_for(0) is pool.executor_for(2)
            assert pool.executor_for(1) is pool.executor_for(3)

    def test_map_shards_gathers_all_and_raises_first_error(self):
        with ExecutorPool(shard_count=4, threads=4) as pool:
            done = []

            def ok(i):
                return lambda: done.append(i) or i

            def bad():
                raise ValueError("shard 2 broke")

            with pytest.raises(ValueError, match="shard 2 broke"):
                pool.map_shards([(0, ok(0)), (1, ok(1)), (2, bad), (3, ok(3))])
            assert sorted(done) == [0, 1, 3]

    def test_map_shards_results_in_task_order(self):
        with ExecutorPool(shard_count=3, threads=3) as pool:
            results = pool.map_shards([(s, (lambda s=s: s * 10)) for s in range(3)])
            assert results == [0, 10, 20]

    def test_killed_executor_failure_is_shard_tagged_and_revivable(self):
        with ExecutorPool(shard_count=2, threads=2) as pool:
            assert pool.kill_executor(1)
            with pytest.raises(ExecutorClosedError) as info:
                pool.submit(1, lambda: None)
            assert info.value.shard == 1
            # the other shard's executor is unaffected, barrier skips the dead one
            assert pool.run_on(0, lambda: "ok") == "ok"
            pool.barrier()
            assert pool.revive(1)
            assert not pool.revive(1)  # already live
            assert pool.run_on(1, lambda: "back") == "back"

    def test_inline_pool_has_no_executor_to_kill(self):
        pool = ExecutorPool(shard_count=2, threads=1)
        assert not pool.kill_executor(0)
        assert not pool.revive(0)


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()
        assert not lock.try_acquire_write()
        lock.release_read()
        lock.release_read()
        assert lock.try_acquire_write()
        lock.release_write()

    def test_writer_blocks_readers(self):
        lock = ReadWriteLock()
        entered = threading.Event()
        with lock.write_locked():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), entered.set(),
                                lock.release_read()))
            reader.start()
            time.sleep(0.02)
            assert not entered.is_set()
        reader.join(timeout=2.0)
        assert entered.is_set()

    def test_concurrent_counter_integrity(self):
        lock = ReadWriteLock()
        state = {"value": 0}

        def writer():
            for _ in range(200):
                with lock.write_locked():
                    current = state["value"]
                    state["value"] = current + 1

        def reader():
            for _ in range(200):
                with lock.read_locked():
                    assert state["value"] >= 0

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert state["value"] == 600


class TestStreamPump:
    @pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 100, 1000])
    @pytest.mark.parametrize("scatter", [False, True])
    def test_pumped_stream_equals_plain_iteration(self, length, scatter):
        with ExecutorPool(shard_count=2, threads=2, scatter=scatter) as pool:
            pump = StreamPump(pool, shard=1, plan=lambda: iter(range(length)),
                              block_size=64, initial_block=8)
            assert list(pump.stream()) == list(range(length))
            pump.close()

    def test_plan_builds_on_first_pull_not_constructor_in_lazy_mode(self):
        with ExecutorPool(shard_count=1, threads=2, scatter=False) as pool:
            built = []

            def plan():
                built.append(True)
                return iter([1, 2, 3])

            pump = StreamPump(pool, shard=0, plan=plan, initial_block=2)
            assert built == []  # lazy thunk: nothing ran yet
            assert list(pump.stream()) == [1, 2, 3]
            assert built == [True]
            pump.close()

    def test_geometric_block_growth_bounds_over_scan(self):
        with ExecutorPool(shard_count=1, threads=2, scatter=False) as pool:
            pulled = []

            def plan():
                def gen():
                    for i in range(1000):
                        pulled.append(i)
                        yield i
                return gen()

            pump = StreamPump(pool, shard=0, plan=plan,
                              block_size=256, initial_block=16)
            stream = pump.stream()
            for _ in range(10):  # consume only 10 postings
                next(stream)
            pump.close()
            # one 16-posting block materialized; no runaway prefetch
            assert len(pulled) == 16

    def test_latch_serializes_block_pulls(self):
        latch = threading.RLock()
        with ExecutorPool(shard_count=1, threads=2, scatter=True) as pool:
            pump = StreamPump(pool, shard=0,
                              plan=lambda: iter(range(200)),
                              latch=latch, block_size=32, initial_block=32)
            with latch:
                # holding the latch must not deadlock the consumer thread:
                # RLock is re-entrant per-thread, so steal-executed pulls
                # from this thread still proceed.
                first = pump.next_block()
            rest = list(pump.stream())
            pump.close()
            assert first + rest == list(range(200))


class TestScatterDefault:
    def test_scatter_auto_follows_cpu_count(self, monkeypatch):
        import repro.exec.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        assert not ExecutorPool(1, threads=2).scatter
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        assert ExecutorPool(1, threads=2).scatter
