"""Smoke tests for the experiment harness (metrics, runner, reporting, experiments).

Every paper experiment is exercised at smoke scale so that a broken harness is
caught by ``pytest tests/`` without having to run the full benchmark suite.
"""

import pytest

from repro.bench.experiments import (
    ablation_chunk_boundaries,
    fig7_varying_updates,
    fig8_varying_k,
    fig9_termscore,
    fig10_disjunctive,
    table1_index_sizes,
    table2_chunk_ratio,
    table3_insertions,
)
from repro.bench.metrics import MeteredEnvironment, OperationMetrics
from repro.bench.reporting import format_rows, save_report
from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup


@pytest.fixture(scope="module")
def scale():
    return BenchScale.smoke()


@pytest.fixture(scope="module")
def runner(scale):
    return ExperimentRunner(scale)


class TestMetrics:
    def test_operation_metrics_averages(self):
        metrics = OperationMetrics(label="x")
        metrics.record(wall_ms=10.0, pages_read=4)
        metrics.record(wall_ms=20.0, pages_read=0)
        assert metrics.operations == 2
        assert metrics.avg_wall_ms == 15.0
        assert metrics.avg_pages_read == 2.0
        row = metrics.as_row()
        assert row["operations"] == 2

    def test_merge(self):
        a = OperationMetrics()
        a.record(wall_ms=1.0)
        b = OperationMetrics()
        b.record(wall_ms=3.0, pages_read=2)
        a.merge(b)
        assert a.operations == 2 and a.pages_read == 2

    def test_metered_environment_captures_io(self, runner):
        index, _ = runner.build_index(MethodSetup("id"))
        metrics = OperationMetrics()
        meter = MeteredEnvironment(index.env)
        index.drop_long_list_cache()
        keywords = runner.make_queries(num_queries=1)[0].keywords
        with meter.measure(metrics):
            index.search(keywords, k=3)
        assert metrics.operations == 1
        assert metrics.wall_ms > 0
        assert metrics.pages_read >= 1


class TestRunner:
    def test_build_update_query_cycle(self, runner):
        setup = MethodSetup("chunk", {"chunk_ratio": 2.0})
        updates = runner.make_updates(num_updates=50)
        queries = runner.make_queries(num_queries=3)
        run = runner.measure_method(setup, updates, queries)
        assert run.update_metrics.operations == 50
        assert run.query_metrics.operations == 3
        assert run.long_list_bytes > 0

    def test_update_stream_and_queries_are_deterministic(self, runner):
        assert [
            (u.doc_id, u.delta) for u in runner.make_updates(num_updates=20)
        ] == [(u.doc_id, u.delta) for u in runner.make_updates(num_updates=20)]
        assert [q.keywords for q in runner.make_queries(num_queries=4)] == [
            q.keywords for q in runner.make_queries(num_queries=4)
        ]

    def test_scale_presets(self):
        assert BenchScale.smoke().corpus.num_docs < BenchScale.small().corpus.num_docs
        assert BenchScale.small().with_updates(7).num_updates == 7

    def test_sharded_runner_records_shard_skew(self, scale):
        sharded_runner = ExperimentRunner(scale, shards=3)
        index, _build = sharded_runner.build_index(
            MethodSetup("chunk", {"chunk_ratio": 2.0})
        )
        assert index.shard_count == 3
        queries = sharded_runner.make_queries(num_queries=3)
        metrics = sharded_runner.run_queries(index, queries)
        assert metrics.extra["shards"] == 3.0
        assert metrics.extra["shard_skew"] >= 1.0

    def test_run_multiclient_replays_mixed_traffic(self, scale):
        sharded_runner = ExperimentRunner(scale, shards=2)
        index, _build = sharded_runner.build_index(
            MethodSetup("chunk", {"chunk_ratio": 2.0})
        )
        result = sharded_runner.run_multiclient(
            index, num_queries=4, num_updates=60
        )
        assert result.queries_run == 4
        assert result.updates_applied > 0
        assert result.shard_load is not None
        assert result.shard_load.shard_count == 2


class TestReporting:
    def test_format_rows_alignment_and_missing_values(self):
        text = format_rows(
            [{"a": 1, "b": 2.5}, {"a": 10}], columns=["a", "b"], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5
        assert format_rows([]) == "(no rows)"

    def test_save_report(self, tmp_path):
        path = save_report("unit", "content", directory=tmp_path)
        assert path.read_text() == "content\n"


class TestExperimentsSmoke:
    def test_table1(self, scale):
        rows = table1_index_sizes(scale)
        assert {row["method"] for row in rows} == {
            "id", "score", "score_threshold", "chunk", "id_termscore", "chunk_termscore",
        }
        sizes = {row["method"]: row["long_list_bytes"] for row in rows}
        assert sizes["score"] > sizes["id"]

    def test_table2(self, scale):
        rows = table2_chunk_ratio(scale, ratios=(8.0, 2.0), mean_steps=(100.0,))
        assert len(rows) == 2
        assert all(row["avg_query_ms"] > 0 for row in rows)

    def test_fig7(self, scale):
        rows = fig7_varying_updates(scale, update_counts=(0, 100))
        methods = {row["method"] for row in rows}
        assert methods == {"id", "score", "score_threshold", "chunk"}
        assert all(row["avg_query_ms"] > 0 for row in rows)

    def test_fig8(self, scale):
        rows = fig8_varying_k(scale, ks=(1, 10))
        assert len(rows) == 6

    def test_fig9(self, scale):
        rows = fig9_termscore(scale)
        assert {row["method"] for row in rows} == {"id_termscore", "chunk_termscore"}

    def test_fig10(self, scale):
        rows = fig10_disjunctive(
            scale, methods=(MethodSetup("id"), MethodSetup("chunk", {"chunk_ratio": 2.0}))
        )
        assert all(row["disj_query_ms"] > 0 for row in rows)

    def test_table3(self, scale):
        rows = table3_insertions(scale, insertion_counts=(5, 10), score_update_sample=20)
        assert [row["inserted_docs"] for row in rows] == [5, 10]
        assert rows[-1]["short_list_bytes"] >= rows[0]["short_list_bytes"]

    def test_ablation_chunk_boundaries(self, scale):
        rows = ablation_chunk_boundaries(scale, num_chunks=5)
        assert {row["strategy"] for row in rows} == {"ratio", "equal_count", "exponential"}
