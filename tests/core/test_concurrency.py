"""Concurrency determinism: the threaded engine answers exactly like serial.

The concurrent execution subsystem's fidelity contract (ARCHITECTURE.md,
"Concurrent execution"):

* for **any** ``threads × shards`` configuration, a deterministic operation
  sequence produces identical logical contents and identical top-k answers to
  the serial single-environment engine — parallel query fan-out and combined
  update windows are invisible in results;
* in **deterministic-accounting mode** the per-category I/O fingerprints are
  additionally identical for any thread count (``REPRO_THREADS`` runs the
  whole tier-1 suite that way);
* under genuinely concurrent clients (the service driver), queries after the
  storm still match the brute-force reference over the final state, and the
  write-combining path is semantically exact (combined == windows applied in
  ticket order), including its per-window error fallback.

The storms follow the shard-invariance suite's patterns; seeds come from
``tests.conftest.UPDATE_STORM_SEEDS``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index_router import _UpdateTicket
from repro.core.text_index import SVRTextIndex
from tests.conftest import (
    METHOD_OPTIONS,
    SVR_ONLY_METHODS,
    TERMSCORE_METHODS,
    UPDATE_STORM_SEEDS,
    make_corpus,
)
from tests.helpers import category_fingerprint, reference_top_k

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS

#: threads × shards grid; CI's concurrency leg runs the full matrix.
THREAD_GRID = tuple(
    int(value)
    for value in os.environ.get("REPRO_THREAD_COUNTS", "1,4").split(",")
    if value.strip()
)
SHARD_GRID = (1, 4)

VOCABULARY = [f"w{i:03d}" for i in range(16)]


def build_text_index(method: str, corpus, shards: int = 1, threads: int = 1,
                     deterministic: bool = False) -> SVRTextIndex:
    index = SVRTextIndex(method=method, shards=shards, threads=threads,
                         deterministic=deterministic, cache_pages=512,
                         page_size=512, **METHOD_OPTIONS[method])
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


def mixed_storm(index: SVRTextIndex, rng: random.Random, live: list[int],
                rounds: int = 4) -> list:
    """Drive one deterministic mixed storm; returns the query answers seen."""
    answers = []
    next_id = 900
    for _round in range(rounds):
        for _ in range(8):
            doc_id = rng.choice(live)
            index.update_score(doc_id, round(rng.uniform(0, 3000), 2))
        batch = [(rng.choice(live), round(rng.uniform(0, 3000), 2))
                 for _ in range(24)]
        index.apply_score_updates(batch)
        action = rng.random()
        if action < 0.4:
            next_id += 1
            terms = [rng.choice(VOCABULARY) for _ in range(7)]
            index.insert_document_terms(next_id, terms,
                                        round(rng.uniform(0, 2000), 2))
            live.append(next_id)
        elif action < 0.7 and len(live) > 8:
            victim = rng.choice(live)
            index.delete_document(victim)
            live.remove(victim)
        else:
            target = rng.choice(live)
            index.update_content(target, " ".join(
                rng.choice(VOCABULARY) for _ in range(7)))
        for keywords in ([rng.choice(VOCABULARY)],
                         [rng.choice(VOCABULARY), rng.choice(VOCABULARY)]):
            for conjunctive in (True, False):
                response = index.search(keywords, k=5, conjunctive=conjunctive)
                answers.append(
                    (tuple(keywords), conjunctive,
                     tuple((r.doc_id, r.score) for r in response.results))
                )
    return answers


def logical_contents(index: SVRTextIndex):
    env = index.env
    if not hasattr(env, "kvstore_names"):
        return None
    return {name: list(env.kvstore(name).items())
            for name in env.kvstore_names()}


def final_state(index: SVRTextIndex):
    docs = {}
    scores = {}
    for doc_id in index.documents.doc_ids():
        score = index.current_score(doc_id)
        if score is not None:
            docs[doc_id] = index.documents.get(doc_id).distinct_terms
            scores[doc_id] = score
    return docs, scores


@pytest.mark.parametrize("method", ALL_METHODS)
@pytest.mark.parametrize("threads", THREAD_GRID)
@pytest.mark.parametrize("shards", SHARD_GRID)
def test_threaded_storm_matches_serial(method, threads, shards):
    """contents + top-k identical to the serial engine at every grid point."""
    seed = UPDATE_STORM_SEEDS[0]
    corpus = make_corpus(random.Random(seed), num_docs=30, vocabulary=16,
                         terms_per_doc=8)
    serial = build_text_index(method, corpus)
    threaded = build_text_index(method, corpus, shards=shards, threads=threads)
    if threads > 1:
        assert threaded.router.parallel
    serial_answers = mixed_storm(serial, random.Random(seed + 1),
                                 [doc_id for doc_id, _t, _s in corpus])
    threaded_answers = mixed_storm(threaded, random.Random(seed + 1),
                                   [doc_id for doc_id, _t, _s in corpus])
    assert threaded_answers == serial_answers
    serial_contents = logical_contents(serial)
    threaded_contents = logical_contents(threaded)
    if serial_contents is not None and threaded_contents is not None:
        assert threaded_contents == serial_contents
    # and both agree with the brute-force reference for SVR-only ranking
    if method in SVR_ONLY_METHODS:
        docs, scores = final_state(threaded)
        for keywords in (["w001"], ["w002", "w005"]):
            expected = reference_top_k(docs, scores, set(), keywords, k=5)
            got = [(r.doc_id, r.score)
                   for r in threaded.search(keywords, k=5).results]
            assert got == expected
    threaded.close()
    serial.close()


@pytest.mark.parametrize("method", ("chunk", "score_threshold", "score", "id"))
def test_deterministic_mode_fingerprint_identical(method):
    """threads=4 deterministic mode: physical I/O fingerprint equals serial.

    This is the contract the ``REPRO_THREADS=4`` tier-1 CI leg relies on —
    every existing accounting assertion must hold unchanged.
    """
    seed = UPDATE_STORM_SEEDS[1]
    corpus = make_corpus(random.Random(seed), num_docs=30, vocabulary=16,
                         terms_per_doc=8)
    serial = build_text_index(method, corpus)
    deterministic = build_text_index(method, corpus, shards=1, threads=4,
                                     deterministic=True)
    assert not deterministic.router.parallel
    mixed_storm(serial, random.Random(seed + 1),
                [doc_id for doc_id, _t, _s in corpus])
    mixed_storm(deterministic, random.Random(seed + 1),
                [doc_id for doc_id, _t, _s in corpus])
    assert (category_fingerprint(deterministic.env)
            == category_fingerprint(serial.env))
    deterministic.close()
    serial.close()


@pytest.mark.parametrize("method", ("chunk", "id", "score_threshold"))
def test_concurrent_service_clients_stay_consistent(method):
    """A genuinely concurrent storm leaves a consistent, queryable index."""
    from repro.workloads.queries import KeywordQuery
    from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver
    from repro.workloads.updates import ScoreUpdate

    seed = UPDATE_STORM_SEEDS[2]
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=40, vocabulary=16, terms_per_doc=8)
    index = build_text_index(method, corpus, shards=4, threads=4)
    queries = [
        KeywordQuery(keywords=(rng.choice(VOCABULARY), rng.choice(VOCABULARY)),
                     k=5, conjunctive=bool(rng.getrandbits(1)))
        for _ in range(12)
    ]
    updates = [
        ScoreUpdate(doc_id=rng.choice(range(1, 41)),
                    delta=round(rng.uniform(-80, 120), 2))
        for _ in range(400)
    ]
    driver = ServiceLoadDriver(
        ServiceLoadConfig(num_clients=4, query_fraction=0.5, batch_window=16,
                          seed=seed),
        queries, updates,
    )
    result = driver.run(index)
    assert result.queries_run == len(queries)
    assert result.update_windows > 0
    assert len(result.query_latencies_ms) == result.queries_run
    # after the dust settles, answers match the brute-force reference
    docs, scores = final_state(index)
    if method in SVR_ONLY_METHODS:
        for keywords in (["w001"], ["w003", "w007"]):
            expected = reference_top_k(docs, scores, set(), keywords, k=5)
            got = [(r.doc_id, r.score)
                   for r in index.search(keywords, k=5).results]
            assert got == expected
    index.close()


def test_write_combining_equals_sequential_windows():
    """A combined drain leaves exactly the state of windows applied in order."""
    seed = UPDATE_STORM_SEEDS[0]
    corpus = make_corpus(random.Random(seed), num_docs=25, vocabulary=12,
                         terms_per_doc=6)
    rng = random.Random(seed + 7)
    windows = [
        [(rng.randrange(1, 26), round(rng.uniform(0, 2000), 2))
         for _ in range(10)]
        for _ in range(5)
    ]
    combined = build_text_index("chunk", corpus, shards=4, threads=4)
    serial = build_text_index("chunk", corpus)
    tickets = [_UpdateTicket(list(window)) for window in windows]
    combined.router._drain_windows(tickets)
    assert combined.router.combined_windows == len(windows) - 1
    for ticket in tickets:
        assert ticket.resolve() == len(ticket.updates)
    for window in windows:
        serial.apply_score_updates(list(window))
    assert logical_contents(combined) == logical_contents(serial)
    combined.close()
    serial.close()


def test_write_combining_error_fallback_isolates_bad_window():
    """A bad window fails alone; its neighbours in the drain still apply."""
    seed = UPDATE_STORM_SEEDS[1]
    corpus = make_corpus(random.Random(seed), num_docs=20, vocabulary=12,
                         terms_per_doc=6)
    index = build_text_index("chunk", corpus, shards=2, threads=4)
    serial = build_text_index("chunk", corpus)
    good_a = [(1, 500.0), (2, 750.0)]
    bad = [(9999, 100.0)]  # unknown document
    good_b = [(3, 125.0)]
    tickets = [_UpdateTicket(list(good_a)), _UpdateTicket(list(bad)),
               _UpdateTicket(list(good_b))]
    index.router._drain_windows(tickets)
    assert tickets[0].resolve() == 2
    with pytest.raises(Exception):
        tickets[1].resolve()
    assert tickets[2].resolve() == 1
    serial.apply_score_updates(good_a)
    serial.apply_score_updates(good_b)
    assert logical_contents(index) == logical_contents(serial)
    index.close()
    serial.close()


@settings(deadline=None, max_examples=15)
@given(
    schedule=st.lists(
        st.one_of(
            st.tuples(st.just("window"),
                      st.lists(st.tuples(st.integers(1, 24),
                                         st.floats(0.0, 2000.0)),
                               min_size=1, max_size=8)),
            st.tuples(st.just("query"),
                      st.lists(st.sampled_from(VOCABULARY[:10]),
                               min_size=1, max_size=2)),
        ),
        min_size=1, max_size=12,
    )
)
def test_interleaved_schedule_property(schedule):
    """Any interleaving of windows and queries matches the serial engine."""
    corpus = make_corpus(random.Random(99), num_docs=24, vocabulary=10,
                         terms_per_doc=6)
    serial = build_text_index("chunk", corpus)
    threaded = build_text_index("chunk", corpus, shards=4, threads=4)
    try:
        for kind, payload in schedule:
            if kind == "window":
                applied_serial = serial.apply_score_updates(list(payload))
                applied_threaded = threaded.apply_score_updates(list(payload))
                assert applied_threaded == applied_serial
            else:
                expected = [(r.doc_id, r.score)
                            for r in serial.search(payload, k=4,
                                                   conjunctive=False).results]
                got = [(r.doc_id, r.score)
                       for r in threaded.search(payload, k=4,
                                                conjunctive=False).results]
                assert got == expected
        assert logical_contents(threaded) == logical_contents(serial)
    finally:
        threaded.close()
        serial.close()
