"""Chaos-storm and failure-domain tests: the engine under injected faults.

The top half pins the *shard quarantine* contract deterministically: a
quarantined shard degrades queries (flagged, never silently wrong), fails
writes fast with a typed error before any mutation, is skipped by degraded
commits, and is re-admitted by ``reopen_shard`` from its checkpoint + WAL.

The bottom half is the chaos property: for arbitrary seeded fault schedules,
every method on both backends either succeeds, raises a typed
:class:`ReproError` leaving the engine at its last committed state, or
quarantines the faulty shard — and after recovery, contents and top-k equal
the committed prefix of a fault-free memory twin.  With injection disabled
(or a ``FaultPlan.none()`` attached), I/O fingerprints are bit-identical to
an index with no injector at all.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import METHOD_OPTIONS, make_corpus
from tests.helpers import category_fingerprint
from repro.core.text_index import SVRTextIndex
from repro.errors import ShardQuarantinedError, StorageError
from repro.storage.faults import FaultPlan, FaultSpec
from repro.storage.sharding import shard_of_doc, shard_of_term
from repro.workloads.chaos import (
    ChaosStormConfig,
    fault_seed_from_environ,
    run_chaos_storm,
)

METHODS = tuple(METHOD_OPTIONS)

#: Backends the storm sweep covers.  The CI chaos matrix sets
#: ``REPRO_CHAOS_BACKEND`` to pin one backend per leg so a failure names it;
#: unset (local runs), every storm covers both.
CHAOS_BACKENDS = tuple(
    backend for backend in ("memory", "file")
    if os.environ.get("REPRO_CHAOS_BACKEND", backend) == backend
) or ("memory", "file")


def _corpus(num_docs: int = 40) -> list:
    return make_corpus(random.Random(5), num_docs=num_docs, vocabulary=20,
                       terms_per_doc=8)


def _build(method: str = "score", path: "str | None" = None, shards: int = 2,
           corpus: "list | None" = None, **extra) -> SVRTextIndex:
    index = SVRTextIndex(method=method, path=path, shards=shards,
                         cache_pages=256, page_size=512,
                         **{**METHOD_OPTIONS[method], **extra})
    for doc_id, terms, score in (corpus or _corpus()):
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


def _term_on_shard(index: SVRTextIndex, shard: int) -> str:
    for _doc_id, terms, _score in _corpus():
        for term in terms:
            if shard_of_term(term, index.shard_count) == shard:
                return term
    raise AssertionError("no term routes to the shard")


def _doc_on_shard(index: SVRTextIndex, shard: int) -> int:
    for doc_id, _terms, _score in _corpus():
        if shard_of_doc(doc_id, index.shard_count) == shard:
            return doc_id
    raise AssertionError("no doc routes to the shard")


# ---------------------------------------------------------------------------
# Quarantine: degraded queries, fail-fast writes, reopen
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_degraded_query_flags_skipped_terms(self, tmp_path):
        index = _build(path=str(tmp_path / "i"))
        index.checkpoint()
        bad = _term_on_shard(index, 1)
        good = _term_on_shard(index, 0)
        baseline = index.search([good], k=5)
        index.router.quarantine_shard(1, "test quarantine")
        assert index.degraded
        assert index.quarantined_shards() == (1,)
        response = index.search([good, bad], k=5)
        assert response.stats.degraded
        assert response.stats.terms_skipped == 1
        # Keywords entirely on healthy shards answer normally, unflagged.
        clean = index.search([good], k=5)
        assert not clean.stats.degraded
        assert ([r.doc_id for r in clean.results]
                == [r.doc_id for r in baseline.results])
        index.router.reopen_shard(1)
        index.close()

    def test_all_keywords_quarantined_yields_empty_degraded_answer(
            self, tmp_path):
        index = _build(path=str(tmp_path / "i"))
        index.checkpoint()
        bad = _term_on_shard(index, 1)
        index.router.quarantine_shard(1, "test quarantine")
        response = index.search([bad], k=5)
        assert response.stats.degraded and list(response.results) == []
        index.router.reopen_shard(1)
        index.close()

    def test_writes_fail_fast_with_typed_error(self, tmp_path):
        index = _build(path=str(tmp_path / "i"))
        index.checkpoint()
        index.router.quarantine_shard(1, "test quarantine")
        doc_id = _doc_on_shard(index, 1)
        before = index.current_score(doc_id)
        with pytest.raises(ShardQuarantinedError) as excinfo:
            index.apply_score_updates([(doc_id, 123.456)])
        assert excinfo.value.shard == 1
        assert index.current_score(doc_id) == before  # nothing mutated
        with pytest.raises(ShardQuarantinedError):
            index.insert_document_terms(
                99_999, [_term_on_shard(index, 1)], 1.0)
        index.router.reopen_shard(1)
        index.close()

    def test_degraded_commit_skips_and_reopen_readmits(self, tmp_path):
        index = _build(path=str(tmp_path / "i"))
        index.checkpoint()
        healthy_doc = _doc_on_shard(index, 0)
        index.router.quarantine_shard(1, "test quarantine")
        # A healthy-shard write still works and commits (degraded commit).
        hd_terms = [t for d, t, _s in _corpus() if d == healthy_doc][0]
        if all(shard_of_term(t, 2) == 0 for t in hd_terms):
            index.apply_score_updates([(healthy_doc, 777.0)])
        index.commit()
        assert (index.env.shards[1].committed_batches
                < index.env.shards[0].committed_batches)
        index.reopen_shard(1)
        assert not index.degraded
        # The reopened shard serves reads and writes again, and the next
        # commit brings it back level with the commit point.
        quarantined_doc = _doc_on_shard(index, 1)
        behind = index.env.shards[1].committed_batches
        index.apply_score_updates([(quarantined_doc, 555.0)])
        index.commit()
        assert index.current_score(quarantined_doc) == 555.0
        # Shard 1 participates in commits again (its own counter advances; it
        # stays numerically behind shard 0 by the batches it missed, which
        # recovery accepts as a legitimate degraded-commit history).
        assert index.env.shards[1].committed_batches == behind + 1
        index.close()
        recovered = SVRTextIndex.open(str(tmp_path / "i"))
        assert recovered.current_score(quarantined_doc) == 555.0
        recovered.close()

    def test_shard_zero_cannot_be_skipped(self, tmp_path):
        index = _build(path=str(tmp_path / "i"))
        index.checkpoint()
        index.router.quarantine_shard(0, "commit point down")
        with pytest.raises(StorageError, match="shard 0"):
            index.commit()
        index.close()

    def test_hard_storage_error_quarantines_the_shard(self, tmp_path):
        built = _build(path=str(tmp_path / "i"))
        built.checkpoint()
        built.close()
        # Reopen: the cache starts cold, so shard 1's reads must hit disk.
        index = SVRTextIndex.open(str(tmp_path / "i"))
        # Schedule exactly one retry-exhausting run of read failures on
        # shard 1; the shard tag is what lets the router attribute the
        # failure domain.  (The schedule must end: the degraded retry still
        # reads shard 1 for doc-sharded score lookups.)
        from repro.storage.faults import DEFAULT_RETRY_BUDGET

        index.env.shards[1].inject_faults(FaultPlan(
            specs=(FaultSpec(op="read", kind="transient", at=0,
                             run=DEFAULT_RETRY_BUDGET + 1),),
        ), shard=1)
        bad = _term_on_shard(index, 1)
        good = _term_on_shard(index, 0)
        response = index.search([good, bad], k=5)
        assert response.stats.degraded
        assert 1 in index.quarantined_shards()
        health = [h for h in index.shard_health() if h.shard == 1][0]
        assert health.quarantined and "retries" in health.reason
        index.env.shards[1].clear_faults()
        index.reopen_shard(1)
        assert not index.degraded
        assert not index.search([good, bad], k=5).stats.degraded
        index.close()

    def test_blocked_payload_bitrot_quarantines_the_shard(self, tmp_path):
        """Silent page corruption in a blocked long list is a hard fault.

        A flipped byte below the page layer fails the codec's per-block CRC
        during the scan; :class:`ChecksumError` is in ``HARD_FAULT_ERRORS``,
        so the router quarantines the shard and degrades the query instead of
        returning silently wrong results.  Restoring the bytes and reopening
        the shard fully revives it.
        """
        from repro.storage.sharding import shard_of_term as term_shard

        hot = next(f"hot{i}" for i in range(100) if term_shard(f"hot{i}", 2) == 1)
        rng = random.Random(7)
        # blocked_postings is pinned (not left to REPRO_BLOCKED_POSTINGS):
        # the per-block CRC under test only exists in the blocked layout, and
        # the option persists through the app blob, so the reopen below keeps
        # decoding the same way whatever the environment flag says.
        index = SVRTextIndex(method="id", path=str(tmp_path / "i"), shards=2,
                             cache_pages=256, page_size=256,
                             blocked_postings=True)
        # Widely spaced doc ids make the blocked list span several pages.
        for doc_id in range(600):
            index.add_document_terms(doc_id * 9973, [hot, f"x{doc_id % 5}"],
                                     rng.uniform(1.0, 500.0))
        index.finalize()
        index.checkpoint()
        index.close()

        index = SVRTextIndex.open(str(tmp_path / "i"))
        sharded_handle = index.index._segments[hot]
        assert sharded_handle.shard == 1
        page_id = sharded_handle.handle.page_ids[-1]
        disk = index.env.shards[1].disk
        page = disk.peek(page_id)
        pristine = page.data
        mutated = bytearray(pristine)
        mutated[len(mutated) // 2] ^= 0x41
        page.write(bytes(mutated))
        disk.write(page)

        response = index.search([hot], k=700)
        assert response.stats.degraded
        assert 1 in index.quarantined_shards()
        health = [h for h in index.shard_health() if h.shard == 1][0]
        assert health.quarantined

        # Restore the bytes; reopening the shard lifts the quarantine and the
        # scan decodes cleanly again.
        page.write(pristine)
        disk.write(page)
        index.reopen_shard(1)
        assert not index.degraded
        assert not index.search([hot], k=700).stats.degraded
        index.close()

    def test_reopen_requires_durable_backend(self):
        index = _build(path=None)
        index.router.quarantine_shard(1, "test")
        with pytest.raises(StorageError):
            index.reopen_shard(1)
        index.close()


class TestExecutorQuarantine:
    def test_dead_executor_error_quarantines_and_reopen_revives(self, tmp_path):
        # On a single-core host the engine runs scans/writes inline and may
        # never hop to a worker, so drive the failure-domain wiring directly:
        # a submit to a killed executor yields a shard-tagged typed error,
        # that error quarantines the shard, and reopen_shard revives the
        # executor along with the storage.
        index = _build(path=str(tmp_path / "i"), threads=2)
        index.checkpoint()
        pool = index.router._pool
        assert pool is not None and pool.parallel
        assert pool.kill_executor(1)
        assert pool.executor_for(1).dead
        from repro.errors import ExecutorClosedError
        with pytest.raises(ExecutorClosedError) as excinfo:
            pool.submit(1, lambda: "never runs")
        assert excinfo.value.shard == 1
        assert index.router._quarantine_from_error(excinfo.value)
        assert 1 in index.quarantined_shards()
        bad = _term_on_shard(index, 1)
        good = _term_on_shard(index, 0)
        assert index.search([good, bad], k=5).stats.degraded
        index.reopen_shard(1)  # revives the executor and lifts quarantine
        assert not index.degraded
        assert not pool.executor_for(1).dead
        assert not index.search([good, bad], k=5).stats.degraded
        index.close()


# ---------------------------------------------------------------------------
# REPRO_FAULT_SEED plumbing
# ---------------------------------------------------------------------------


class TestFaultSeedEnviron:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert fault_seed_from_environ() is None
        assert fault_seed_from_environ(7) == 7

    def test_set_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "13")
        assert fault_seed_from_environ() == 13

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "not-a-seed")
        assert fault_seed_from_environ(3) == 3


# ---------------------------------------------------------------------------
# Fingerprint invariance with injection disabled
# ---------------------------------------------------------------------------


class TestDisabledInjectionInvariance:
    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_none_plan_fingerprint_identical(self, backend, tmp_path):
        prints = []
        for attach, sub in ((False, "a"), (True, "b")):
            path = (str(tmp_path / sub) if backend == "file" else None)
            index = _build(path=path)
            if attach:
                index.inject_faults(FaultPlan.none())
                assert index.env.shards[0].disk.fault_injector is None
            index.apply_score_updates([(1, 42.0), (2, 77.0)])
            if index.durable:
                index.checkpoint()
            index.search([_term_on_shard(index, 0)], k=5)
            prints.append(category_fingerprint(index.env))
            index.close()
        assert prints[0] == prints[1]


# ---------------------------------------------------------------------------
# The chaos property
# ---------------------------------------------------------------------------


CHAOS_SETTINGS = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestChaosStorms:
    @pytest.mark.parametrize("method", METHODS)
    def test_storm_survives_on_both_backends(self, method, tmp_path):
        corpus = _corpus()
        for backend in CHAOS_BACKENDS:
            config = ChaosStormConfig(
                backend=backend, num_batches=5, batch_size=6,
                fault_seed=fault_seed_from_environ(0),
                rate=0.04, escalations=2,
            )
            path = (str(tmp_path / f"{method}-{backend}")
                    if backend == "file" else None)
            result = run_chaos_storm(path, method, corpus, config, shards=2,
                                     **METHOD_OPTIONS[method])
            assert result.survived, result.mismatches
            assert result.cycles_committed <= result.cycles_attempted
            assert not result.unrecovered

    @CHAOS_SETTINGS
    @given(
        fault_seed=st.integers(min_value=0, max_value=10_000),
        method=st.sampled_from(METHODS),
        backend=st.sampled_from(CHAOS_BACKENDS),
        escalations=st.integers(min_value=0, max_value=3),
    )
    def test_arbitrary_fault_schedules_hold_the_contract(
            self, tmp_path_factory, fault_seed, method, backend, escalations):
        corpus = _corpus(num_docs=30)
        config = ChaosStormConfig(
            backend=backend, num_batches=4, batch_size=5,
            fault_seed=fault_seed, rate=0.05, escalations=escalations,
        )
        path = None
        if backend == "file":
            path = str(tmp_path_factory.mktemp("chaos")
                       / f"{method}-{fault_seed}")
        result = run_chaos_storm(path, method, corpus, config, shards=2,
                                 **METHOD_OPTIONS[method])
        # The contract: typed failures only (anything untyped would have
        # propagated out of run_chaos_storm), recovered state equal to the
        # committed prefix of the fault-free twin, clean data at rest.
        assert result.survived, (result.typed_errors, result.mismatches)

    def test_file_storms_actually_escalate_somewhere(self, tmp_path):
        # Guard against the storm silently degenerating into a no-fault walk:
        # across a small seed sweep the file profile must produce at least
        # one injected fault and one typed hard failure + recovery.
        corpus = _corpus()
        total_injected = total_recoveries = 0
        for seed in range(3):
            config = ChaosStormConfig(backend="file", num_batches=5,
                                      batch_size=6, fault_seed=seed,
                                      rate=0.05, escalations=2)
            result = run_chaos_storm(str(tmp_path / f"s{seed}"), "score",
                                     corpus, config, shards=2)
            assert result.survived, result.mismatches
            total_injected += sum(result.faults_injected.values())
            total_recoveries += result.recoveries
        assert total_injected > 0
        assert total_recoveries > 0
