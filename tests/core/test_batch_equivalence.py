"""Cross-method equivalence of the batched update pipeline.

The batched write path (:meth:`InvertedIndex.apply_batch`) redesigns how score
updates reach the stores, so these tests pin it to the sequential path from
every angle: for randomized update storms, applying the stream one
``update_score`` call at a time and applying it in batches must leave every
index method with

* **identical top-k answers** for conjunctive and disjunctive queries (and
  both equal to the brute-force reference), and
* **identical index contents** — every key-value store backing the method
  (Score table, short lists, ListScore/ListChunk bookkeeping, clustered
  lists) holds exactly the same entries.

Storm seeds live in ``tests.conftest.UPDATE_STORM_SEEDS``; the
hypothesis-driven property additionally varies the corpus, the storm length
and the batch window.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DocumentNotFoundError, InvertedIndexError
from repro.workloads.updates import (
    ScoreUpdate,
    UpdateWorkload,
    UpdateWorkloadConfig,
    resolve_batch,
    window_updates,
)
from tests.conftest import (
    METHOD_OPTIONS,
    SVR_ONLY_METHODS,
    TERMSCORE_METHODS,
    UPDATE_STORM_SEEDS,
    make_corpus,
)
from tests.helpers import build_index, query_doc_scores, reference_top_k

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS


def _generate_storm(rng: random.Random, doc_ids: list[int],
                    length: int) -> list[tuple[int, float]]:
    """A randomized update storm: repeated docs, extreme jumps, no-op updates."""
    storm: list[tuple[int, float]] = []
    for _ in range(length):
        doc_id = rng.choice(doc_ids)
        roll = rng.random()
        if roll < 0.1:
            new_score = 0.0  # collapse to the bottom
        elif roll < 0.2:
            new_score = round(rng.uniform(5000, 50000), 2)  # flash-crowd jump
        else:
            new_score = round(rng.uniform(0, 2000), 2)
        storm.append((doc_id, new_score))
        if roll > 0.9:
            # Burst: several updates to the same document inside one window.
            for _ in range(rng.randrange(1, 4)):
                storm.append((doc_id, round(rng.uniform(0, 2000), 2)))
    return storm[:length]


def _index_contents(index) -> dict[str, list]:
    """Every key-value store of the index's environment, fully materialised."""
    return {
        name: list(index.env.kvstore(name).items())
        for name in index.env.kvstore_names()
    }


def _assert_equivalent(single, batched, corpus, rng, trials=12):
    assert _index_contents(single) == _index_contents(batched)
    documents = {doc_id: set(terms) for doc_id, terms, _score in corpus}
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for _ in range(trials):
        keywords = rng.sample(vocabulary, 2)
        k = rng.choice([1, 3, 5, 10])
        conjunctive = rng.random() < 0.5
        assert (query_doc_scores(single, keywords, k, conjunctive)
                == query_doc_scores(batched, keywords, k, conjunctive))


@pytest.mark.parametrize("seed", UPDATE_STORM_SEEDS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_batched_storm_equals_one_at_a_time(method, seed):
    """The core harness: same storm, two application modes, equal state."""
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=40, vocabulary=18, terms_per_doc=10)
    single = build_index(method, corpus, **METHOD_OPTIONS[method])
    batched = build_index(method, corpus, **METHOD_OPTIONS[method])
    doc_ids = [doc_id for doc_id, _terms, _score in corpus]
    storm = _generate_storm(rng, doc_ids, length=150)
    for doc_id, new_score in storm:
        single.update_score(doc_id, new_score)
    window = rng.choice([1, 7, 32, len(storm)])
    for start in range(0, len(storm), window):
        batched.apply_batch(storm[start:start + window])
    _assert_equivalent(single, batched, corpus, rng)
    assert single.update_stats == batched.update_stats


@pytest.mark.parametrize("method", ALL_METHODS)
def test_batched_storm_matches_reference_top_k(method):
    """Batched application must also match the brute-force ground truth."""
    rng = random.Random(UPDATE_STORM_SEEDS[0])
    corpus = make_corpus(rng, num_docs=35, vocabulary=15, terms_per_doc=8)
    index = build_index(method, corpus, **METHOD_OPTIONS[method])
    documents = {doc_id: set(terms) for doc_id, terms, _score in corpus}
    scores = {doc_id: score for doc_id, _terms, score in corpus}
    storm = _generate_storm(rng, list(scores), length=120)
    for start in range(0, len(storm), 25):
        index.apply_batch(storm[start:start + 25])
    for doc_id, new_score in storm:
        scores[doc_id] = new_score
    if method in TERMSCORE_METHODS:
        return  # combined scoring is pinned by the cross-mode test above
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for _ in range(12):
        keywords = rng.sample(vocabulary, 2)
        expected = reference_top_k(documents, scores, set(), keywords, 5, True)
        assert query_doc_scores(index, keywords, 5) == expected


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_batches_interleaved_with_other_mutations(method):
    """Batches interleaved with inserts/deletes/content updates stay correct."""
    seed = UPDATE_STORM_SEEDS[1]
    rng_a, rng_b = random.Random(seed), random.Random(seed)
    corpus = make_corpus(random.Random(seed), num_docs=30, vocabulary=12,
                         terms_per_doc=8)
    single = build_index(method, corpus, **METHOD_OPTIONS[method])
    batched = build_index(method, corpus, **METHOD_OPTIONS[method])
    vocabulary = [f"w{i:03d}" for i in range(12)]
    live = [doc_id for doc_id, _t, _s in corpus]
    next_id = 500
    for _round in range(8):
        storm = _generate_storm(rng_a, live, length=20)
        for doc_id, new_score in storm:
            single.update_score(doc_id, new_score)
        batched.apply_batch(storm)
        action = rng_a.random()
        if action < 0.4:
            next_id += 1
            terms = [rng_a.choice(vocabulary) for _ in range(6)]
            score = round(rng_a.uniform(0, 3000), 2)
            for index in (single, batched):
                index.insert_document(next_id, terms, score)
            live.append(next_id)
        elif action < 0.7 and len(live) > 5:
            victim = rng_a.choice(live)
            for index in (single, batched):
                index.delete_document(victim)
            live.remove(victim)
        else:
            target = rng_a.choice(live)
            terms = [rng_a.choice(vocabulary) for _ in range(6)]
            for index in (single, batched):
                index.update_content(target, terms)
    _assert_equivalent(single, batched, corpus, rng_b)


class TestApplyBatchContract:
    def test_unknown_document_fails_before_any_mutation(self):
        rng = random.Random(3)
        corpus = make_corpus(rng, num_docs=10)
        index = build_index("chunk", corpus, **METHOD_OPTIONS["chunk"])
        before = _index_contents(index)
        with pytest.raises(DocumentNotFoundError):
            index.apply_batch([(1, 50.0), (999, 10.0)])
        assert _index_contents(index) == before
        assert index.update_stats.score_updates == 0

    def test_invalid_score_fails_before_any_mutation(self):
        rng = random.Random(3)
        corpus = make_corpus(rng, num_docs=10)
        index = build_index("score", corpus)
        before = _index_contents(index)
        with pytest.raises(InvertedIndexError):
            index.apply_batch([(1, 50.0), (2, -1.0)])
        assert _index_contents(index) == before

    def test_empty_batch_is_a_noop(self):
        rng = random.Random(3)
        corpus = make_corpus(rng, num_docs=10)
        index = build_index("id", corpus)
        assert index.apply_batch([]) == 0
        assert index.update_stats.score_updates == 0

    def test_requires_finalized_index(self, env):
        from repro.core.indexes.registry import create_index
        from repro.text.documents import DocumentStore

        index = create_index("id", env, DocumentStore())
        with pytest.raises(InvertedIndexError, match="finalize"):
            index.apply_batch([(1, 2.0)])


class TestWorkloadBatching:
    def test_window_updates_partitions_the_stream(self):
        updates = [ScoreUpdate(doc_id=i, delta=1.0) for i in range(10)]
        windows = list(window_updates(updates, 4))
        assert [len(w) for w in windows] == [4, 4, 2]
        assert [u for w in windows for u in w] == updates

    def test_window_updates_rejects_bad_window(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            list(window_updates([], 0))

    def test_resolve_batch_applies_deltas_sequentially(self):
        batch = [
            ScoreUpdate(doc_id=1, delta=-200.0),  # clamps to 0
            ScoreUpdate(doc_id=1, delta=30.0),    # from the clamped 0
            ScoreUpdate(doc_id=2, delta=5.0),
            ScoreUpdate(doc_id=3, delta=1.0),     # unknown doc: skipped
        ]
        resolved = resolve_batch(batch, {1: 100.0, 2: 10.0})
        assert resolved == [(1, 0.0), (1, 30.0), (2, 15.0)]

    def test_windowed_resolution_equals_sequential_application(self):
        """The full workload pipeline: windows + resolution == per-update loop."""
        rng = random.Random(UPDATE_STORM_SEEDS[2])
        corpus = make_corpus(rng, num_docs=25, vocabulary=10, terms_per_doc=6)
        scores = {doc_id: score for doc_id, _t, score in corpus}
        workload = UpdateWorkload(
            UpdateWorkloadConfig(num_updates=200, seed=9), scores
        )
        stream = workload.generate_list()
        single = build_index("score_threshold", corpus,
                            **METHOD_OPTIONS["score_threshold"])
        batched = build_index("score_threshold", corpus,
                              **METHOD_OPTIONS["score_threshold"])
        running = dict(scores)
        for update in stream:
            new_score = update.apply_to(running[update.doc_id])
            running[update.doc_id] = new_score
            single.update_score(update.doc_id, new_score)
        current = dict(scores)
        for batch in window_updates(stream, 16):
            resolved = resolve_batch(batch, current)
            for doc_id, new_score in resolved:
                current[doc_id] = new_score
            batched.apply_batch(resolved)
        _assert_equivalent(single, batched, corpus, rng)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_docs=st.integers(min_value=5, max_value=30),
    storm_length=st.integers(min_value=0, max_value=80),
    window=st.integers(min_value=1, max_value=50),
)
def test_property_batched_application_is_mode_invariant(seed, num_docs,
                                                        storm_length, window):
    """Property: for any storm and window size, batching never changes state.

    Runs the two stateful-threshold methods (where batch decisions depend on
    the order of earlier updates) — the ones most likely to diverge.
    """
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=num_docs, vocabulary=8, terms_per_doc=5)
    doc_ids = [doc_id for doc_id, _t, _s in corpus]
    storm = _generate_storm(rng, doc_ids, length=storm_length)
    for method in ("score_threshold", "chunk"):
        single = build_index(method, corpus, **METHOD_OPTIONS[method])
        batched = build_index(method, corpus, **METHOD_OPTIONS[method])
        for doc_id, new_score in storm:
            single.update_score(doc_id, new_score)
        for start in range(0, len(storm), window):
            batched.apply_batch(storm[start:start + window])
        assert _index_contents(single) == _index_contents(batched)
