"""Property-based round-trip tests for the posting codecs.

The lazy decoders are the query-scan hot path and batch-decode runs of
postings straight out of page fragments; these properties pin them to the
simple eager reference decoders across randomized page splits, including the
term-score variants and truncated inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvertedIndexError
from repro.core.posting import (
    LazyBytesReader,
    Posting,
    ScoredPosting,
    build_chunk_runs,
    decode_chunk_runs,
    decode_id_postings,
    decode_scored_postings,
    decode_varint,
    encode_chunk_runs,
    encode_id_postings,
    encode_scored_postings,
    encode_varint,
    iter_chunk_postings_lazy,
    iter_id_postings_lazy,
    iter_scored_postings_lazy,
)

doc_ids = st.integers(min_value=0, max_value=2 ** 31 - 1)
term_scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


def paginate(data: bytes, page_size: int) -> list[bytes]:
    """Split an encoded list into page-sized fragments (as a heap file would)."""
    return [data[i:i + page_size] for i in range(0, len(data), page_size)]


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2 ** 62))
def test_varint_round_trip(value):
    decoded, offset = decode_varint(encode_varint(value), 0)
    assert decoded == value
    assert offset == len(encode_varint(value))


@settings(max_examples=60, deadline=None)
@given(ids=st.lists(doc_ids, max_size=200, unique=True))
def test_id_postings_round_trip(ids):
    postings = [Posting(doc_id=i) for i in sorted(ids)]
    assert decode_id_postings(encode_id_postings(postings)) == postings


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(doc_ids, st.floats(min_value=0, max_value=1e6, allow_nan=False)),
        max_size=100,
        unique_by=lambda entry: entry[0],
    )
)
def test_scored_postings_round_trip(entries):
    ordered = sorted(entries, key=lambda entry: -entry[1])
    postings = [ScoredPosting(doc_id=doc, score=score) for doc, score in ordered]
    decoded = decode_scored_postings(encode_scored_postings(postings))
    assert [(p.doc_id, p.score) for p in decoded] == [(p.doc_id, p.score) for p in postings]


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=20)),
        max_size=150,
        unique_by=lambda entry: entry[0],
    ),
    page_size=st.integers(min_value=3, max_value=64),
)
def test_chunk_runs_round_trip_eager_and_lazy(triples, page_size):
    runs = build_chunk_runs([(doc, chunk, 0.0) for doc, chunk in triples])
    data = encode_chunk_runs(runs)
    assert decode_chunk_runs(data) == runs
    lazy = list(iter_chunk_postings_lazy(LazyBytesReader(iter(paginate(data, page_size)))))
    eager = [
        (run.chunk_id, posting.doc_id, posting.term_score)
        for run in runs for posting in run.postings
    ]
    assert lazy == eager


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(doc_ids, max_size=200, unique=True),
    page_size=st.integers(min_value=1, max_value=48),
)
def test_lazy_id_decoding_is_page_size_independent(ids, page_size):
    postings = [Posting(doc_id=i) for i in sorted(ids)]
    data = encode_id_postings(postings)
    lazy = list(iter_id_postings_lazy(LazyBytesReader(iter(paginate(data, page_size)))))
    assert lazy == [(posting.doc_id, posting.term_score) for posting in postings]


# ---------------------------------------------------------------------------
# Lazy-vs-eager equivalence across every codec variant
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(st.tuples(doc_ids, term_scores), max_size=150,
                     unique_by=lambda entry: entry[0]),
    page_size=st.integers(min_value=1, max_value=48),
)
def test_lazy_id_termscore_matches_eager(entries, page_size):
    postings = [Posting(doc_id=doc, term_score=score) for doc, score in sorted(entries)]
    data = encode_id_postings(postings, with_term_scores=True)
    eager = [(p.doc_id, p.term_score) for p in decode_id_postings(data)]
    lazy = list(iter_id_postings_lazy(LazyBytesReader(iter(paginate(data, page_size)))))
    assert lazy == eager


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(doc_ids, st.floats(min_value=0, max_value=1e6, allow_nan=False),
                  term_scores),
        max_size=100,
        unique_by=lambda entry: entry[0],
    ),
    page_size=st.integers(min_value=1, max_value=48),
    with_term_scores=st.booleans(),
)
def test_lazy_scored_matches_eager(entries, page_size, with_term_scores):
    ordered = sorted(entries, key=lambda entry: -entry[1])
    postings = [
        ScoredPosting(doc_id=doc, score=score, term_score=ts)
        for doc, score, ts in ordered
    ]
    data = encode_scored_postings(postings, with_term_scores=with_term_scores)
    eager = [(p.doc_id, p.score, p.term_score) for p in decode_scored_postings(data)]
    lazy = list(iter_scored_postings_lazy(LazyBytesReader(iter(paginate(data, page_size)))))
    assert lazy == eager


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=20), term_scores),
        max_size=150,
        unique_by=lambda entry: entry[0],
    ),
    page_size=st.integers(min_value=1, max_value=48),
)
def test_lazy_chunk_termscore_matches_eager(triples, page_size):
    runs = build_chunk_runs(triples)
    data = encode_chunk_runs(runs, with_term_scores=True)
    eager = [
        (run.chunk_id, posting.doc_id, posting.term_score)
        for run in decode_chunk_runs(data) for posting in run.postings
    ]
    lazy = list(iter_chunk_postings_lazy(LazyBytesReader(iter(paginate(data, page_size)))))
    assert lazy == eager


# ---------------------------------------------------------------------------
# Truncation: the lazy decoders must fail loudly, never fabricate postings
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(doc_ids, min_size=4, max_size=60, unique=True),
    page_size=st.integers(min_value=1, max_value=32),
    with_term_scores=st.booleans(),
    data=st.data(),
)
def test_truncated_id_list_raises_or_is_prefix(ids, page_size, with_term_scores, data):
    postings = [Posting(doc_id=i, term_score=0.5) for i in sorted(ids)]
    encoded = encode_id_postings(postings, with_term_scores=with_term_scores)
    cut = data.draw(st.integers(min_value=1, max_value=len(encoded) - 1))
    reader = LazyBytesReader(iter(paginate(encoded[:cut], page_size)))
    expected = [(p.doc_id, p.term_score if with_term_scores else 0.0) for p in postings]
    produced = []
    with pytest.raises(InvertedIndexError):
        for item in iter_id_postings_lazy(reader):
            produced.append(item)
    # Everything decoded before the truncation error must be a prefix of the
    # true posting sequence — batch decoding must not emit garbage first.
    assert produced == expected[: len(produced)]


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=10), term_scores),
        min_size=4,
        max_size=60,
        unique_by=lambda entry: entry[0],
    ),
    page_size=st.integers(min_value=1, max_value=32),
    with_term_scores=st.booleans(),
    data=st.data(),
)
def test_truncated_chunk_list_raises_or_is_prefix(triples, page_size,
                                                  with_term_scores, data):
    runs = build_chunk_runs(triples)
    encoded = encode_chunk_runs(runs, with_term_scores=with_term_scores)
    cut = data.draw(st.integers(min_value=1, max_value=len(encoded) - 1))
    reader = LazyBytesReader(iter(paginate(encoded[:cut], page_size)))
    expected = [
        (run.chunk_id, p.doc_id, p.term_score if with_term_scores else 0.0)
        for run in runs for p in run.postings
    ]
    produced = []
    with pytest.raises(InvertedIndexError):
        for item in iter_chunk_postings_lazy(reader):
            produced.append(item)
    assert produced == expected[: len(produced)]
