"""Property-based round-trip tests for the posting codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.posting import (
    LazyBytesReader,
    Posting,
    ScoredPosting,
    build_chunk_runs,
    decode_chunk_runs,
    decode_id_postings,
    decode_scored_postings,
    decode_varint,
    encode_chunk_runs,
    encode_id_postings,
    encode_scored_postings,
    encode_varint,
    iter_chunk_postings_lazy,
    iter_id_postings_lazy,
)

doc_ids = st.integers(min_value=0, max_value=2 ** 31 - 1)


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2 ** 62))
def test_varint_round_trip(value):
    decoded, offset = decode_varint(encode_varint(value), 0)
    assert decoded == value
    assert offset == len(encode_varint(value))


@settings(max_examples=60, deadline=None)
@given(ids=st.lists(doc_ids, max_size=200, unique=True))
def test_id_postings_round_trip(ids):
    postings = [Posting(doc_id=i) for i in sorted(ids)]
    assert decode_id_postings(encode_id_postings(postings)) == postings


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(doc_ids, st.floats(min_value=0, max_value=1e6, allow_nan=False)),
        max_size=100,
        unique_by=lambda entry: entry[0],
    )
)
def test_scored_postings_round_trip(entries):
    ordered = sorted(entries, key=lambda entry: -entry[1])
    postings = [ScoredPosting(doc_id=doc, score=score) for doc, score in ordered]
    decoded = decode_scored_postings(encode_scored_postings(postings))
    assert [(p.doc_id, p.score) for p in decoded] == [(p.doc_id, p.score) for p in postings]


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=20)),
        max_size=150,
        unique_by=lambda entry: entry[0],
    ),
    page_size=st.integers(min_value=3, max_value=64),
)
def test_chunk_runs_round_trip_eager_and_lazy(triples, page_size):
    runs = build_chunk_runs([(doc, chunk, 0.0) for doc, chunk in triples])
    data = encode_chunk_runs(runs)
    assert decode_chunk_runs(data) == runs
    pages = [data[i:i + page_size] for i in range(0, len(data), page_size)]
    lazy = list(iter_chunk_postings_lazy(LazyBytesReader(iter(pages))))
    eager = [(run.chunk_id, posting) for run in runs for posting in run.postings]
    assert lazy == eager


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(doc_ids, max_size=200, unique=True),
    page_size=st.integers(min_value=1, max_value=48),
)
def test_lazy_id_decoding_is_page_size_independent(ids, page_size):
    postings = [Posting(doc_id=i) for i in sorted(ids)]
    data = encode_id_postings(postings)
    pages = [data[i:i + page_size] for i in range(0, len(data), page_size)]
    assert list(iter_id_postings_lazy(LazyBytesReader(iter(pages)))) == postings
