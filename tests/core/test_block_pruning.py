"""Pruning-equivalence suite for the blocked posting layout.

The block-max skip step may only change *cost*, never *results*: for every
method, shard count and thread count, the pruned top-k must be bit-identical
to the unpruned top-k, and pruned runs must never read more pages than
unpruned ones.  An adversarial zipf workload additionally pins down that the
skip step actually fires (``blocks_skipped > 0``) and saves pages strictly.
"""

import random

import pytest

from repro.core.index_router import IndexRouter

METHODS = ["id", "id_termscore", "score", "score_threshold", "chunk", "chunk_termscore"]

#: Ratios tuned so the stopping rules (and therefore the block-max skip step)
#: are active on small corpora; the paper-tuned defaults rarely prune lists
#: this short.
METHOD_OPTIONS = {
    "score_threshold": dict(threshold_ratio=1.2),
    "chunk": dict(chunk_ratio=1.5, min_chunk_size=50),
    "chunk_termscore": dict(chunk_ratio=1.5, min_chunk_size=50),
}

QUERIES = [
    (["t00", "t01"], 5, False),
    (["t00"], 5, False),
    (["t00"], 10, False),
    (["t01", "t02"], 3, False),
    (["t00", "t01"], 5, True),
    (["t03", "t05", "t07"], 5, False),
]


def zipf_corpus(n_docs, n_terms=12, seed=3):
    """A zipf-ish corpus: few hot terms with very long lists, skewed scores."""
    terms = [f"t{i:02d}" for i in range(n_terms)]
    rng = random.Random(seed)
    corpus = []
    for doc_id in range(n_docs):
        count = rng.randint(3, 8)
        chosen = [
            terms[min(int(rng.paretovariate(1.3)) % n_terms, n_terms - 1)]
            for _ in range(count)
        ]
        corpus.append((doc_id, chosen, rng.expovariate(0.002) + 1.0))
    return corpus


def build_router(method, corpus, shards, threads, n_updates=120, **extra):
    options = dict(METHOD_OPTIONS.get(method, {}))
    options.update(extra)
    # Pin the codec under test: this suite must exercise the blocked layout
    # (and its skip step) even when the environment runs the legacy-codec CI
    # leg with REPRO_BLOCKED_POSTINGS=0.
    options.setdefault("blocked_postings", True)
    router = IndexRouter.build(method, shard_count=shards, threads=threads,
                               page_size=512, cache_pages=4096, **options)
    for doc_id, terms, score in corpus:
        router.add_document(doc_id, score, terms=terms)
    router.finalize()
    rng = random.Random(99)
    for _ in range(n_updates):
        router.update_score(rng.randrange(len(corpus)), rng.expovariate(0.002) + 1.0)
    return router


def run_queries(router, pruning):
    """Query results plus (pages_read, blocks_skipped) with pruning toggled."""
    router.index.block_max_pruning = pruning
    results, pages, skipped = [], 0, 0
    for keywords, k, conjunctive in QUERIES:
        router.drop_long_list_cache()
        response = router.query(keywords, k=k, conjunctive=conjunctive)
        results.append([(r.doc_id, r.score) for r in response.results])
        pages += response.stats.pages_read
        skipped += response.stats.blocks_skipped
    return results, pages, skipped


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("shards,threads", [(1, 1), (4, 1), (1, 4), (4, 4)])
def test_pruned_topk_identical_to_unpruned(method, shards, threads):
    corpus = zipf_corpus(1200)
    router = build_router(method, corpus, shards, threads)
    try:
        if router._pool is not None:
            # Lazy (non-scattered) pumps make page accounting deterministic:
            # blocks are computed on the consuming thread exactly when needed,
            # so the pruned-vs-unpruned page comparison is exact, not racy.
            router._pool.scatter = False
        pruned, pages_on, _ = run_queries(router, pruning=True)
        unpruned, pages_off, _ = run_queries(router, pruning=False)
        assert pruned == unpruned
        # Terminal block pruning reads a subset of the unpruned pages.
        assert pages_on <= pages_off
    finally:
        router.shutdown()


@pytest.mark.parametrize("method", ["score_threshold", "chunk", "chunk_termscore"])
def test_adversarial_zipf_skips_blocks(method):
    """The skip step fires on long skewed lists under the parallel fan-out.

    The serial merge is already lazy (it stops pulling at the paper's
    stopping rules), so the savings show up where the concurrent subsystem
    speculatively decodes ahead: executor-side pulls consult the shared
    threshold and stop at block granularity.
    """
    corpus = zipf_corpus(4000)
    router = build_router(method, corpus, shards=4, threads=4, n_updates=150)
    try:
        router._pool.scatter = False
        pruned, pages_on, skipped = run_queries(router, pruning=True)
        unpruned, pages_off, _ = run_queries(router, pruning=False)
        assert pruned == unpruned
        assert skipped > 0
        assert pages_on <= pages_off
    finally:
        router.shutdown()


def test_adversarial_zipf_saves_pages_strictly():
    """On the score_threshold workload the pruned run reads strictly fewer pages."""
    corpus = zipf_corpus(4000)
    router = build_router("score_threshold", corpus, shards=4, threads=4,
                          n_updates=150)
    try:
        router._pool.scatter = False
        pruned, pages_on, skipped = run_queries(router, pruning=True)
        unpruned, pages_off, _ = run_queries(router, pruning=False)
        assert pruned == unpruned
        assert skipped > 0
        assert pages_on < pages_off
    finally:
        router.shutdown()


@pytest.mark.parametrize("method", METHODS)
def test_legacy_codec_produces_identical_results(method):
    """Flag off (legacy long-list payloads) returns the same top-k as flag on."""
    corpus = zipf_corpus(800)
    blocked = build_router(method, corpus, shards=1, threads=1, n_updates=60,
                           blocked_postings=True)
    legacy = build_router(method, corpus, shards=1, threads=1, n_updates=60,
                          blocked_postings=False)
    try:
        assert legacy.index.blocked_postings is False
        blocked_results, _, _ = run_queries(blocked, pruning=True)
        legacy_results, _, _ = run_queries(legacy, pruning=True)
        assert blocked_results == legacy_results
        # The legacy layout has no block headers, so nothing can be skipped.
        _, _, legacy_skipped = run_queries(legacy, pruning=True)
        assert legacy_skipped == 0
    finally:
        blocked.shutdown()
        legacy.shutdown()
