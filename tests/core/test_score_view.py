"""Tests for the Score materialised view plumbing (ScoreMaintainer)."""

import pytest

from repro.core.score_view import ScoreMaintainer
from repro.core.scorespec import ScoreSpec
from repro.relational.database import Database
from repro.relational.functions import aggregate_lookup, column_lookup
from repro.relational.types import ColumnType


@pytest.fixture
def rated_database():
    database = Database()
    items = database.create_table(
        "items",
        columns=[("item_id", ColumnType.INTEGER), ("body", ColumnType.TEXT)],
        primary_key="item_id",
    )
    ratings = database.create_table(
        "ratings",
        columns=[
            ("rating_id", ColumnType.INTEGER),
            ("item_id", ColumnType.INTEGER),
            ("stars", ColumnType.FLOAT),
        ],
        primary_key="rating_id",
    )
    ratings.create_index("item_id")
    counters = database.create_table(
        "counters",
        columns=[("item_id", ColumnType.INTEGER), ("visits", ColumnType.INTEGER)],
        primary_key="item_id",
    )
    for item_id in (1, 2, 3):
        items.insert({"item_id": item_id, "body": f"document {item_id}"})
        counters.insert({"item_id": item_id, "visits": item_id * 10})
    ratings.insert({"rating_id": 1, "item_id": 1, "stars": 4.0})
    ratings.insert({"rating_id": 2, "item_id": 2, "stars": 2.0})
    spec = ScoreSpec.weighted(
        [
            aggregate_lookup(database, "S1", "ratings", "item_id", "stars", "avg"),
            column_lookup(database, "S2", "counters", "item_id", "visits"),
        ],
        weights=[100.0, 1.0],
    )
    return database, spec


class TestScoreMaintainer:
    def test_initial_population_matches_spec(self, rated_database):
        database, spec = rated_database
        maintainer = ScoreMaintainer(
            database, "score", spec,
            dependencies=[("items", "item_id"), ("ratings", "item_id"), ("counters", "item_id")],
            initial_keys=[1, 2, 3],
        )
        for key in (1, 2, 3):
            assert maintainer.score(key) == pytest.approx(spec.svr_score(key))
        assert set(maintainer.scores()) == {1, 2, 3}

    def test_incremental_maintenance_on_every_dependency(self, rated_database):
        database, spec = rated_database
        maintainer = ScoreMaintainer(
            database, "score", spec,
            dependencies=[("items", "item_id"), ("ratings", "item_id"), ("counters", "item_id")],
            initial_keys=[1, 2, 3],
        )
        database.table("ratings").insert({"rating_id": 3, "item_id": 3, "stars": 5.0})
        database.table("counters").update(1, {"visits": 500})
        database.table("ratings").update(2, {"stars": 4.5})
        for key in (1, 2, 3):
            assert maintainer.score(key) == pytest.approx(spec.svr_score(key))

    def test_attach_index_forwards_score_changes(self, rated_database):
        database, spec = rated_database

        class RecordingIndex:
            def __init__(self):
                self.updates = []

            def current_score(self, key):
                return 0.0 if key in (1, 2, 3) else None

            def update_score(self, key, score):
                self.updates.append((key, score))

        maintainer = ScoreMaintainer(
            database, "score", spec,
            dependencies=[("ratings", "item_id")],
            initial_keys=[1, 2, 3],
        )
        recorder = RecordingIndex()
        maintainer.attach_index(recorder)
        database.table("ratings").insert({"rating_id": 9, "item_id": 1, "stars": 1.0})
        assert recorder.updates == [(1, pytest.approx(spec.svr_score(1)))]

    def test_changes_for_unknown_documents_are_ignored(self, rated_database):
        database, spec = rated_database

        class RejectingIndex:
            def current_score(self, key):
                return None

            def update_score(self, key, score):  # pragma: no cover - must not run
                raise AssertionError("unknown documents must not be forwarded")

        maintainer = ScoreMaintainer(
            database, "score", spec,
            dependencies=[("ratings", "item_id")], initial_keys=[1, 2, 3],
        )
        maintainer.attach_index(RejectingIndex())
        database.table("ratings").insert({"rating_id": 10, "item_id": 2, "stars": 3.3})

    def test_maintenance_recompute_counter(self, rated_database):
        database, spec = rated_database
        maintainer = ScoreMaintainer(
            database, "score", spec,
            dependencies=[("ratings", "item_id")], initial_keys=[1, 2, 3],
        )
        before = maintainer.view.maintenance_recomputes
        database.table("ratings").insert({"rating_id": 11, "item_id": 1, "stars": 2.0})
        assert maintainer.view.maintenance_recomputes == before + 1
