"""Hot-term inverted-list cache: correctness under every write/failure event.

The :class:`~repro.core.list_cache.InvertedListCache` keeps *decoded* long-list
postings in memory, so its one hard obligation is to never serve postings that
predate a write.  This suite checks that obligation at every invalidation
boundary the PR wired up:

* **unit layer** — byte-budget admission, LRU eviction, full and per-shard
  invalidation, and the live-score memo side-car;
* **equivalence matrix** — cache-on answers equal cache-off answers across all
  six index methods x shards {1, 4} x threads {1, 4}, interleaved with
  sequential score updates, batched update windows, inserts, deletes and
  content updates;
* **failure domains** — shard quarantine and ``reopen_shard`` drop the
  shard's entries (a recovered shard may have rolled back past the postings a
  cached entry was decoded from);
* **durability** — a recovered index starts with a *cold* cache (entries are
  excluded from the durability blob);
* **block seeking** — the opt-in seek path (``block_seeking=True``) returns
  the same conjunctive top-k as the sequential merge, with and without the
  cache, before and after incremental writes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.list_cache import InvertedListCache, list_cache_pages_from_environ
from repro.core.text_index import SVRTextIndex
from repro.errors import InvertedIndexError
from repro.storage.sharding import shard_of_term
from tests.conftest import METHOD_OPTIONS, SVR_ONLY_METHODS, TERMSCORE_METHODS, make_corpus
from tests.helpers import build_index, query_doc_scores

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS

#: Pages granted to the hot-term cache in the equivalence matrix; with the
#: 4096-byte default page size this comfortably admits every long list of the
#: small corpora, so the cache actually serves hits rather than idling.
CACHE_PAGES = 8


# ---------------------------------------------------------------------------
# Unit layer
# ---------------------------------------------------------------------------


class TestInvertedListCacheUnit:
    def test_environ_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_LIST_CACHE_PAGES", raising=False)
        assert list_cache_pages_from_environ() == 0
        monkeypatch.setenv("REPRO_LIST_CACHE_PAGES", "64")
        assert list_cache_pages_from_environ() == 64
        monkeypatch.setenv("REPRO_LIST_CACHE_PAGES", "-1")
        with pytest.raises(InvertedIndexError):
            list_cache_pages_from_environ()
        monkeypatch.setenv("REPRO_LIST_CACHE_PAGES", "lots")
        with pytest.raises(InvertedIndexError):
            list_cache_pages_from_environ()

    def test_hit_miss_and_lru_eviction(self):
        cache = InvertedListCache(budget_bytes=100)
        assert cache.get(None, "a") is None
        assert cache.put(None, "a", [(1, 0.0)], nbytes=40)
        assert cache.put(None, "b", [(2, 0.0)], nbytes=40)
        assert cache.get(None, "a") == [(1, 0.0)]  # refreshes a's recency
        assert cache.put(None, "c", [(3, 0.0)], nbytes=40)  # evicts b, not a
        assert cache.get(None, "b") is None
        assert cache.get(None, "a") == [(1, 0.0)]
        assert cache.get(None, "c") == [(3, 0.0)]
        assert cache.used_bytes == 80
        assert cache.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = InvertedListCache(budget_bytes=100)
        assert not cache.put(None, "huge", [(1, 0.0)], nbytes=101)
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_replacing_entry_recharges_budget(self):
        cache = InvertedListCache(budget_bytes=100)
        cache.put(None, "a", [(1, 0.0)], nbytes=60)
        cache.put(None, "a", [(1, 0.0), (2, 0.0)], nbytes=80)
        assert cache.used_bytes == 80 and len(cache) == 1

    def test_invalidate_clears_everything(self):
        cache = InvertedListCache(budget_bytes=100)
        cache.put(0, "a", [(1, 0.0)], nbytes=10)
        cache.scores[7] = 1.5
        cache.invalidate()
        assert len(cache) == 0 and cache.used_bytes == 0
        assert not cache.scores
        assert cache.stats.invalidations == 1

    def test_invalidate_shard_is_selective_for_lists_only(self):
        cache = InvertedListCache(budget_bytes=100)
        cache.put(0, "a", [(1, 0.0)], nbytes=10)
        cache.put(1, "b", [(2, 0.0)], nbytes=20)
        cache.scores[7] = 1.5
        cache.invalidate_shard(1)
        assert cache.get(0, "a") == [(1, 0.0)]
        assert cache.get(1, "b") is None
        # Scores are not shard-partitioned: the memo drops conservatively.
        assert not cache.scores
        assert cache.used_bytes == 10


# ---------------------------------------------------------------------------
# Equivalence matrix: six methods x shards x threads, writes interleaved
# ---------------------------------------------------------------------------


_PROBES = (
    (["w001", "w004"], 3, True),
    (["w001", "w004"], 10, True),
    (["w002", "w007", "w011"], 5, True),
    (["w003"], 10, False),
    (["w005", "w009"], 10, False),
)


def _snapshot(index: SVRTextIndex) -> list:
    """Top-k answers over the probe workload, as comparable tuples."""
    out = []
    for keywords, k, conjunctive in _PROBES:
        response = index.search(keywords, k=k, conjunctive=conjunctive)
        out.append([(r.doc_id, r.score) for r in response.results])
    return out


def _build_pair(method: str, shards: int, threads: int):
    """The same corpus behind a cache-on and a cache-off text index."""
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    indexes = []
    for pages in (CACHE_PAGES, 0):
        index = SVRTextIndex(
            method=method, shards=shards, threads=threads, cache_pages=256,
            list_cache_pages=pages, **METHOD_OPTIONS[method],
        )
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        indexes.append(index)
    return indexes[0], indexes[1]


@pytest.mark.parametrize("threads", [1, 4])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("method", ALL_METHODS)
def test_cache_on_equals_cache_off_under_writes(method, shards, threads):
    cached, plain = _build_pair(method, shards, threads)
    try:
        # Fresh build: first pass fills the cache, second pass serves from it.
        assert _snapshot(cached) == _snapshot(plain)
        assert _snapshot(cached) == _snapshot(plain)

        rng = random.Random(5)
        live = [doc_id for doc_id, _terms, _score in make_corpus(
            random.Random(97), num_docs=40, vocabulary=25)]

        # Sequential score updates.
        for _ in range(6):
            doc_id = rng.choice(live)
            score = round(rng.uniform(0.0, 1000.0), 2)
            cached.update_score(doc_id, score)
            plain.update_score(doc_id, score)
        assert _snapshot(cached) == _snapshot(plain)

        # A batched update window (the group-commit path).
        window = [(rng.choice(live), round(rng.uniform(0.0, 1000.0), 2))
                  for _ in range(8)]
        cached.apply_score_updates(window)
        plain.apply_score_updates(window)
        assert _snapshot(cached) == _snapshot(plain)

        # Insert, content update, delete.
        new_terms = ["w001", "w004", "w019"]
        cached.insert_document_terms(900, new_terms, 512.0)
        plain.insert_document_terms(900, new_terms, 512.0)
        assert _snapshot(cached) == _snapshot(plain)

        cached.update_content(900, "w002 w004 w007")
        plain.update_content(900, "w002 w004 w007")
        assert _snapshot(cached) == _snapshot(plain)

        victim = live.pop(0)
        cached.delete_document(victim)
        plain.delete_document(victim)
        assert _snapshot(cached) == _snapshot(plain)
    finally:
        cached.close()
        plain.close()


def test_cache_actually_serves_hits():
    """Guard the matrix against passing vacuously: the cache must engage."""
    cached, plain = _build_pair("chunk", shards=1, threads=1)
    try:
        _snapshot(cached)
        _snapshot(cached)
        cache = cached.index.list_cache
        assert cache is not None and len(cache) > 0
        assert cache.stats.hits > 0
        assert plain.index.list_cache is None
    finally:
        cached.close()
        plain.close()

def test_cache_invalidated_by_each_write_entry_point():
    """Every write API drops the cache before the method reacts to the write."""
    cached, plain = _build_pair("id", shards=1, threads=1)
    try:
        writes = [
            lambda i: i.update_score(3, 999.5),
            lambda i: i.apply_score_updates([(4, 1.25), (5, 800.0)]),
            lambda i: i.insert_document_terms(901, ["w001", "w004"], 700.0),
            lambda i: i.update_content(901, "w004 w009"),
            lambda i: i.delete_document(901),
        ]
        for write in writes:
            _snapshot(cached)  # repopulate
            assert len(cached.index.list_cache) > 0
            write(cached)
            write(plain)
            assert len(cached.index.list_cache) == 0  # dropped eagerly
            assert _snapshot(cached) == _snapshot(plain)
    finally:
        cached.close()
        plain.close()


# ---------------------------------------------------------------------------
# Failure domains: quarantine + reopen_shard
# ---------------------------------------------------------------------------


def _durable_pair(tmp_path, list_cache_pages: int = CACHE_PAGES):
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    indexes = []
    for tag, pages in (("on", list_cache_pages), ("off", 0)):
        index = SVRTextIndex(
            method="chunk", shards=4, cache_pages=256,
            list_cache_pages=pages, path=str(tmp_path / f"cache-{tag}"),
            **METHOD_OPTIONS["chunk"],
        )
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        index.checkpoint()
        indexes.append(index)
    return indexes[0], indexes[1]


def test_quarantine_and_reopen_drop_shard_entries(tmp_path):
    cached, plain = _durable_pair(tmp_path)
    try:
        _snapshot(cached)
        cache = cached.index.list_cache
        shards_cached = {shard for shard, _term in cache._entries}
        assert shards_cached, "probe queries must populate the cache"
        victim = sorted(shards_cached)[0]

        cached.router.quarantine_shard(victim, "test quarantine")
        plain.router.quarantine_shard(victim, "test quarantine")
        assert all(shard != victim for shard, _term in cache._entries)
        # Degraded answers still match cache-off degraded answers.
        assert _snapshot(cached) == _snapshot(plain)

        cached.reopen_shard(victim)
        plain.reopen_shard(victim)
        assert all(shard != victim for shard, _term in cache._entries)
        assert _snapshot(cached) == _snapshot(plain)
        assert _snapshot(cached) == _snapshot(plain)  # cache refilled, still equal
    finally:
        cached.close()
        plain.close()


def test_reopen_never_serves_rolled_back_postings(tmp_path):
    """A shard recovered to an older commit must not answer from stale cache.

    The insert after the checkpoint is never committed, so ``reopen_shard``
    rolls the victim shard back past it; a cache entry decoded from the
    pre-reopen postings would still contain the inserted document.
    """
    cached, plain = _durable_pair(tmp_path)
    try:
        probe_term = "w001"
        victim = shard_of_term(probe_term, cached.shard_count)
        doc_id = 3001
        while (doc_id % cached.shard_count) != victim:
            doc_id += 1
        for index in (cached, plain):
            index.insert_document_terms(doc_id, [probe_term], 999.0)
        _snapshot(cached)  # cache the post-insert postings
        for index in (cached, plain):
            index.router.quarantine_shard(victim, "test quarantine")
            index.reopen_shard(victim)
        assert _snapshot(cached) == _snapshot(plain)
        hits = {r[0] for results in _snapshot(cached) for r in results}
        assert doc_id not in hits, "rolled-back insert leaked from the cache"
    finally:
        cached.close()
        plain.close()


# ---------------------------------------------------------------------------
# Durability: recovery starts cold
# ---------------------------------------------------------------------------


def test_recovered_index_starts_with_cold_cache(tmp_path):
    cached, plain = _durable_pair(tmp_path)
    before = _snapshot(cached)
    assert len(cached.index.list_cache) > 0
    cached.commit()
    plain.commit()
    cached.close()
    plain.close()

    recovered = SVRTextIndex.open(str(tmp_path / "cache-on"))
    recovered_plain = SVRTextIndex.open(str(tmp_path / "cache-off"))
    try:
        cache = recovered.index.list_cache
        assert cache is not None, "list_cache_pages must survive in the options blob"
        assert len(cache) == 0 and not cache.scores
        assert _snapshot(recovered) == before
        assert _snapshot(recovered) == _snapshot(recovered_plain)
    finally:
        recovered.close()
        recovered_plain.close()


# ---------------------------------------------------------------------------
# Block seeking: opt-in seek path equals the sequential merge
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ["id", "id_termscore"])
@pytest.mark.parametrize("list_cache_pages", [0, CACHE_PAGES])
def test_block_seeking_equals_sequential_merge(method, list_cache_pages):
    corpus = make_corpus(random.Random(41), num_docs=60, vocabulary=20)
    seek = build_index(method, corpus, block_seeking=True,
                       list_cache_pages=list_cache_pages,
                       **METHOD_OPTIONS[method])
    base = build_index(method, corpus, block_seeking=False,
                       **METHOD_OPTIONS[method])
    probes = [(["w001", "w004"], 3), (["w001", "w004"], 10),
              (["w002", "w007", "w011"], 5), (["w000", "w013"], 10)]

    def check():
        for keywords, k in probes:
            assert (query_doc_scores(seek, keywords, k)
                    == query_doc_scores(base, keywords, k))
            # Seeking never applies to disjunctive queries; equality is the
            # shared sequential path, asserted to catch accidental routing.
            assert (query_doc_scores(seek, keywords, k, conjunctive=False)
                    == query_doc_scores(base, keywords, k, conjunctive=False))

    check()
    rng = random.Random(6)
    for _ in range(5):
        doc_id = rng.randrange(1, 61)
        score = round(rng.uniform(0.0, 1000.0), 2)
        seek.update_score(doc_id, score)
        base.update_score(doc_id, score)
    check()
    for index in (seek, base):
        index.insert_document(777, ["w001", "w004", "w013"], 640.0)
        index.delete_document(5)
    check()
