"""Tests for the bounded top-k result heap."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.core.result_heap import ResultHeap


class TestResultHeap:
    def test_k_must_be_positive(self):
        with pytest.raises(QueryError):
            ResultHeap(0)

    def test_keeps_best_k(self):
        heap = ResultHeap(3)
        for doc_id, score in [(1, 10.0), (2, 50.0), (3, 5.0), (4, 40.0), (5, 60.0)]:
            heap.add(doc_id, score)
        assert [entry.doc_id for entry in heap.results()] == [5, 2, 4]

    def test_results_sorted_by_score_then_doc_id(self):
        heap = ResultHeap(4)
        heap.add(9, 10.0)
        heap.add(3, 10.0)
        heap.add(5, 20.0)
        assert [(e.doc_id, e.score) for e in heap.results()] == [
            (5, 20.0), (3, 10.0), (9, 10.0),
        ]

    def test_tie_break_prefers_smaller_doc_id_on_eviction(self):
        heap = ResultHeap(2)
        heap.add(10, 5.0)
        heap.add(20, 5.0)
        heap.add(1, 5.0)       # same score, smaller id: displaces doc 20
        assert [entry.doc_id for entry in heap.results()] == [1, 10]

    def test_duplicate_doc_keeps_best_score(self):
        heap = ResultHeap(3)
        heap.add(1, 10.0)
        heap.add(1, 30.0)
        heap.add(1, 20.0)
        assert len(heap) == 1
        assert heap.get(1) == 30.0

    def test_min_score_is_negative_infinity_until_full(self):
        heap = ResultHeap(3)
        heap.add(1, 100.0)
        assert heap.min_score() == -math.inf
        heap.add(2, 50.0)
        heap.add(3, 75.0)
        assert heap.min_score() == 50.0

    def test_would_accept(self):
        heap = ResultHeap(2)
        heap.add(1, 10.0)
        assert heap.would_accept(0.0)          # not full yet
        heap.add(2, 20.0)
        assert heap.would_accept(15.0)
        assert not heap.would_accept(5.0)

    def test_rejected_offer_returns_false(self):
        heap = ResultHeap(1)
        assert heap.add(1, 10.0) is True
        assert heap.add(2, 5.0) is False
        assert 2 not in heap

    def test_contains(self):
        heap = ResultHeap(2)
        heap.add(7, 1.0)
        assert 7 in heap
        assert 8 not in heap


class TestAgainstSortReference:
    def test_matches_sorting_on_random_streams(self):
        rng = random.Random(5)
        for _ in range(20):
            k = rng.randint(1, 8)
            heap = ResultHeap(k)
            entries = {}
            for _ in range(rng.randint(0, 100)):
                doc_id = rng.randint(1, 30)
                score = round(rng.uniform(0, 100), 1)
                heap.add(doc_id, score)
                entries[doc_id] = max(entries.get(doc_id, -1.0), score)
            expected = sorted(entries.items(), key=lambda item: (-item[1], item[0]))[:k]
            assert [(e.doc_id, e.score) for e in heap.results()] == expected


@settings(max_examples=80, deadline=None)
@given(
    offers=st.lists(
        st.tuples(st.integers(min_value=0, max_value=40),
                  st.floats(min_value=0, max_value=1000, allow_nan=False)),
        max_size=200,
    ),
    k=st.integers(min_value=1, max_value=10),
)
def test_property_heap_equals_global_sort(offers, k):
    heap = ResultHeap(k)
    best: dict[int, float] = {}
    for doc_id, score in offers:
        heap.add(doc_id, score)
        best[doc_id] = max(best.get(doc_id, -1.0), score)
    expected = sorted(best.items(), key=lambda item: (-item[1], item[0]))[:k]
    assert [(entry.doc_id, entry.score) for entry in heap.results()] == expected
