"""End-to-end tests of the SVR manager: §3's pipeline over a relational database."""

import pytest

from repro.core.svr import SVRManager
from repro.errors import ScoreSpecError
from repro.relational.database import Database
from repro.workloads.archive import ArchiveConfig, InternetArchiveDataset


@pytest.fixture
def archive():
    database = Database()
    dataset = InternetArchiveDataset(ArchiveConfig(num_movies=40, seed=5))
    dataset.populate(database)
    manager = SVRManager(database)
    spec = dataset.build_score_spec(database)
    manager.create_text_index(
        name="movies_text",
        table="movies",
        text_column="description",
        spec=spec,
        method="chunk",
        score_dependencies=dataset.score_dependencies(),
        chunk_ratio=3.0,
        min_chunk_size=2,
    )
    return database, dataset, manager, spec


class TestIndexCreation:
    def test_search_returns_rows_with_scores(self, archive):
        _database, _dataset, manager, spec = archive
        results = manager.search("movies_text", "golden gate", k=5)
        assert results
        for result in results:
            assert result.row is not None
            assert result.row["movie_id"] == result.doc_id
            assert result.score == pytest.approx(spec.svr_score(result.doc_id))
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_duplicate_index_name_rejected(self, archive):
        database, dataset, manager, spec = archive
        with pytest.raises(ScoreSpecError):
            manager.create_text_index(
                name="movies_text", table="movies", text_column="description", spec=spec
            )

    def test_term_score_spec_requires_termscore_method(self, archive):
        database, dataset, manager, _spec = archive
        spec = dataset.build_score_spec(database, include_term_score=True)
        with pytest.raises(ScoreSpecError):
            manager.create_text_index(
                name="other", table="movies", text_column="description",
                spec=spec, method="chunk",
            )

    def test_lookup_accessors(self, archive):
        _database, _dataset, manager, _spec = archive
        assert manager.index_names() == ["movies_text"]
        assert manager.text_index("movies_text").document_count() == 40
        assert manager.score_view("movies_text").score(1) > 0
        with pytest.raises(ScoreSpecError):
            manager.text_index("nope")


class TestIncrementalMaintenance:
    def test_new_reviews_change_the_ranking(self, archive):
        database, _dataset, manager, spec = archive
        baseline = manager.search("movies_text", "golden gate", k=5)
        target = baseline[-1].doc_id
        reviews = database.table("reviews")
        next_id = max(row["review_id"] for row in reviews.scan()) + 1
        statistics = database.table("statistics")
        current = statistics.get(target)
        statistics.update(target, {"visits": current["visits"] + 10_000_000})
        for offset in range(2):
            reviews.insert({"review_id": next_id + offset, "movie_id": target, "rating": 5.0})
        boosted = manager.search("movies_text", "golden gate", k=5)
        assert boosted[0].doc_id == target
        assert boosted[0].score == pytest.approx(spec.svr_score(target))

    def test_view_scores_track_base_tables(self, archive):
        database, _dataset, manager, spec = archive
        view = manager.score_view("movies_text")
        statistics = database.table("statistics")
        row = statistics.get(3)
        statistics.update(3, {"downloads": row["downloads"] + 777})
        assert view.score(3) == pytest.approx(spec.svr_score(3))

    def test_inserting_a_movie_makes_it_searchable(self, archive):
        database, _dataset, manager, _spec = archive
        movies = database.table("movies")
        movies.insert(
            {
                "movie_id": 500,
                "title": "Fresh upload",
                "description": "a brand new golden gate timelapse",
            }
        )
        database.table("statistics").insert(
            {"movie_id": 500, "visits": 900_000, "downloads": 10_000}
        )
        results = manager.search("movies_text", "golden gate", k=3)
        assert results[0].doc_id == 500

    def test_deleting_a_movie_removes_it_from_results(self, archive):
        database, _dataset, manager, _spec = archive
        victim = manager.search("movies_text", "golden gate", k=1)[0].doc_id
        database.table("movies").delete(victim)
        remaining = manager.search("movies_text", "golden gate", k=10)
        assert victim not in [result.doc_id for result in remaining]

    def test_description_update_changes_matching(self, archive):
        database, _dataset, manager, _spec = archive
        target = manager.search("movies_text", "golden gate", k=1)[0].doc_id
        database.table("movies").update(
            target, {"description": "a film about something else entirely"}
        )
        assert target not in [
            result.doc_id for result in manager.search("movies_text", "golden gate", k=10)
        ]
