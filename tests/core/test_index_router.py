"""The IndexRouter front door: delegation, construction, shard observability.

``SVRTextIndex`` routes every document/query operation through a router, so
most router behaviour is covered transitively by the text-index and
shard-invariance suites; these tests pin the router-specific surface —
``IndexRouter.build``, the delegated ``InvertedIndex`` API used directly, and
the per-shard snapshot/delta/load accessors on both engine kinds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.index_router import IndexRouter
from repro.errors import DocumentNotFoundError
from repro.storage.environment import StorageEnvironment
from repro.storage.sharding import ShardedEnvironment, shard_of_term
from tests.conftest import make_corpus


def _build_router(shard_count: int, method: str = "chunk") -> IndexRouter:
    router = IndexRouter.build(
        method, shard_count=shard_count, cache_pages=256, page_size=512,
        chunk_ratio=2.0, min_chunk_size=2,
    )
    corpus = make_corpus(random.Random(17), num_docs=25, vocabulary=12,
                         terms_per_doc=8)
    for doc_id, terms, score in corpus:
        router.add_document(doc_id, score, terms=terms)
    router.finalize()
    return router


class TestDelegatedAPI:
    def test_full_lifecycle_through_the_router(self):
        router = _build_router(shard_count=3)
        assert router.method_name == "chunk"
        assert router.finalized
        assert router.document_count() == 25
        router.update_score(1, 999.5)
        assert router.current_score(1) == 999.5
        assert router.apply_batch([(2, 10.0), (2, 700.0)]) == 2
        assert router.update_stats.score_updates == 3
        router.insert_document(500, ["w001", "w002"], 1234.0)
        router.update_content(500, ["w001", "w003"])
        router.delete_document(3)
        assert router.current_score(3) is None
        with pytest.raises(DocumentNotFoundError):
            router.update_score(9999, 1.0)
        response = router.query(["w001"], k=5, conjunctive=False)
        assert 500 in [result.doc_id for result in response.results]
        assert router.long_list_size_bytes() > 0
        router.drop_long_list_cache()

    def test_router_over_plain_environment(self):
        env = StorageEnvironment(cache_pages=128, page_size=512)
        router = IndexRouter.build("id", env=env)
        router.add_document(1, 10.0, terms=["a", "b"])
        router.finalize()
        assert router.shard_count == 1
        assert router.env is env
        snapshots = router.shard_snapshots()
        assert len(snapshots) == 1
        router.query(["a"], k=1)
        deltas = router.shard_deltas(snapshots)
        assert len(deltas) == 1
        with pytest.raises(ValueError):
            router.shard_deltas([])


class TestShardObservability:
    def test_shard_count_and_term_resolver(self):
        router = _build_router(shard_count=4)
        assert router.shard_count == 4
        assert isinstance(router.env, ShardedEnvironment)
        for term in ("w001", "w007", "zzz"):
            assert router.shard_of_term(term) == shard_of_term(term, 4)

    def test_per_shard_deltas_sum_to_aggregate(self):
        router = _build_router(shard_count=3)
        shard_before = router.shard_snapshots()
        aggregate_before = router.env.snapshot()
        router.query(["w001", "w002"], k=5, conjunctive=False)
        router.apply_batch([(d, 50.0 * d) for d in range(1, 10)])
        deltas = router.shard_deltas(shard_before)
        aggregate = router.env.delta_since(aggregate_before)
        assert aggregate.pool.accesses == sum(d.pool.accesses for d in deltas)
        assert aggregate.disk.reads == sum(d.disk.reads for d in deltas)
        load = router.shard_load()
        assert load.shard_count == 3
        assert load.total_accesses > 0
