"""Method-specific behaviour: update costs, early termination, list sizes, API contracts.

The equivalence tests establish that every method returns the right answers;
these tests pin down the *mechanisms* the paper describes — which structures an
update touches, when queries stop early, and how the long lists compare in size.
"""

from __future__ import annotations

import pytest

from repro.errors import DocumentNotFoundError, InvertedIndexError, QueryError
from tests.conftest import METHOD_OPTIONS, make_corpus
from tests.helpers import build_index


@pytest.fixture
def corpus(rng):
    return make_corpus(rng, num_docs=60, vocabulary=30, terms_per_doc=15, max_score=10_000.0)


class TestLifecycleContracts:
    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_operations_require_finalize(self, method, corpus):
        from repro.core.indexes.registry import create_index
        from repro.storage.environment import StorageEnvironment
        from repro.text.documents import DocumentStore

        index = create_index(method, StorageEnvironment(cache_pages=64), DocumentStore(),
                             **METHOD_OPTIONS[method])
        index.add_document(1, 10.0, terms=["a", "b"])
        with pytest.raises(InvertedIndexError):
            index.query(["a"], k=1)
        with pytest.raises(InvertedIndexError):
            index.update_score(1, 20.0)
        index.finalize()
        assert index.finalized
        with pytest.raises(InvertedIndexError):
            index.add_document(2, 5.0, terms=["c"])
        with pytest.raises(InvertedIndexError):
            index.finalize()

    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_query_validation(self, method, corpus):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        with pytest.raises(QueryError):
            index.query([], k=5)
        with pytest.raises(QueryError):
            index.query(["w000"], k=0)

    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_update_unknown_document_raises(self, method, corpus):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        with pytest.raises(DocumentNotFoundError):
            index.update_score(10_000, 5.0)

    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_negative_scores_rejected(self, method, corpus):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        with pytest.raises(InvertedIndexError):
            index.update_score(corpus[0][0], -1.0)

    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_query_for_unknown_term_returns_empty(self, method, corpus):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        response = index.query(["never-seen-term"], k=5)
        assert response.results == ()

    @pytest.mark.parametrize("method", sorted(METHOD_OPTIONS))
    def test_document_count_tracks_inserts_and_deletes(self, method, corpus):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        assert index.document_count() == len(corpus)
        index.delete_document(corpus[0][0])
        assert index.document_count() == len(corpus) - 1
        index.insert_document(9_999, ["w001", "w002"], 10.0)
        assert index.document_count() == len(corpus)


class TestUpdateCostMechanisms:
    def test_id_method_updates_touch_only_the_score_table(self, corpus):
        index = build_index("id", corpus)
        before = index.update_stats.short_list_postings_written
        for doc_id, _terms, _score in corpus[:20]:
            index.update_score(doc_id, 123.0)
        assert index.update_stats.short_list_postings_written == before
        assert index.short_list_size_bytes() >= 0

    def test_score_method_rewrites_one_posting_per_term(self, corpus):
        index = build_index("score", corpus)
        doc_id, terms, _score = corpus[0]
        before = index.update_stats.short_list_postings_written
        index.update_score(doc_id, 99_999.0)
        assert index.update_stats.short_list_postings_written - before == len(set(terms))

    def test_score_threshold_defers_small_updates(self, corpus):
        index = build_index("score_threshold", corpus, threshold_ratio=2.0)
        doc_id, _terms, score = corpus[0]
        index.update_score(doc_id, score * 1.5)         # below the threshold
        assert index.update_stats.short_list_updates == 0
        index.update_score(doc_id, max(score * 4.0, 1.0))  # beyond the threshold
        assert index.update_stats.short_list_updates == 1

    def test_chunk_defers_updates_within_two_chunks(self, corpus):
        index = build_index("chunk", corpus, chunk_ratio=3.0, min_chunk_size=2)
        chunk_map = index.chunk_map
        doc_id, _terms, score = corpus[0]
        same_chunk_score = score  # unchanged score: same chunk, no short-list work
        index.update_score(doc_id, same_chunk_score)
        assert index.update_stats.short_list_updates == 0
        # A jump of more than one chunk must create short-list postings.
        current_chunk = chunk_map.chunk_of(score)
        if current_chunk + 2 <= chunk_map.num_chunks:
            big_score = chunk_map.lower_bound(current_chunk + 2) * 1.01
            index.update_score(doc_id, big_score)
            assert index.update_stats.short_list_updates == 1

    def test_chunk_score_decreases_never_touch_short_lists(self, corpus):
        index = build_index("chunk", corpus, chunk_ratio=3.0, min_chunk_size=2)
        for doc_id, _terms, score in corpus[:20]:
            index.update_score(doc_id, score * 0.1)
        assert index.update_stats.short_list_updates == 0


class TestQueryMechanisms:
    def test_id_method_scans_all_postings(self, corpus):
        index = build_index("id", corpus)
        vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
        term = vocabulary[0]
        matching = sum(1 for _d, terms, _s in corpus if term in terms)
        response = index.query([term], k=1)
        assert response.stats.postings_scanned >= matching

    def test_score_method_stops_early(self, corpus):
        index = build_index("score", corpus)
        vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
        response = index.query(vocabulary[:2], k=1)
        assert response.stats.stopped_early

    def test_chunk_query_reports_chunks_scanned(self, corpus):
        index = build_index("chunk", corpus, chunk_ratio=3.0, min_chunk_size=2)
        vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
        response = index.query(vocabulary[:2], k=1)
        assert response.stats.chunks_scanned >= 1
        assert response.stats.chunks_scanned <= index.chunk_map.num_chunks

    def test_results_are_sorted_and_bounded_by_k(self, corpus):
        for method, options in METHOD_OPTIONS.items():
            index = build_index(method, corpus, **options)
            vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
            response = index.query(vocabulary[:1], k=7)
            scores = [result.score for result in response.results]
            assert scores == sorted(scores, reverse=True)
            assert len(response.results) <= 7

    def test_query_stats_include_io_counters(self, corpus):
        index = build_index("chunk", corpus, chunk_ratio=3.0, min_chunk_size=2)
        index.drop_long_list_cache()
        vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
        response = index.query(vocabulary[:1], k=3)
        assert response.stats.pages_read >= 1
        assert response.stats.estimated_io_ms > 0.0


class TestLongListSizes:
    def test_relative_sizes_follow_table1(self, rng):
        corpus = make_corpus(rng, num_docs=150, vocabulary=60, terms_per_doc=25,
                             max_score=100_000.0)
        sizes = {}
        for method in ("id", "score", "score_threshold", "chunk", "id_termscore",
                       "chunk_termscore"):
            index = build_index(method, corpus, **METHOD_OPTIONS[method])
            sizes[method] = index.long_list_size_bytes()
        assert sizes["score"] > sizes["score_threshold"]
        assert sizes["score_threshold"] > sizes["id"]
        assert sizes["id_termscore"] > sizes["id"]
        assert sizes["chunk_termscore"] > sizes["chunk"]
        assert sizes["chunk"] < 2 * sizes["id"]

    def test_drop_long_list_cache_forces_reads(self, rng):
        corpus = make_corpus(rng, num_docs=80, vocabulary=40, terms_per_doc=20)
        for method in ("id", "chunk", "score_threshold"):
            index = build_index(method, corpus, **METHOD_OPTIONS[method])
            vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
            index.query(vocabulary[:1], k=3)        # warm
            warm = index.query(vocabulary[:1], k=3).stats.pages_read
            index.drop_long_list_cache()
            cold = index.query(vocabulary[:1], k=3).stats.pages_read
            assert cold >= warm
