"""Shard invariance: the partitioned engine answers exactly like the classic one.

For every index method and every shard count in ``REPRO_SHARD_COUNTS``
(default ``1,2,4``; CI pins ``1`` and ``4`` in separate matrix entries), an
index built over a :class:`ShardedEnvironment` must, after a randomized mixed
storm of score updates (sequential and batched), document inserts, deletes
and content updates:

* hold **identical logical contents** — every logical key-value store, merged
  across shards in key order, equals the plain single-environment build;
* return **identical top-k answers** (both semantics, several k values), and
  match the brute-force reference for SVR-only methods;
* report **identical update statistics** — the logical work counters must not
  depend on the physical partitioning.

Shard count 1 additionally gets the *physical* guarantee: per-category
buffer-pool/disk counter fingerprints and the on-disk page bytes equal the
plain engine's (run under ``PYTHONHASHSEED=0`` in CI, per the fidelity
methodology of ARCHITECTURE.md).

The storms follow the patterns of ``tests/core/test_batch_equivalence.py``;
seeds come from ``tests.conftest.UPDATE_STORM_SEEDS``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexes.registry import create_index
from repro.storage.sharding import ShardedEnvironment
from repro.text.documents import DocumentStore
from tests.conftest import (
    METHOD_OPTIONS,
    SVR_ONLY_METHODS,
    TERMSCORE_METHODS,
    UPDATE_STORM_SEEDS,
    make_corpus,
)
from tests.helpers import (
    build_index,
    category_fingerprint,
    disk_page_bytes,
    query_doc_scores,
    reference_top_k,
)

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS

#: Shard counts under test; CI overrides via REPRO_SHARD_COUNTS ("1" / "4").
SHARD_COUNTS = tuple(
    int(count)
    for count in os.environ.get("REPRO_SHARD_COUNTS", "1,2,4").split(",")
    if count.strip()
)


def build_sharded_index(method, corpus, shard_count, cache_pages=512, **options):
    """Like :func:`tests.helpers.build_index`, over a ShardedEnvironment."""
    env = ShardedEnvironment(shard_count=shard_count, cache_pages=cache_pages)
    index = create_index(method, env, DocumentStore(), **options)
    for doc_id, terms, score in corpus:
        index.add_document(doc_id, score, terms=terms)
    index.finalize()
    return index


def _logical_contents(index) -> dict[str, list]:
    """Every logical kv store of the index, merged across shards in key order."""
    return {
        name: list(index.env.kvstore(name).items())
        for name in index.env.kvstore_names()
    }


def _mixed_storm(index, rng: random.Random, live: list[int],
                 vocabulary: list[str], rounds: int = 6) -> None:
    """Drive one index through a deterministic mixed workload.

    ``rng`` must be freshly seeded per index so every copy sees the identical
    operation sequence (the pattern of the batch-equivalence harness).
    """
    next_id = 900
    for _round in range(rounds):
        for _ in range(15):
            doc_id = rng.choice(live)
            index.update_score(doc_id, round(rng.uniform(0, 3000), 2))
        batch = [
            (rng.choice(live), round(rng.uniform(0, 3000), 2)) for _ in range(20)
        ]
        index.apply_batch(batch)
        action = rng.random()
        if action < 0.4:
            next_id += 1
            terms = [rng.choice(vocabulary) for _ in range(7)]
            index.insert_document(next_id, terms, round(rng.uniform(0, 2000), 2))
            live.append(next_id)
        elif action < 0.7 and len(live) > 8:
            victim = rng.choice(live)
            index.delete_document(victim)
            live.remove(victim)
        else:
            target = rng.choice(live)
            terms = [rng.choice(vocabulary) for _ in range(7)]
            index.update_content(target, terms)


def _run_pair(method, seed, shard_count):
    """Build (plain baseline, sharded) and push the same storm through both."""
    corpus = make_corpus(random.Random(seed), num_docs=36, vocabulary=16,
                         terms_per_doc=9)
    vocabulary = [f"w{i:03d}" for i in range(16)]
    baseline = build_index(method, corpus, **METHOD_OPTIONS[method])
    sharded = build_sharded_index(method, corpus, shard_count,
                                  **METHOD_OPTIONS[method])
    for index in (baseline, sharded):
        rng = random.Random(seed + 1)
        live = [doc_id for doc_id, _t, _s in corpus]
        _mixed_storm(index, rng, live, vocabulary)
    return corpus, baseline, sharded


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
@pytest.mark.parametrize("method", ALL_METHODS)
@pytest.mark.parametrize("seed", UPDATE_STORM_SEEDS[:2])
def test_contents_topk_and_stats_invariant(method, shard_count, seed):
    """The core harness: same storm, N shards vs the classic engine."""
    corpus, baseline, sharded = _run_pair(method, seed, shard_count)
    assert _logical_contents(baseline) == _logical_contents(sharded)
    assert baseline.update_stats == sharded.update_stats
    rng = random.Random(seed + 2)
    vocabulary = sorted({term for _d, terms, _s in corpus for term in terms})
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        k = rng.choice([1, 3, 5, 10])
        conjunctive = rng.random() < 0.5
        assert (query_doc_scores(baseline, keywords, k, conjunctive)
                == query_doc_scores(sharded, keywords, k, conjunctive))


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_sharded_answers_match_reference(method, shard_count):
    """Sharded top-k must also equal the brute-force ground truth."""
    seed = UPDATE_STORM_SEEDS[2]
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=30, vocabulary=12, terms_per_doc=7)
    index = build_sharded_index(method, corpus, shard_count,
                                **METHOD_OPTIONS[method])
    documents = {doc_id: set(terms) for doc_id, terms, _s in corpus}
    scores = {doc_id: score for doc_id, _t, score in corpus}
    for _ in range(120):
        doc_id = rng.choice(list(scores))
        new_score = round(rng.uniform(0, 4000), 2)
        index.update_score(doc_id, new_score)
        scores[doc_id] = new_score
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        expected = reference_top_k(documents, scores, set(), keywords, 5, True)
        assert query_doc_scores(index, keywords, 5) == expected


@pytest.mark.parametrize("method", ALL_METHODS)
def test_shard_count_one_is_physically_identical(method):
    """The fidelity guarantee: one shard == the classic engine, page for page.

    Covers counters in every accounting category *and* the raw page bytes, so
    the routing layer provably adds nothing — not even a reordered access.
    """
    if 1 not in SHARD_COUNTS:
        pytest.skip("shard count 1 not selected via REPRO_SHARD_COUNTS")
    seed = UPDATE_STORM_SEEDS[3]
    _corpus, baseline, sharded = _run_pair(method, seed, shard_count=1)
    single = sharded.env.shards[0]
    assert category_fingerprint(baseline.env) == category_fingerprint(single)
    assert disk_page_bytes(baseline.env) == disk_page_bytes(single)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_docs=st.integers(min_value=6, max_value=24),
    shard_count=st.integers(min_value=1, max_value=5),
    storm_length=st.integers(min_value=0, max_value=60),
)
def test_property_sharding_never_changes_state(seed, num_docs, shard_count,
                                               storm_length):
    """Property: for any corpus, storm and shard count, logical state is
    invariant (run on the stateful-threshold methods, where bookkeeping
    interacts with routing the most)."""
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=num_docs, vocabulary=8, terms_per_doc=5)
    doc_ids = [doc_id for doc_id, _t, _s in corpus]
    storm = [
        (rng.choice(doc_ids), round(rng.uniform(0, 2500), 2))
        for _ in range(storm_length)
    ]
    for method in ("score_threshold", "chunk"):
        baseline = build_index(method, corpus, **METHOD_OPTIONS[method])
        sharded = build_sharded_index(method, corpus, shard_count,
                                      **METHOD_OPTIONS[method])
        for index in (baseline, sharded):
            for start in range(0, len(storm), 16):
                index.apply_batch(storm[start:start + 16])
        assert _logical_contents(baseline) == _logical_contents(sharded)
