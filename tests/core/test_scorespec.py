"""Tests for the SVR score specification."""

import pytest

from repro.errors import ScoreSpecError
from repro.core.scorespec import ScoreSpec
from repro.relational.functions import ScalarFunction, weighted_sum


def constant(name, value):
    return ScalarFunction(name=name, arity=1, fn=lambda _key: value)


class TestScoreSpec:
    def test_paper_example_aggregation(self):
        # Agg(s1,s2,s3) = s1*100 + s2/2 + s3 with S1=4.5, S2=200, S3=30.
        spec = ScoreSpec.weighted(
            [constant("S1", 4.5), constant("S2", 200.0), constant("S3", 30.0)],
            weights=[100.0, 0.5, 1.0],
        )
        assert spec.svr_score(1) == pytest.approx(4.5 * 100 + 200 / 2 + 30)

    def test_component_scores_exposed_by_name(self):
        spec = ScoreSpec.weighted(
            [constant("S1", 1.0), constant("S2", 2.0)], weights=[1.0, 1.0]
        )
        assert spec.component_scores(42) == {"S1": 1.0, "S2": 2.0}
        assert spec.component_names == ("S1", "S2")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ScoreSpecError):
            ScoreSpec(
                components=(constant("S1", 1.0),),
                aggregate=weighted_sum("Agg", [1.0, 2.0]),
            )

    def test_needs_at_least_one_component(self):
        with pytest.raises(ScoreSpecError):
            ScoreSpec(components=(), aggregate=weighted_sum("Agg", []))

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ScoreSpecError):
            ScoreSpec.weighted([constant("S1", 1.0)], weights=[1.0, 2.0])

    def test_negative_scores_rejected(self):
        spec = ScoreSpec.weighted([constant("S1", -5.0)], weights=[1.0])
        with pytest.raises(ScoreSpecError):
            spec.svr_score(1)

    def test_negative_term_weight_rejected(self):
        with pytest.raises(ScoreSpecError):
            ScoreSpec.weighted(
                [constant("S1", 1.0)], weights=[1.0], term_weight=-0.5
            )

    def test_include_term_score_flag(self):
        spec = ScoreSpec.weighted(
            [constant("S1", 1.0)], weights=[1.0],
            include_term_score=True, term_weight=0.5,
        )
        assert spec.include_term_score
        assert spec.term_weight == 0.5

    def test_component_functions_receive_the_key(self):
        seen = []

        def record(key):
            seen.append(key)
            return 1.0

        spec = ScoreSpec.weighted(
            [ScalarFunction("S1", 1, record)], weights=[2.0]
        )
        assert spec.svr_score("movie-7") == 2.0
        assert seen == ["movie-7"]
