"""Index-level durability: reopen equality, crash sweeps, backend fidelity.

Three guarantees, each pinned for every index method:

* **reopen-after-checkpoint** — a closed durable index reopens with the same
  contents and the same top-k answers as a memory twin that saw the same
  history;
* **crash-point sweep** — a crash injected at any batch boundary (with an
  uncommitted partial batch in flight) recovers to exactly the committed
  prefix, verified against a twin that applied only that prefix;
* **accounting fidelity** — building, updating and cold-cache querying an
  index produces identical per-category ``DiskStats``/``BufferPoolStats``
  fingerprints on the memory and file backends (the fig7/table1 acceptance
  criterion, at test scale).
"""

from __future__ import annotations

import pytest

from tests.conftest import METHOD_OPTIONS, make_corpus
from tests.helpers import category_fingerprint
from repro.core.text_index import SVRTextIndex
from repro.errors import StorageError
from repro.workloads.restart import (
    RestartStormConfig,
    run_crash_storm,
    sweep_crash_points,
)
from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig

ALL_METHODS = sorted(METHOD_OPTIONS)


def _build(index, corpus):
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


def _storm(corpus, count, seed=11):
    scores = {doc_id: score for doc_id, _terms, score in corpus}
    workload = UpdateWorkload(
        UpdateWorkloadConfig(num_updates=count, seed=seed), scores
    )
    return workload.generate_list()


def _apply(index, updates):
    for update in updates:
        current = index.current_score(update.doc_id)
        if current is not None:
            index.update_score(update.doc_id, update.apply_to(current))


def _queries(corpus, count=6):
    frequency: dict[str, int] = {}
    for _doc_id, terms, _score in corpus:
        for term in set(terms):
            frequency[term] = frequency.get(term, 0) + 1
    ranked = sorted(frequency, key=lambda term: (-frequency[term], term))
    return [[term] for term in ranked[:count]]


# ---------------------------------------------------------------------------
# Reopen-after-checkpoint equality (all six methods)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ALL_METHODS)
def test_reopen_after_checkpoint_equals_memory_twin(method, rng, tmp_path):
    corpus = make_corpus(rng, num_docs=30, vocabulary=20, terms_per_doc=8)
    updates = _storm(corpus, 60)
    options = METHOD_OPTIONS[method]

    durable = SVRTextIndex(method=method, path=str(tmp_path / "idx"),
                           cache_pages=128, page_size=512, **options)
    _build(durable, corpus)
    _apply(durable, updates)
    durable.insert_document_terms(999, ["w001", "w002", "fresh"], 555.0)
    durable.delete_document(5)
    durable.close()

    twin = SVRTextIndex(method=method, cache_pages=128, page_size=512, **options)
    _build(twin, corpus)
    _apply(twin, updates)
    twin.insert_document_terms(999, ["w001", "w002", "fresh"], 555.0)
    twin.delete_document(5)

    reopened = SVRTextIndex.open(str(tmp_path / "idx"))
    assert reopened.method == method
    assert reopened.document_count() == twin.document_count()
    for doc_id in sorted(twin.documents.doc_ids()):
        assert reopened.current_score(doc_id) == twin.current_score(doc_id)
    for keywords in _queries(corpus):
        expected = [(r.doc_id, r.score)
                    for r in twin.search(keywords, k=5).results]
        actual = [(r.doc_id, r.score)
                  for r in reopened.search(keywords, k=5).results]
        assert actual == expected, (method, keywords)
    # the reopened index keeps accepting updates and batches
    reopened.apply_score_updates([(999, 1.0)])
    assert reopened.current_score(999) == 1.0
    reopened.close()
    twin.close()


@pytest.mark.parametrize("method", ("chunk", "score"))
def test_reopen_sharded_index(method, rng, tmp_path):
    corpus = make_corpus(rng, num_docs=24, vocabulary=18, terms_per_doc=8)
    options = METHOD_OPTIONS[method]
    durable = SVRTextIndex(method=method, path=str(tmp_path / "idx"),
                           cache_pages=128, page_size=512, shards=3, **options)
    _build(durable, corpus)
    _apply(durable, _storm(corpus, 40))
    expected = {doc_id: durable.current_score(doc_id)
                for doc_id, _t, _s in corpus}
    durable.close()

    reopened = SVRTextIndex.open(str(tmp_path / "idx"))
    assert reopened.shard_count == 3
    for doc_id, score in expected.items():
        assert reopened.current_score(doc_id) == score
    reopened.close()


# ---------------------------------------------------------------------------
# Crash-point sweep (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ALL_METHODS)
def test_crash_at_every_batch_boundary_recovers_committed_prefix(
        method, rng, tmp_path):
    corpus = make_corpus(rng, num_docs=30, vocabulary=20, terms_per_doc=8)
    config = RestartStormConfig(num_batches=3, batch_size=12,
                                checkpoint_every=2, partial_tail=5)
    results = sweep_crash_points(
        str(tmp_path), method, corpus, config=config,
        cache_pages=128, page_size=512, **METHOD_OPTIONS[method],
    )
    assert len(results) == config.num_batches + 1
    for result in results:
        assert result.recovered_exactly, (
            method, result.crash_after_batch, result.mismatches
        )
        assert result.batches_committed == result.crash_after_batch


def test_crash_storm_with_document_churn(rng, tmp_path):
    corpus = make_corpus(rng, num_docs=30, vocabulary=20, terms_per_doc=8)
    config = RestartStormConfig(num_batches=4, batch_size=10,
                                crash_after_batch=3, doc_churn=True)
    result = run_crash_storm(
        str(tmp_path / "churn"), "chunk", corpus, config=config,
        cache_pages=128, page_size=512, **METHOD_OPTIONS["chunk"],
    )
    assert result.recovered_exactly, result.mismatches
    assert result.updates_lost > 0


def test_crash_storm_sharded(rng, tmp_path):
    corpus = make_corpus(rng, num_docs=30, vocabulary=20, terms_per_doc=8)
    config = RestartStormConfig(num_batches=3, batch_size=10,
                                crash_after_batch=2)
    result = run_crash_storm(
        str(tmp_path / "sharded"), "score_threshold", corpus, config=config,
        cache_pages=128, page_size=512, shards=2,
        **METHOD_OPTIONS["score_threshold"],
    )
    assert result.recovered_exactly, result.mismatches


# ---------------------------------------------------------------------------
# Backend accounting fidelity (fig7/table1 criterion at test scale)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ALL_METHODS)
def test_file_backend_fingerprint_identical_to_memory(method, rng, tmp_path):
    """Build + update storm + cold-cache queries: identical counters per category."""
    corpus = make_corpus(rng, num_docs=30, vocabulary=20, terms_per_doc=8)
    updates = _storm(corpus, 50)
    queries = _queries(corpus, count=4)
    options = METHOD_OPTIONS[method]

    def workload(index):
        _build(index, corpus)
        _apply(index, updates)
        for keywords in queries:
            index.drop_long_list_cache()
            index.search(keywords, k=5)
        return index

    memory = workload(
        SVRTextIndex(method=method, cache_pages=64, page_size=512, **options)
    )
    filed = workload(
        SVRTextIndex(method=method, path=str(tmp_path / "idx"),
                     cache_pages=64, page_size=512, **options)
    )
    assert category_fingerprint(filed.env) == category_fingerprint(memory.env)
    filed.close()
    memory.close()


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------


def test_constructor_refuses_existing_index(rng, tmp_path):
    corpus = make_corpus(rng, num_docs=10, vocabulary=10, terms_per_doc=5)
    path = str(tmp_path / "idx")
    index = SVRTextIndex(method="id", path=path, cache_pages=64, page_size=512)
    _build(index, corpus)
    index.close()
    with pytest.raises(StorageError):
        SVRTextIndex(method="id", path=path)
    reopened = SVRTextIndex.open(path)
    assert reopened.document_count() == 10
    reopened.close()


def test_open_requires_index_blob(tmp_path):
    from repro.storage.environment import StorageEnvironment

    # a bare environment committed without the index facade
    with StorageEnvironment(cache_pages=8, path=str(tmp_path / "bare")) as env:
        env.create_kvstore("raw").put(1, 1)
    with pytest.raises(StorageError):
        SVRTextIndex.open(str(tmp_path / "bare"))


def test_file_backend_runner_cleanup(rng, tmp_path):
    import os

    from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup

    with ExperimentRunner(BenchScale.smoke(), backend="file") as runner:
        index, _seconds = runner.build_index(MethodSetup("id"))
        storage_dir = runner.storage_dir
        assert storage_dir is not None and os.path.isdir(storage_dir)
        assert index.durable and not index.env.closed
    # cleanup closed the index and removed the runner-owned directory
    assert index.env.closed
    assert runner.storage_dir is None
    assert not os.path.exists(storage_dir)


def test_env_and_path_are_exclusive(tmp_path):
    from repro.storage.environment import StorageEnvironment

    env = StorageEnvironment(cache_pages=8)
    with pytest.raises(StorageError):
        SVRTextIndex(method="id", env=env, path=str(tmp_path / "x"))
    env.close()
