"""Tests for the SVRTextIndex facade (raw text in, ranked results out)."""

import pytest

from repro.errors import QueryError, UnknownMethodError
from repro.core.text_index import SVRTextIndex


def build_small_index(method="chunk", **options):
    if method.startswith("chunk"):
        options.setdefault("chunk_ratio", 3.0)
        options.setdefault("min_chunk_size", 2)
    index = SVRTextIndex(method=method, **options)
    documents = {
        1: ("The golden gate bridge at dawn", 800.0),
        2: ("Amateur golden gate footage from a ferry", 20.0),
        3: ("Harbor ferries and sailors", 90.0),
        4: ("Golden sunset, gate tower restored", 300.0),
    }
    for doc_id, (text, score) in documents.items():
        index.add_document(doc_id, text, score)
    index.finalize()
    return index


class TestBuildAndSearch:
    def test_search_ranks_by_svr_score(self):
        index = build_small_index()
        results = index.search("golden gate", k=3).results
        assert [result.doc_id for result in results] == [1, 4, 2]

    def test_search_accepts_keyword_iterables(self):
        index = build_small_index()
        assert index.search(["golden", "gate"], k=1).results[0].doc_id == 1

    def test_analysis_is_case_insensitive(self):
        index = build_small_index()
        assert index.search("GOLDEN Gate", k=1).results[0].doc_id == 1

    def test_empty_query_rejected(self):
        index = build_small_index()
        with pytest.raises(QueryError):
            index.search("   ", k=3)

    def test_unknown_method_rejected(self):
        with pytest.raises(UnknownMethodError):
            SVRTextIndex(method="btree-of-doom")

    def test_disjunctive_search(self):
        index = build_small_index()
        conj = index.search("golden ferry", k=10).results
        disj = index.search("golden ferry", k=10, conjunctive=False).results
        assert len(disj) > len(conj)

    def test_document_count_and_scores(self):
        index = build_small_index()
        assert index.document_count() == 4
        assert index.current_score(1) == 800.0
        assert index.current_score(99) is None


class TestUpdates:
    def test_score_update_changes_ranking(self):
        index = build_small_index()
        index.update_score(2, 10_000.0)
        assert index.search("golden gate", k=1).results[0].doc_id == 2

    def test_insert_and_delete_documents(self):
        index = build_small_index()
        index.insert_document(5, "brand new golden gate drone footage", 5_000.0)
        assert index.search("golden gate", k=1).results[0].doc_id == 5
        index.delete_document(5)
        assert index.search("golden gate", k=1).results[0].doc_id == 1

    def test_content_update_changes_matching(self):
        index = build_small_index()
        index.update_content(3, "now also about the golden gate")
        doc_ids = index.search("golden gate", k=10).doc_ids()
        assert 3 in doc_ids
        index.update_content(1, "renamed to something else entirely")
        assert 1 not in index.search("golden gate", k=10).doc_ids()

    def test_tfidf_baseline_score(self):
        index = build_small_index()
        score_match = index.tfidf_score("golden gate", 1)
        score_nonmatch = index.tfidf_score("golden gate", 3)
        assert score_match > score_nonmatch == 0.0


class TestTermScoreMethods:
    def test_combined_scoring_prefers_term_relevance_on_ties(self):
        index = SVRTextIndex(method="chunk_termscore", chunk_ratio=3.0, min_chunk_size=2,
                             term_weight=1000.0, fancy_size=3)
        index.add_document(1, "golden gate golden gate golden gate", 100.0)
        index.add_document(2, "golden gate and many other words about other things", 100.0)
        index.finalize()
        results = index.search("golden gate", k=2).results
        assert results[0].doc_id == 1
        assert results[0].score > results[1].score

    def test_measurement_hooks(self):
        index = build_small_index()
        assert index.long_list_size_bytes() > 0
        index.drop_long_list_cache()       # must not raise
        response = index.search("golden", k=2)
        assert response.stats.pages_read >= 0
