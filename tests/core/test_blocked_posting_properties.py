"""Property-based tests for the blocked posting codec.

Mirrors the lazy-vs-eager suite in ``test_posting_properties.py`` for the
blocked binary layout: round-trips for all three list kinds (including empty
lists, single-element blocks and maximal varint values), page-size
independence, torn tails, and single-byte bitrot — which must surface as a
typed error or decode identically, never as silently different postings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, InvertedIndexError
from repro.core.posting import (
    LazyBytesReader,
    Posting,
    ScoredPosting,
    build_chunk_runs,
    decode_blocked_chunk_runs,
    decode_blocked_id_postings,
    decode_blocked_scored_postings,
    encode_blocked_chunk_runs,
    encode_blocked_id_postings,
    encode_blocked_scored_postings,
    iter_blocked_chunk_postings_lazy,
    iter_blocked_id_postings_lazy,
    iter_blocked_scored_postings_lazy,
    read_block_directory,
)

doc_ids = st.integers(min_value=0, max_value=2 ** 31 - 1)
#: Includes the top of the varint range so multi-byte continuation paths and
#: maximal-length varints are exercised.
wide_doc_ids = st.integers(min_value=0, max_value=2 ** 62)
term_scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
block_spans = st.sampled_from([1, 2, 3, 7, 64, 128])


def paginate(data: bytes, page_size: int) -> list[bytes]:
    """Split an encoded list into page-sized fragments (as a heap file would)."""
    return [data[i:i + page_size] for i in range(0, len(data), page_size)]


def reader_for(data: bytes, page_size: int) -> LazyBytesReader:
    return LazyBytesReader(iter(paginate(data, page_size)))


# ---------------------------------------------------------------------------
# Round trips: eager and lazy, across block spans and page sizes
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(wide_doc_ids, max_size=200, unique=True),
    with_term_scores=st.booleans(),
    block_span=block_spans,
    page_size=st.integers(min_value=1, max_value=48),
)
def test_blocked_id_round_trip(ids, with_term_scores, block_span, page_size):
    postings = [Posting(doc_id=i, term_score=0.5) for i in sorted(ids)]
    data = encode_blocked_id_postings(
        postings, with_term_scores=with_term_scores, block_span=block_span
    )
    decoded = decode_blocked_id_postings(data)
    expected_ts = 0.5 if with_term_scores else 0.0
    assert [(p.doc_id, p.term_score) for p in decoded] == [
        (p.doc_id, expected_ts) for p in postings
    ]
    lazy = list(iter_blocked_id_postings_lazy(reader_for(data, page_size)))
    assert lazy == [(p.doc_id, expected_ts) for p in postings]


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(doc_ids, st.floats(min_value=0, max_value=1e6, allow_nan=False),
                  term_scores),
        max_size=120,
        unique_by=lambda entry: entry[0],
    ),
    with_term_scores=st.booleans(),
    block_span=block_spans,
    page_size=st.integers(min_value=1, max_value=48),
)
def test_blocked_scored_round_trip(entries, with_term_scores, block_span, page_size):
    ordered = sorted(entries, key=lambda entry: (-entry[1], entry[0]))
    postings = [
        ScoredPosting(doc_id=doc, score=score, term_score=ts)
        for doc, score, ts in ordered
    ]
    data = encode_blocked_scored_postings(
        postings, with_term_scores=with_term_scores, block_span=block_span
    )
    decoded = decode_blocked_scored_postings(data)
    expected = [
        (p.doc_id, p.score, p.term_score if with_term_scores else 0.0)
        for p in postings
    ]
    assert [(p.doc_id, p.score, p.term_score) for p in decoded] == expected
    lazy = list(iter_blocked_scored_postings_lazy(reader_for(data, page_size)))
    assert lazy == expected


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=20), term_scores),
        max_size=150,
        unique_by=lambda entry: entry[0],
    ),
    with_term_scores=st.booleans(),
    block_span=block_spans,
    page_size=st.integers(min_value=1, max_value=48),
)
def test_blocked_chunk_round_trip(triples, with_term_scores, block_span, page_size):
    runs = build_chunk_runs(triples)
    data = encode_blocked_chunk_runs(
        runs, with_term_scores=with_term_scores, block_span=block_span
    )
    expected_runs = [
        (run.chunk_id,
         tuple((p.doc_id, p.term_score if with_term_scores else 0.0)
               for p in run.postings))
        for run in runs
    ]
    decoded = decode_blocked_chunk_runs(data)
    assert [
        (run.chunk_id, tuple((p.doc_id, p.term_score) for p in run.postings))
        for run in decoded
    ] == expected_runs
    lazy = list(iter_blocked_chunk_postings_lazy(reader_for(data, page_size)))
    assert lazy == [
        (chunk_id, doc_id, ts)
        for chunk_id, postings in expected_runs
        for doc_id, ts in postings
    ]


def test_empty_lists_round_trip():
    assert decode_blocked_id_postings(encode_blocked_id_postings([])) == []
    assert decode_blocked_scored_postings(encode_blocked_scored_postings([])) == []
    assert decode_blocked_chunk_runs(encode_blocked_chunk_runs([])) == []
    for data, it in [
        (encode_blocked_id_postings([]), iter_blocked_id_postings_lazy),
        (encode_blocked_scored_postings([]), iter_blocked_scored_postings_lazy),
        (encode_blocked_chunk_runs([]), iter_blocked_chunk_postings_lazy),
    ]:
        assert list(it(reader_for(data, 7))) == []
        assert read_block_directory(data).blocks == ()


def test_single_element_blocks_have_one_posting_each():
    postings = [Posting(doc_id=i * 3) for i in range(10)]
    data = encode_blocked_id_postings(postings, block_span=1)
    directory = read_block_directory(data)
    assert len(directory.blocks) == 10
    assert all(block.count == 1 for block in directory.blocks)
    assert [b.last_doc_id for b in directory.blocks] == [p.doc_id for p in postings]


# ---------------------------------------------------------------------------
# Torn tails: truncated payloads fail loudly with a typed error
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(doc_ids, min_size=4, max_size=60, unique=True),
    block_span=st.sampled_from([1, 3, 8]),
    page_size=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
def test_torn_tail_raises_typed_error(ids, block_span, page_size, data):
    postings = [Posting(doc_id=i) for i in sorted(ids)]
    encoded = encode_blocked_id_postings(postings, block_span=block_span)
    cut = data.draw(st.integers(min_value=1, max_value=len(encoded) - 1))
    reader = reader_for(encoded[:cut], page_size)
    expected = [(p.doc_id, 0.0) for p in postings]
    produced = []
    with pytest.raises((ChecksumError, InvertedIndexError)):
        for item in iter_blocked_id_postings_lazy(reader):
            produced.append(item)
    # Whatever decoded before the error must be a prefix of the true sequence;
    # CRC-checked blocks never emit garbage postings.
    assert produced == expected[: len(produced)]


@settings(max_examples=40, deadline=None)
@given(
    triples=st.lists(
        st.tuples(doc_ids, st.integers(min_value=1, max_value=10), term_scores),
        min_size=4,
        max_size=60,
        unique_by=lambda entry: entry[0],
    ),
    block_span=st.sampled_from([1, 3, 8]),
    page_size=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
def test_torn_chunk_tail_raises_typed_error(triples, block_span, page_size, data):
    runs = build_chunk_runs(triples)
    encoded = encode_blocked_chunk_runs(runs, block_span=block_span)
    cut = data.draw(st.integers(min_value=1, max_value=len(encoded) - 1))
    produced = []
    with pytest.raises((ChecksumError, InvertedIndexError)):
        for item in iter_blocked_chunk_postings_lazy(reader_for(encoded[:cut], page_size)):
            produced.append(item)
    expected = [
        (run.chunk_id, p.doc_id, 0.0) for run in runs for p in run.postings
    ]
    assert produced == expected[: len(produced)]


# ---------------------------------------------------------------------------
# Bitrot: a flipped byte is detected or provably harmless, never silent garbage
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(doc_ids, st.floats(min_value=0, max_value=1e4, allow_nan=False)),
        min_size=1,
        max_size=50,
        unique_by=lambda entry: entry[0],
    ),
    block_span=st.sampled_from([1, 4, 16]),
    data=st.data(),
)
def test_bitrot_detected_or_identical(entries, block_span, data):
    ordered = sorted(entries, key=lambda entry: (-entry[1], entry[0]))
    postings = [ScoredPosting(doc_id=doc, score=score) for doc, score in ordered]
    encoded = bytearray(encode_blocked_scored_postings(postings, block_span=block_span))
    position = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    encoded[position] ^= flip
    reference = [(p.doc_id, p.score, 0.0) for p in postings]
    try:
        decoded = list(iter_blocked_scored_postings_lazy(reader_for(bytes(encoded), 16)))
    except (ChecksumError, InvertedIndexError):
        return
    assert decoded == reference


# ---------------------------------------------------------------------------
# Prune hooks: terminal semantics and skip accounting
# ---------------------------------------------------------------------------


def test_prune_is_terminal_and_counts_skipped_blocks():
    postings = [
        ScoredPosting(doc_id=i, score=float(100 - i)) for i in range(40)
    ]
    data = encode_blocked_scored_postings(postings, block_span=8)
    directory = read_block_directory(data)
    assert len(directory.blocks) == 5

    seen_bounds = []
    skipped = []

    def prune(block):
        seen_bounds.append(block.bound)
        return len(seen_bounds) == 3  # prune at the third block

    decoded = list(iter_blocked_scored_postings_lazy(
        reader_for(data, 16), prune=prune,
        on_skip=lambda count, block: skipped.append((count, block)),
    ))
    # Blocks 0 and 1 decode; blocks 2, 3, 4 are skipped without being read.
    assert [d[0] for d in decoded] == list(range(16))
    # on_skip receives the skipped-block count plus the pruned block itself
    # (whose bound is what the heap floor beat) for EXPLAIN's skip journal.
    assert [count for count, _block in skipped] == [3]
    assert skipped[0][1].bound == seen_bounds[2]
    # The prune callback is consulted once per block until it fires — never
    # for the blocks after the terminal stop.
    assert len(seen_bounds) == 3


def test_prune_never_fires_decodes_everything():
    postings = [ScoredPosting(doc_id=i, score=float(50 - i)) for i in range(30)]
    data = encode_blocked_scored_postings(postings, block_span=4)
    skipped = []
    decoded = list(iter_blocked_scored_postings_lazy(
        reader_for(data, 16), prune=lambda block: False,
        on_skip=lambda count, block: skipped.append(count),
    ))
    assert len(decoded) == 30
    assert skipped == []
