"""Cross-method equivalence: every index must return the ground-truth top-k.

These are the tests of the paper's central claims (Theorems 1 and 2): no matter
how scores are updated, which method is used, and how stale the long inverted
lists become, a query must return exactly the top-k documents under the
*latest* scores.  The ground truth is a brute-force recomputation
(:func:`tests.helpers.reference_top_k`).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import METHOD_OPTIONS, SVR_ONLY_METHODS, TERMSCORE_METHODS, make_corpus
from tests.helpers import build_index, normalized_tf, query_doc_scores, reference_top_k


def _corpus_maps(corpus):
    documents = {doc_id: set(terms) for doc_id, terms, _score in corpus}
    scores = {doc_id: score for doc_id, _terms, score in corpus}
    term_scores = {doc_id: normalized_tf(terms) for doc_id, terms, _score in corpus}
    return documents, scores, term_scores


def _apply_random_updates(index, scores, rng, count=60, max_score=5000.0):
    doc_ids = list(scores)
    for _ in range(count):
        doc_id = rng.choice(doc_ids)
        new_score = round(rng.uniform(0.0, max_score), 2)
        scores[doc_id] = new_score
        index.update_score(doc_id, new_score)


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
@pytest.mark.parametrize("conjunctive", [True, False])
def test_svr_methods_match_reference_after_updates(method, conjunctive, small_corpus, rng):
    index = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    documents, scores, _ = _corpus_maps(small_corpus)
    _apply_random_updates(index, scores, rng)
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for trial in range(20):
        keywords = rng.sample(vocabulary, 2)
        k = rng.choice([1, 3, 5, 10])
        expected = reference_top_k(documents, scores, set(), keywords, k, conjunctive)
        actual = query_doc_scores(index, keywords, k, conjunctive)
        assert actual == expected, f"trial {trial}: {method} diverged for {keywords}"


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_svr_methods_agree_with_each_other(method, small_corpus, rng):
    """All SVR-only methods must return identical rankings for the same state."""
    baseline = build_index("id", small_corpus)
    other = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    updates = [(rng.choice(small_corpus)[0], round(rng.uniform(0, 3000), 2)) for _ in range(40)]
    for doc_id, new_score in updates:
        baseline.update_score(doc_id, new_score)
        other.update_score(doc_id, new_score)
    vocabulary = sorted({term for _d, terms, _s in small_corpus for term in terms})
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        assert query_doc_scores(other, keywords, 5) == query_doc_scores(baseline, keywords, 5)


@pytest.mark.parametrize("method", TERMSCORE_METHODS)
@pytest.mark.parametrize("conjunctive", [True, False])
def test_termscore_methods_match_combined_reference(method, conjunctive, small_corpus, rng):
    index = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    documents, scores, term_scores = _corpus_maps(small_corpus)
    _apply_random_updates(index, scores, rng)
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for _ in range(15):
        keywords = rng.sample(vocabulary, 2)
        k = rng.choice([1, 5, 10])
        expected = reference_top_k(
            documents, scores, set(), keywords, k, conjunctive, term_scores=term_scores
        )
        actual = query_doc_scores(index, keywords, k, conjunctive)
        assert [doc for doc, _ in actual] == [doc for doc, _ in expected]
        for (_, got), (_, want) in zip(actual, expected):
            assert got == pytest.approx(want, rel=1e-4, abs=1e-6)


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_methods_handle_deletions(method, small_corpus, rng):
    index = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    documents, scores, _ = _corpus_maps(small_corpus)
    deleted = set(rng.sample(list(scores), 8))
    for doc_id in deleted:
        index.delete_document(doc_id)
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        expected = reference_top_k(documents, scores, deleted, keywords, 5, True)
        assert query_doc_scores(index, keywords, 5) == expected


@pytest.mark.parametrize("method", SVR_ONLY_METHODS + TERMSCORE_METHODS)
def test_methods_handle_insertions(method, small_corpus, rng):
    index = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    documents, scores, term_scores = _corpus_maps(small_corpus)
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    next_id = max(scores) + 1
    for offset in range(10):
        doc_id = next_id + offset
        terms = [rng.choice(vocabulary) for _ in range(10)]
        score = round(rng.uniform(0, 4000), 2)
        index.insert_document(doc_id, terms, score)
        documents[doc_id] = set(terms)
        scores[doc_id] = score
        term_scores[doc_id] = normalized_tf(terms)
    use_term_scores = term_scores if method in TERMSCORE_METHODS else None
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        expected = reference_top_k(
            documents, scores, set(), keywords, 5, True, term_scores=use_term_scores
        )
        actual = query_doc_scores(index, keywords, 5)
        assert [doc for doc, _ in actual] == [doc for doc, _ in expected]


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_methods_handle_content_updates(method, small_corpus, rng):
    index = build_index(method, small_corpus, **METHOD_OPTIONS[method])
    documents, scores, _ = _corpus_maps(small_corpus)
    vocabulary = sorted({term for terms in documents.values() for term in terms})
    targets = rng.sample(list(scores), 10)
    for doc_id in targets:
        new_terms = [rng.choice(vocabulary) for _ in range(8)]
        index.update_content(doc_id, new_terms)
        documents[doc_id] = set(new_terms)
    for _ in range(10):
        keywords = rng.sample(vocabulary, 2)
        expected = reference_top_k(documents, scores, set(), keywords, 5, True)
        assert query_doc_scores(index, keywords, 5) == expected


@pytest.mark.parametrize("method", SVR_ONLY_METHODS)
def test_mixed_update_streams_stay_correct(method, rng):
    """Interleaved score updates, inserts, deletes and content updates."""
    corpus = make_corpus(rng, num_docs=30, vocabulary=15, terms_per_doc=8)
    index = build_index(method, corpus, **METHOD_OPTIONS[method])
    documents, scores, _ = _corpus_maps(corpus)
    deleted: set[int] = set()
    vocabulary = [f"w{i:03d}" for i in range(15)]
    next_id = 1000
    for step in range(80):
        action = rng.random()
        live = [doc for doc in scores if doc not in deleted]
        if action < 0.5 and live:
            doc_id = rng.choice(live)
            new_score = round(rng.uniform(0, 8000), 2)
            index.update_score(doc_id, new_score)
            scores[doc_id] = new_score
        elif action < 0.7:
            next_id += 1
            terms = [rng.choice(vocabulary) for _ in range(6)]
            score = round(rng.uniform(0, 8000), 2)
            index.insert_document(next_id, terms, score)
            documents[next_id] = set(terms)
            scores[next_id] = score
        elif action < 0.85 and live:
            doc_id = rng.choice(live)
            index.delete_document(doc_id)
            deleted.add(doc_id)
        elif live:
            doc_id = rng.choice(live)
            terms = [rng.choice(vocabulary) for _ in range(6)]
            index.update_content(doc_id, terms)
            documents[doc_id] = set(terms)
        if step % 10 == 9:
            keywords = rng.sample(vocabulary, 2)
            expected = reference_top_k(documents, scores, deleted, keywords, 5, True)
            assert query_doc_scores(index, keywords, 5) == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_docs=st.integers(min_value=5, max_value=25),
    num_updates=st.integers(min_value=0, max_value=40),
    k=st.integers(min_value=1, max_value=8),
    conjunctive=st.booleans(),
)
def test_property_chunk_and_threshold_match_reference(seed, num_docs, num_updates, k, conjunctive):
    """Property: Chunk and Score-Threshold return the reference top-k for random workloads."""
    rng = random.Random(seed)
    corpus = make_corpus(rng, num_docs=num_docs, vocabulary=10, terms_per_doc=6)
    documents, scores, _ = _corpus_maps(corpus)
    vocabulary = [f"w{i:03d}" for i in range(10)]
    for method in ("chunk", "score_threshold"):
        index = build_index(method, corpus, **METHOD_OPTIONS[method])
        local_scores = dict(scores)
        update_rng = random.Random(seed + 1)
        for _ in range(num_updates):
            doc_id = update_rng.choice(list(local_scores))
            new_score = round(update_rng.uniform(0, 5000), 2)
            index.update_score(doc_id, new_score)
            local_scores[doc_id] = new_score
        keywords = update_rng.sample(vocabulary, 2)
        expected = reference_top_k(documents, local_scores, set(), keywords, k, conjunctive)
        assert query_doc_scores(index, keywords, k, conjunctive) == expected
