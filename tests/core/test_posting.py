"""Tests for posting codecs (varints, ID-ordered, score-ordered and chunked lists)."""

import pytest

from repro.errors import InvertedIndexError
from repro.core.posting import (
    ChunkRun,
    LazyBytesReader,
    Posting,
    ScoredPosting,
    build_chunk_runs,
    decode_chunk_runs,
    decode_id_postings,
    decode_scored_postings,
    decode_varint,
    encode_chunk_runs,
    encode_id_postings,
    encode_scored_postings,
    encode_varint,
    iter_chunk_postings_lazy,
    iter_id_postings_lazy,
    iter_scored_postings_lazy,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 21, 2 ** 40])
    def test_round_trip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_small_values_take_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(InvertedIndexError):
            encode_varint(-1)

    def test_truncated_decode_raises(self):
        with pytest.raises(InvertedIndexError):
            decode_varint(b"\x80", 0)


class TestIDPostings:
    def test_round_trip(self):
        postings = [Posting(doc_id=i * 7) for i in range(50)]
        data = encode_id_postings(postings)
        assert decode_id_postings(data) == postings

    def test_round_trip_with_term_scores(self):
        postings = [Posting(doc_id=i, term_score=i / 10) for i in range(20)]
        data = encode_id_postings(postings, with_term_scores=True)
        decoded = decode_id_postings(data)
        assert [p.doc_id for p in decoded] == [p.doc_id for p in postings]
        for got, want in zip(decoded, postings):
            assert got.term_score == pytest.approx(want.term_score, rel=1e-6)

    def test_unsorted_ids_rejected(self):
        with pytest.raises(InvertedIndexError):
            encode_id_postings([Posting(5), Posting(3)])

    def test_empty_list(self):
        assert decode_id_postings(encode_id_postings([])) == []
        assert decode_id_postings(b"") == []

    def test_delta_encoding_is_compact(self):
        dense = [Posting(doc_id=i) for i in range(1000)]
        assert len(encode_id_postings(dense)) < 1100  # ~1 byte per posting + header


class TestScoredPostings:
    def test_round_trip(self):
        postings = [
            ScoredPosting(doc_id=i, score=1000.0 - i) for i in range(30)
        ]
        decoded = decode_scored_postings(encode_scored_postings(postings))
        assert [(p.doc_id, p.score) for p in decoded] == [
            (p.doc_id, p.score) for p in postings
        ]

    def test_requires_descending_score_order(self):
        with pytest.raises(InvertedIndexError):
            encode_scored_postings([ScoredPosting(1, 5.0), ScoredPosting(2, 10.0)])

    def test_scored_lists_are_larger_than_id_lists(self):
        ids = [Posting(doc_id=i) for i in range(500)]
        scored = [ScoredPosting(doc_id=i, score=10_000.0 - i) for i in range(500)]
        assert len(encode_scored_postings(scored)) > 5 * len(encode_id_postings(ids))


class TestChunkRuns:
    def test_round_trip(self):
        runs = [
            ChunkRun(chunk_id=3, postings=(Posting(1), Posting(5), Posting(9))),
            ChunkRun(chunk_id=1, postings=(Posting(2), Posting(3))),
        ]
        assert decode_chunk_runs(encode_chunk_runs(runs)) == runs

    def test_requires_descending_chunk_order(self):
        runs = [
            ChunkRun(chunk_id=1, postings=(Posting(1),)),
            ChunkRun(chunk_id=2, postings=(Posting(2),)),
        ]
        with pytest.raises(InvertedIndexError):
            encode_chunk_runs(runs)

    def test_requires_ascending_doc_ids_within_chunk(self):
        runs = [ChunkRun(chunk_id=1, postings=(Posting(5), Posting(1)))]
        with pytest.raises(InvertedIndexError):
            encode_chunk_runs(runs)

    def test_build_chunk_runs_orders_correctly(self):
        triples = [(10, 1, 0.0), (3, 2, 0.0), (7, 2, 0.0), (1, 1, 0.0), (4, 3, 0.0)]
        runs = build_chunk_runs(triples)
        assert [run.chunk_id for run in runs] == [3, 2, 1]
        assert [p.doc_id for p in runs[1].postings] == [3, 7]
        assert [p.doc_id for p in runs[2].postings] == [1, 10]


class TestLazyDecoding:
    def test_lazy_id_decoding_matches_eager(self):
        postings = [Posting(doc_id=i * 3, term_score=0.0) for i in range(200)]
        data = encode_id_postings(postings)
        pages = [data[i:i + 16] for i in range(0, len(data), 16)]
        reader = LazyBytesReader(iter(pages))
        assert list(iter_id_postings_lazy(reader)) == [
            (posting.doc_id, posting.term_score) for posting in postings
        ]

    def test_lazy_chunk_decoding_matches_eager(self):
        runs = build_chunk_runs([(doc, doc % 4 + 1, 0.0) for doc in range(100)])
        data = encode_chunk_runs(runs)
        pages = [data[i:i + 7] for i in range(0, len(data), 7)]
        triples = list(iter_chunk_postings_lazy(LazyBytesReader(iter(pages))))
        expected = [
            (run.chunk_id, posting.doc_id, posting.term_score)
            for run in runs for posting in run.postings
        ]
        assert triples == expected

    def test_lazy_reader_consumes_pages_on_demand(self):
        postings = [Posting(doc_id=i) for i in range(1000)]
        data = encode_id_postings(postings)
        consumed = 0

        def pages():
            nonlocal consumed
            for i in range(0, len(data), 32):
                consumed += 1
                yield data[i:i + 32]

        iterator = iter_id_postings_lazy(LazyBytesReader(pages()))
        for _ in range(10):
            next(iterator)
        assert consumed < 5  # only the first pages were touched

    def test_truncated_stream_raises(self):
        data = encode_id_postings([Posting(doc_id=i) for i in range(100)])
        reader = LazyBytesReader(iter([data[:10]]))
        with pytest.raises(InvertedIndexError):
            list(iter_id_postings_lazy(reader))

    def test_truncated_scored_stream_raises(self):
        postings = [ScoredPosting(doc_id=i, score=100.0 - i) for i in range(40)]
        for with_term_scores in (False, True):
            data = encode_scored_postings(postings, with_term_scores=with_term_scores)
            reader = LazyBytesReader(iter([data[:len(data) - 3]]))
            with pytest.raises(InvertedIndexError):
                list(iter_scored_postings_lazy(reader))
