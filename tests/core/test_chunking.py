"""Tests for chunk-boundary strategies and the ChunkMap."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvertedIndexError
from repro.core.indexes.chunking import (
    ChunkMap,
    equal_count_chunks,
    exponential_count_chunks,
    ratio_chunks,
)


class TestChunkMap:
    def test_chunk_assignment_and_bounds(self):
        chunk_map = ChunkMap(lower_bounds=(0.0, 10.0, 100.0))
        assert chunk_map.num_chunks == 3
        assert chunk_map.chunk_of(0.0) == 1
        assert chunk_map.chunk_of(9.99) == 1
        assert chunk_map.chunk_of(10.0) == 2
        assert chunk_map.chunk_of(99.0) == 2
        assert chunk_map.chunk_of(1e9) == 3
        assert chunk_map.lower_bound(1) == 0.0
        assert chunk_map.lower_bound(3) == 100.0
        assert chunk_map.lower_bound(4) == math.inf

    def test_higher_chunks_have_higher_scores(self):
        chunk_map = ChunkMap(lower_bounds=(0.0, 5.0, 50.0, 500.0))
        rng = random.Random(0)
        samples = [rng.uniform(0, 1000) for _ in range(200)]
        for a in samples:
            for b in samples[:20]:
                if chunk_map.chunk_of(a) > chunk_map.chunk_of(b):
                    assert a > b or chunk_map.chunk_of(a) == chunk_map.chunk_of(b)

    def test_invalid_maps_rejected(self):
        with pytest.raises(InvertedIndexError):
            ChunkMap(lower_bounds=())
        with pytest.raises(InvertedIndexError):
            ChunkMap(lower_bounds=(1.0, 2.0))      # must start at 0.0
        with pytest.raises(InvertedIndexError):
            ChunkMap(lower_bounds=(0.0, 5.0, 5.0))  # strictly increasing

    def test_negative_scores_rejected(self):
        chunk_map = ChunkMap(lower_bounds=(0.0,))
        with pytest.raises(InvertedIndexError):
            chunk_map.chunk_of(-1.0)

    def test_chunk_sizes_histogram(self):
        chunk_map = ChunkMap(lower_bounds=(0.0, 10.0))
        sizes = chunk_map.chunk_sizes([1.0, 2.0, 15.0])
        assert sizes == {1: 2, 2: 1}


class TestRatioChunks:
    def test_adjacent_boundaries_follow_the_ratio(self):
        scores = [float(value) for value in range(1, 2000)]
        chunk_map = ratio_chunks(scores, ratio=3.0, min_chunk_size=1)
        bounds = chunk_map.lower_bounds
        for previous, current in zip(bounds[1:], bounds[2:]):
            assert current / previous == pytest.approx(3.0)

    def test_min_chunk_size_merges_small_chunks(self):
        rng = random.Random(1)
        scores = [rng.uniform(0, 100000) ** 2 / 100000 for _ in range(300)]
        chunk_map = ratio_chunks(scores, ratio=1.5, min_chunk_size=40)
        sizes = chunk_map.chunk_sizes(scores)
        assert all(size >= 40 for size in sizes.values())

    def test_degenerate_inputs(self):
        assert ratio_chunks([], ratio=2.0).num_chunks == 1
        assert ratio_chunks([0.0, 0.0], ratio=2.0).num_chunks == 1
        with pytest.raises(InvertedIndexError):
            ratio_chunks([1.0], ratio=1.0)
        with pytest.raises(InvertedIndexError):
            ratio_chunks([1.0], ratio=2.0, min_chunk_size=0)

    def test_subnormal_scores_terminate(self):
        """A subnormal smallest score must not stall the geometric progression.

        ``5e-324 * 1.1`` rounds back to ``5e-324``, which used to spin the
        boundary loop forever; the progression now bails out when a step makes
        no progress and every score still lands in a chunk.
        """
        chunk_map = ratio_chunks([5e-324, 100.0], ratio=1.1, min_chunk_size=1)
        for score in (5e-324, 100.0):
            assert 1 <= chunk_map.chunk_of(score) <= chunk_map.num_chunks

    def test_every_score_is_assigned_to_some_chunk(self):
        rng = random.Random(2)
        scores = [rng.uniform(0, 5000) for _ in range(500)]
        chunk_map = ratio_chunks(scores, ratio=2.5, min_chunk_size=10)
        for score in scores:
            assert 1 <= chunk_map.chunk_of(score) <= chunk_map.num_chunks


class TestOtherStrategies:
    def test_equal_count_chunks_balance_occupancy(self):
        scores = [float(value) for value in range(1, 1001)]
        chunk_map = equal_count_chunks(scores, num_chunks=5)
        sizes = chunk_map.chunk_sizes(scores)
        assert chunk_map.num_chunks == 5
        assert max(sizes.values()) - min(sizes.values()) <= 2

    def test_equal_count_single_chunk(self):
        assert equal_count_chunks([1.0, 2.0], num_chunks=1).num_chunks == 1
        with pytest.raises(InvertedIndexError):
            equal_count_chunks([1.0], num_chunks=0)

    def test_exponential_chunks_put_fewest_docs_on_top(self):
        scores = [float(value) for value in range(1, 2001)]
        chunk_map = exponential_count_chunks(scores, num_chunks=4, growth=3.0)
        sizes = chunk_map.chunk_sizes(scores)
        assert sizes[chunk_map.num_chunks] < sizes[1]

    def test_exponential_validation(self):
        with pytest.raises(InvertedIndexError):
            exponential_count_chunks([1.0], num_chunks=0)
        with pytest.raises(InvertedIndexError):
            exponential_count_chunks([1.0], num_chunks=2, growth=0.0)


@settings(max_examples=50, deadline=None)
@given(
    scores=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=300),
    ratio=st.floats(min_value=1.1, max_value=50.0),
    min_size=st.integers(min_value=1, max_value=50),
)
def test_property_ratio_chunks_are_monotone_and_total(scores, ratio, min_size):
    chunk_map = ratio_chunks(scores, ratio=ratio, min_chunk_size=min_size)
    bounds = chunk_map.lower_bounds
    assert list(bounds) == sorted(set(bounds))
    assert bounds[0] == 0.0
    ordered = sorted(scores)
    chunks = [chunk_map.chunk_of(score) for score in ordered]
    assert chunks == sorted(chunks)  # chunk id is monotone in the score
