"""Shared helpers for the test suite.

The most important helper is :func:`reference_top_k`, a brute-force
re-implementation of the paper's query semantics: rank the documents matching
the keywords by their *latest* scores.  Every index method must produce exactly
the same answer (Theorems 1 and 2), which is what the equivalence and
property-based tests check.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.indexes.base import InvertedIndex
from repro.storage.environment import StorageEnvironment
from repro.text.documents import DocumentStore


def reference_top_k(
    documents: Mapping[int, set[str]],
    scores: Mapping[int, float],
    deleted: set[int],
    keywords: Sequence[str],
    k: int,
    conjunctive: bool = True,
    term_scores: Mapping[int, Mapping[str, float]] | None = None,
    term_weight: float = 1.0,
) -> list[tuple[int, float]]:
    """Ground-truth top-k: (doc_id, score) pairs, best first.

    ``term_scores`` maps doc -> term -> per-term score; when provided, the
    combined scoring function ``svr + term_weight * sum(term scores over the
    matching keywords)`` is used (the §4.3.3 combination).
    Ties are broken towards smaller document ids, matching
    :class:`repro.core.result_heap.ResultHeap`.
    """
    matches: list[tuple[int, float]] = []
    for doc_id, terms in documents.items():
        if doc_id in deleted or doc_id not in scores:
            continue
        contained = [keyword for keyword in keywords if keyword in terms]
        if conjunctive and len(contained) != len(keywords):
            continue
        if not conjunctive and not contained:
            continue
        score = scores[doc_id]
        if term_scores is not None:
            score += term_weight * sum(
                term_scores.get(doc_id, {}).get(keyword, 0.0) for keyword in contained
            )
        matches.append((doc_id, score))
    matches.sort(key=lambda item: (-item[1], item[0]))
    return matches[:k]


def normalized_tf(terms: Sequence[str]) -> dict[str, float]:
    """Normalised term frequencies of a term sequence (the TermScore per-term score)."""
    counts: dict[str, int] = {}
    for term in terms:
        counts[term] = counts.get(term, 0) + 1
    total = len(terms)
    if total == 0:
        return {}
    return {term: count / total for term, count in counts.items()}


def build_index(method: str, corpus: Iterable[tuple[int, Sequence[str], float]],
                cache_pages: int = 512, **options):
    """Build a raw :class:`InvertedIndex` (not the text-index facade) over a corpus.

    ``corpus`` yields ``(doc_id, terms, score)`` triples.  Returns the index;
    its document store and environment are reachable as attributes.
    """
    from repro.core.indexes.registry import create_index

    env = StorageEnvironment(cache_pages=cache_pages)
    documents = DocumentStore()
    index = create_index(method, env, documents, **options)
    for doc_id, terms, score in corpus:
        index.add_document(doc_id, score, terms=terms)
    index.finalize()
    return index


def query_doc_scores(index: InvertedIndex, keywords: Sequence[str], k: int,
                     conjunctive: bool = True) -> list[tuple[int, float]]:
    """Run a query and return (doc_id, score) pairs for comparison with the reference."""
    response = index.query(keywords, k=k, conjunctive=conjunctive)
    return [(result.doc_id, result.score) for result in response.results]


def _plain_env(env):
    """Unwrap a single-shard ShardedEnvironment to its one plain environment.

    ``REPRO_THREADS`` makes ``SVRTextIndex`` build single-shard sharded
    environments (the execution layer needs the facades), which stay
    physically fingerprint-identical to the plain engine — so the physical
    helpers below transparently reach through to the one shard.
    """
    shards = getattr(env, "shards", None)
    if shards is not None and len(shards) == 1:
        return shards[0]
    return env


def category_fingerprint(env: StorageEnvironment) -> dict:
    """Every buffer-pool and disk accounting category of one environment.

    Shared by the sharding fidelity tests: two engines are only
    fingerprint-identical when every one of these counters matches.  A
    sharded environment reports the per-category sums (its aggregation
    contract).
    """
    snapshot = env.snapshot()
    pool, disk = snapshot.pool, snapshot.disk
    return {
        "hits": pool.hits, "misses": pool.misses, "evictions": pool.evictions,
        "dirty_writebacks": pool.dirty_writebacks,
        "reads": disk.reads, "writes": disk.writes,
        "random_reads": disk.random_reads,
        "sequential_reads": disk.sequential_reads,
        "bytes_read": disk.bytes_read, "bytes_written": disk.bytes_written,
    }


def disk_page_bytes(env: StorageEnvironment) -> dict[int, bytes]:
    """Every on-disk page's payload bytes (flushing frames first so dirty
    decoded nodes materialise)."""
    env = _plain_env(env)
    env.pool.flush()
    disk = env.disk
    return {
        page_id: disk.peek(page_id).data
        for page_id in range(disk._next_page_id)
        if disk.contains(page_id)
    }
