"""End-to-end integration tests across the whole stack.

These tests drive the public API the way the examples do — relational tables,
SVR specification, materialised Score view, inverted-list index, query results
joined back to rows — and cross-check every index method against the same
ground truth on a realistic update-intensive scenario.
"""

import pytest

from repro import Database, SVRManager, SVRTextIndex, available_methods
from repro.workloads.archive import ArchiveConfig, InternetArchiveDataset
from repro.workloads.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig


def test_all_methods_agree_on_a_full_update_intensive_scenario():
    """The paper's core promise: any index method, same (latest-score) answers."""
    corpus = generate_corpus(
        SyntheticCorpusConfig(num_docs=200, terms_per_doc=30, num_distinct_terms=500, seed=11)
    )
    workload = UpdateWorkload(
        UpdateWorkloadConfig(num_updates=400, mean_step=5000.0, focus_set_fraction=0.05,
                             focus_update_fraction=0.5, seed=13),
        corpus.scores(),
    )
    updates = workload.generate_list()
    keywords = corpus.frequent_terms(6)[:2]

    rankings = {}
    for method in available_methods():
        options = {}
        if method.startswith("chunk"):
            options = {"chunk_ratio": 2.5, "min_chunk_size": 5}
        elif method == "score_threshold":
            options = {"threshold_ratio": 3.0}
        index = SVRTextIndex(method=method, **options)
        for document in corpus.iter_documents():
            index.add_document_terms(document.doc_id, document.terms, document.score)
        index.finalize()
        for update in updates:
            current = index.current_score(update.doc_id)
            index.update_score(update.doc_id, update.apply_to(current))
        rankings[method] = index.search(keywords, k=10).doc_ids()

    svr_only = ["id", "score", "score_threshold", "chunk"]
    for method in svr_only[1:]:
        assert rankings[method] == rankings["id"], f"{method} diverged from ID"
    # TermScore methods agree with each other (their scores include term scores).
    assert rankings["chunk_termscore"] == rankings["id_termscore"]


def test_archive_pipeline_survives_a_burst_of_structured_updates():
    """Figure 2 end to end: base-table churn flows into the keyword ranking."""
    database = Database()
    dataset = InternetArchiveDataset(ArchiveConfig(num_movies=60, seed=9))
    dataset.populate(database)
    manager = SVRManager(database)
    spec = dataset.build_score_spec(database)
    manager.create_text_index(
        name="movies",
        table="movies",
        text_column="description",
        spec=spec,
        method="chunk",
        score_dependencies=dataset.score_dependencies(),
        chunk_ratio=2.5,
        min_chunk_size=3,
    )

    statistics = database.table("statistics")
    reviews = database.table("reviews")
    next_review = max(row["review_id"] for row in reviews.scan()) + 1
    # A burst of structured updates: visits churn on every movie, new reviews
    # on a handful of them.
    for movie_id in range(1, 61):
        row = statistics.get(movie_id)
        statistics.update(movie_id, {"visits": row["visits"] + (movie_id % 7) * 1000})
    for offset, movie_id in enumerate((5, 17, 42)):
        reviews.insert({"review_id": next_review + offset, "movie_id": movie_id, "rating": 5.0})

    results = manager.search("movies", "golden gate", k=10)
    assert results, "the shared vocabulary guarantees matches"
    for result in results:
        assert result.score == pytest.approx(spec.svr_score(result.doc_id))
    scores = [result.score for result in results]
    assert scores == sorted(scores, reverse=True)

    view = manager.score_view("movies")
    for movie_id in (5, 17, 42):
        assert view.score(movie_id) == pytest.approx(spec.svr_score(movie_id))


def test_query_statistics_reflect_early_termination():
    """The Chunk method must do less work than a full scan on a skewed corpus."""
    corpus = generate_corpus(
        SyntheticCorpusConfig(num_docs=400, terms_per_doc=40, num_distinct_terms=800, seed=21)
    )
    chunk = SVRTextIndex(method="chunk", chunk_ratio=2.0, min_chunk_size=5)
    id_index = SVRTextIndex(method="id")
    for document in corpus.iter_documents():
        chunk.add_document_terms(document.doc_id, document.terms, document.score)
        id_index.add_document_terms(document.doc_id, document.terms, document.score)
    chunk.finalize()
    id_index.finalize()
    keywords = corpus.frequent_terms(2)
    chunk_stats = chunk.search(keywords, k=5).stats
    id_stats = id_index.search(keywords, k=5).stats
    assert chunk.search(keywords, k=5).doc_ids() == id_index.search(keywords, k=5).doc_ids()
    assert chunk_stats.postings_scanned < id_stats.postings_scanned
    assert chunk_stats.stopped_early
