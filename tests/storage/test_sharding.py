"""The term-partitioned storage layer: routing, facades, accounting.

Three properties carry the sharded engine:

* **Deterministic routing** — term→shard and doc→shard mappings must not
  depend on ``PYTHONHASHSEED`` (they are CRC-32 / modulo based), or a layout
  built today would be unreachable tomorrow.
* **Single-shard fidelity** — a ``ShardedEnvironment(shard_count=1)`` must be
  *fingerprint-identical* to a plain ``StorageEnvironment``: same store
  contents, same page bytes, same counter in every accounting category.
* **Aggregation linearity** — aggregate snapshots/deltas are the per-category
  sums of the per-shard counters, and *measuring* (size reporting, skew
  reports, routing) never charges any counter — the "no double-charging on
  router-side peeks" rule.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.errors import StorageError
from repro.storage.environment import StorageEnvironment
from repro.storage.sharding import (
    ShardedEnvironment,
    shard_load,
    shard_of_doc,
    shard_of_term,
)
from tests.helpers import category_fingerprint, disk_page_bytes


class TestRouting:
    def test_term_routing_is_crc32_based(self):
        for term in ("apple", "zebra", "w042", ""):
            assert shard_of_term(term, 4) == zlib.crc32(term.encode()) % 4

    def test_doc_routing_is_modulo(self):
        assert shard_of_doc(10, 4) == 2
        assert shard_of_doc(10, 1) == 0

    def test_single_shard_always_routes_to_zero(self):
        assert shard_of_term("anything", 1) == 0

    def test_terms_spread_across_shards(self):
        shards = {shard_of_term(f"term{i}", 4) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_unknown_policy_rejected(self):
        env = ShardedEnvironment(shard_count=2, cache_pages=16)
        with pytest.raises(StorageError, match="key_shard"):
            env.create_kvstore("bad", key_shard="rainbow")


class TestShardedEnvironment:
    def test_cache_budget_is_split_not_multiplied(self):
        env = ShardedEnvironment(shard_count=3, cache_pages=100)
        capacities = [shard.pool.capacity_pages for shard in env.shards]
        assert sum(capacities) == 100
        assert max(capacities) - min(capacities) <= 1

    def test_single_shard_keeps_the_full_budget(self):
        env = ShardedEnvironment(shard_count=1, cache_pages=256)
        assert env.shards[0].pool.capacity_pages == 256

    def test_shard_count_must_be_positive(self):
        with pytest.raises(StorageError):
            ShardedEnvironment(shard_count=0)

    def test_duplicate_store_names_rejected(self):
        env = ShardedEnvironment(shard_count=2, cache_pages=16)
        env.create_kvstore("x", key_shard="term")
        with pytest.raises(StorageError):
            env.create_kvstore("x", key_shard="doc")
        with pytest.raises(StorageError):
            env.create_heapfile("x")

    def test_store_catalogue_lists_logical_names_once(self):
        env = ShardedEnvironment(shard_count=3, cache_pages=16)
        env.create_kvstore("kv", key_shard="term")
        env.create_heapfile("heap")
        assert env.store_names() == ["heap", "kv"]
        assert env.kvstore_names() == ["kv"]


class TestShardedKVStore:
    def _store(self, shard_count=3):
        env = ShardedEnvironment(shard_count=shard_count, cache_pages=64, page_size=512)
        return env, env.create_kvstore("short", key_shard="term")

    def test_point_operations_match_model_dict(self):
        env, store = self._store()
        rng = random.Random(7)
        model: dict = {}
        terms = [f"t{i:02d}" for i in range(12)]
        for _ in range(400):
            term, doc = rng.choice(terms), rng.randrange(40)
            key = (term, doc)
            if rng.random() < 0.7:
                model[key] = ("ADD", doc * 0.5)
                store.put(key, ("ADD", doc * 0.5))
            elif key in model:
                del model[key]
                assert store.delete_if_present(key)
            else:
                assert not store.delete_if_present(key)
        assert len(store) == len(model)
        for key, value in model.items():
            assert store.get(key) == value
            assert key in store
        assert list(store.items()) == sorted(model.items())

    def test_prefix_items_stays_on_the_owning_shard(self):
        env, store = self._store()
        for term in ("alpha", "beta", "gamma"):
            for doc in range(5):
                store.put((term, doc), term)
        for term in ("alpha", "beta", "gamma"):
            pairs = list(store.prefix_items((term,)))
            assert pairs == [((term, doc), term) for doc in range(5)]

    def test_bulk_operations_partition_and_stay_sorted(self):
        env, store = self._store()
        items = sorted(((f"t{i % 9}", i), i) for i in range(120))
        assert store.put_many(items) == 120
        assert list(store.items()) == items
        keys = [key for key, _v in items[::2]]
        assert store.delete_many(keys) == len(keys)
        assert store.delete_many(keys, ignore_missing=True) == 0
        assert list(store.items()) == [pair for pair in items if pair[0] not in set(keys)]

    def test_cursor_merges_across_shards_in_key_order(self):
        env, store = self._store()
        items = sorted(((f"t{i % 5}", i), None) for i in range(30))
        store.put_many(items)
        cursor = store.cursor()
        seen = list(cursor)
        assert seen == items
        assert cursor.next() is None

    def test_routing_is_deterministic_per_key(self):
        env, store = self._store(shard_count=4)
        for i in range(50):
            key = (f"term{i}", i)
            shard = store.shard_of(key)
            assert shard == shard_of_term(f"term{i}", 4)
            store.put(key, i)
            assert store.shard_store(shard).contains(key)


class TestShardedHeapFile:
    def test_write_routes_by_term_and_reads_back(self):
        env = ShardedEnvironment(shard_count=3, cache_pages=64, page_size=256)
        heap = env.create_heapfile("long")
        payloads = {f"term{i}": bytes([i]) * (300 + i) for i in range(9)}
        handles = {term: heap.write(payload, key=term)
                   for term, payload in payloads.items()}
        for term, handle in handles.items():
            assert handle.shard == shard_of_term(term, 3)
            assert heap.read(handle) == payloads[term]
            assert b"".join(heap.iter_pages(handle)) == payloads[term]
        assert heap.total_bytes() == sum(len(p) for p in payloads.values())
        assert heap.segment_count == len(payloads)

    def test_multi_shard_write_requires_key(self):
        env = ShardedEnvironment(shard_count=2, cache_pages=16)
        heap = env.create_heapfile("long")
        with pytest.raises(StorageError, match="routing key"):
            heap.write(b"payload")

    def test_drop_from_cache_clears_every_shard(self):
        env = ShardedEnvironment(shard_count=2, cache_pages=64, page_size=256)
        heap = env.create_heapfile("long")
        for i in range(6):
            heap.write(b"x" * 600, key=f"term{i}")
        assert any(shard.pool.cached_pages for shard in env.shards)
        heap.drop_from_cache()
        assert all(shard.pool.cached_pages == 0 for shard in env.shards)


def _exercise(env_like) -> None:
    """A fixed op script: inserts, overwrites, deletes, scans, bulk passes."""
    kv = env_like.create_kvstore("kv", order=None) if isinstance(
        env_like, StorageEnvironment) else env_like.create_kvstore("kv", key_shard="term")
    heap = env_like.create_heapfile("heap")
    for i in range(200):
        kv.put((f"t{i % 17:02d}", i), ("ADD", float(i)))
    for i in range(0, 200, 3):
        kv.delete_if_present((f"t{i % 17:02d}", i))
    kv.put_many(sorted(((f"u{i % 5}", i), i) for i in range(80)))
    kv.delete_many(sorted((f"u{i % 5}", i) for i in range(0, 80, 2)))
    for term_id in range(17):
        list(kv.prefix_items((f"t{term_id:02d}",)))
    list(kv.items())
    handle = heap.write(b"z" * 1500, key="t00")
    b"".join(heap.iter_pages(handle))
    heap.drop_from_cache()


class TestSingleShardFidelity:
    """Shard count 1 == the classic engine, counter for counter, byte for byte."""

    def test_category_fingerprint_and_pages_identical(self):
        plain = StorageEnvironment(cache_pages=32, page_size=512)
        sharded = ShardedEnvironment(shard_count=1, cache_pages=32, page_size=512)
        _exercise(plain)
        _exercise(sharded)
        single = sharded.shards[0]
        assert category_fingerprint(plain) == category_fingerprint(single)
        assert disk_page_bytes(plain) == disk_page_bytes(single)
        assert plain.total_size_bytes() == sharded.total_size_bytes()

    def test_aggregate_snapshot_equals_single_shard_snapshot(self):
        sharded = ShardedEnvironment(shard_count=1, cache_pages=32, page_size=512)
        _exercise(sharded)
        aggregate = sharded.snapshot()
        single = sharded.shards[0].snapshot()
        assert aggregate.pool == single.pool
        assert aggregate.disk == single.disk


class TestAggregation:
    def test_aggregate_delta_is_per_category_sum_of_shard_deltas(self):
        env = ShardedEnvironment(shard_count=3, cache_pages=24, page_size=512)
        store = env.create_kvstore("kv", key_shard="term")
        before = env.snapshot()
        shard_before = env.shard_snapshots()
        for i in range(300):
            store.put((f"term{i % 23}", i), i)
        list(store.items())
        delta = env.delta_since(before)
        shard_deltas = env.shard_deltas(shard_before)
        for category in ("hits", "misses", "evictions", "dirty_writebacks"):
            assert getattr(delta.pool, category) == sum(
                getattr(d.pool, category) for d in shard_deltas
            ), category
        for category in ("reads", "writes", "random_reads", "sequential_reads"):
            assert getattr(delta.disk, category) == sum(
                getattr(d.disk, category) for d in shard_deltas
            ), category
        assert delta.pool.accesses > 0

    def test_reporting_is_accounting_free(self):
        """size/skew/routing reporting must not charge a single counter."""
        env = ShardedEnvironment(shard_count=3, cache_pages=24, page_size=512)
        store = env.create_kvstore("kv", key_shard="term")
        heap = env.create_heapfile("heap")
        for i in range(120):
            store.put((f"term{i % 11}", i), i)
        heap.write(b"y" * 900, key="term0")
        before = env.snapshot()
        store.size_bytes()
        env.total_size_bytes()
        heap.total_bytes()
        env.shard_load()
        shard_load(env)
        store.shard_of(("term3", 1))
        delta = env.delta_since(before)
        assert delta.pool.accesses == 0
        assert delta.disk.reads == 0
        assert delta.disk.writes == 0

    def test_shard_load_skew(self):
        env = ShardedEnvironment(shard_count=2, cache_pages=16, page_size=512)
        store = env.create_kvstore("kv", key_shard="term")
        # Find a term on shard 0 and hammer it.
        hot = next(t for t in (f"t{i}" for i in range(50)) if shard_of_term(t, 2) == 0)
        for i in range(200):
            store.put((hot, i), i)
        load = env.shard_load()
        assert load.shard_count == 2
        assert load.skew > 1.5  # all traffic on one of two shards -> skew ~2
        row = load.as_row()
        assert row["shards"] == 2 and row["total_accesses"] == load.total_accesses

    def test_plain_environment_reports_one_balanced_shard(self):
        env = StorageEnvironment(cache_pages=16)
        load = shard_load(env)
        assert load.shard_count == 1
        assert load.skew == 1.0
