"""Fault-injection framework tests: plans, retries, hardened consumers.

Three layers under test:

* **the injector itself** — decisions are a pure function of
  ``(op, count, seed)``, background runs respect ``max_run``, explicit specs
  escalate past the retry budget, and every escalated error carries its
  failure domain (shard tag);
* **hardened storage consumers** — transient faults retry to success with no
  state change, torn WAL appends are rolled back and retried, a failed commit
  rolls back to the last committed state and stays retryable, a checkpoint
  survives transient meta/data faults and leaves a recoverable directory when
  it fails hard;
* **data-at-rest integrity** — per-page checksums turn injected (and real)
  bit-rot into a typed :class:`ChecksumError`, and :meth:`scrub` enumerates
  on-disk rot without raising.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.errors import (
    ChecksumError,
    CommitError,
    DiskFullError,
    RetryExhaustedError,
    StorageError,
    TransientIOError,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.environment import StorageEnvironment
from repro.storage.faults import (
    DEFAULT_RETRY_BUDGET,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultStats,
    merged_fault_stats,
    run_with_retries,
)
from repro.storage.pager import Page
from repro.storage.persistence import FileBackedDisk, open_environment, replay


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_fault_at_is_pure_and_seeded(self):
        plan = FaultPlan(seed=42, rate=0.5)
        first = [plan.fault_at("read", count, 0) for count in range(200)]
        second = [plan.fault_at("read", count, 0) for count in range(200)]
        assert first == second
        assert any(kind is not None for kind in first)
        other = FaultPlan(seed=43, rate=0.5)
        assert first != [other.fault_at("read", count, 0) for count in range(200)]

    def test_spec_overrides_background(self):
        plan = FaultPlan(specs=(FaultSpec(op="write", kind="enospc", at=3),))
        assert plan.fault_at("write", 3, 0) == "enospc"
        assert plan.fault_at("write", 2, 0) is None
        assert plan.fault_at("write", 4, 0) is None
        assert plan.fault_at("read", 3, 0) is None

    def test_spec_validation(self):
        with pytest.raises(StorageError, match="unknown fault op"):
            FaultSpec(op="nope", kind="transient", at=0)
        with pytest.raises(StorageError, match="unknown fault kind"):
            FaultSpec(op="read", kind="gamma-ray", at=0)
        with pytest.raises(StorageError, match="at >= 0"):
            FaultSpec(op="read", kind="transient", at=-1)

    def test_max_run_bounds_background_noise(self):
        plan = FaultPlan(seed=1, rate=1.0, ops=("read",), max_run=2)
        injector = FaultInjector(plan)
        run = longest = 0
        for _ in range(100):
            kind = injector.roll("read")
            run = run + 1 if kind is not None else 0
            longest = max(longest, run)
        assert 0 < longest <= 2

    def test_for_shard_derives_and_filters(self):
        plan = FaultPlan(seed=5, rate=0.3, shards=(1,))
        assert not plan.for_shard(0).enabled
        derived = plan.for_shard(1)
        assert derived.enabled and derived.seed != plan.seed
        # The derivation is itself deterministic.
        assert plan.for_shard(1).seed == derived.seed

    def test_chaos_profiles_are_deterministic_and_backend_matched(self):
        a = FaultPlan.chaos(7, backend="file", escalations=3)
        b = FaultPlan.chaos(7, backend="file", escalations=3)
        assert a == b
        memory = FaultPlan.chaos(7, backend="memory", escalations=3)
        # Memory has no recovery path: every scheduled run must stay inside
        # the retry budget so faults always retry back to success.
        for spec in memory.specs:
            assert spec.run + memory.max_run <= memory.retry_budget
        assert memory.ops == ("read", "write")

    def test_none_plan_is_disabled(self):
        assert not FaultPlan.none().enabled
        assert FaultPlan(seed=3, rate=0.0).enabled is False
        assert FaultPlan(seed=None, rate=0.9).enabled is False


class TestRetries:
    def test_retries_to_success_within_budget(self):
        injector = FaultInjector(FaultPlan(retry_budget=4))
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            if calls["n"] <= 3:
                raise TransientIOError("flaky")
            return "ok"

        assert run_with_retries(injector, "read", attempt) == "ok"
        assert injector.stats.retries == 3
        assert injector.stats.escalations == 0

    def test_escalates_past_budget_with_shard_tag(self):
        injector = FaultInjector(FaultPlan(retry_budget=2), shard=3)

        def attempt():
            raise TransientIOError("always")

        with pytest.raises(RetryExhaustedError) as excinfo:
            run_with_retries(injector, "write", attempt)
        assert excinfo.value.shard == 3
        assert injector.stats.escalations == 1

    def test_reset_runs_before_each_retry(self):
        injector = FaultInjector(FaultPlan(retry_budget=3))
        resets = []
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientIOError("flaky")
            return calls["n"]

        assert run_with_retries(injector, "read", attempt,
                                reset=lambda: resets.append(calls["n"])) == 3
        assert resets == [1, 2]

    def test_none_injector_is_pass_through(self):
        assert run_with_retries(None, "read", lambda: 99) == 99

    def test_fault_point_tags_enospc(self):
        plan = FaultPlan(specs=(FaultSpec(op="allocate", kind="enospc", at=0),))
        injector = FaultInjector(plan, shard=1)
        with pytest.raises(DiskFullError) as excinfo:
            injector.fault_point("allocate")
        assert excinfo.value.shard == 1

    def test_merged_fault_stats(self):
        a = FaultStats(injected={"transient": 2}, retries=2, escalations=0)
        b = FaultStats(injected={"transient": 1, "torn": 3}, retries=4,
                       escalations=1)
        merged = merged_fault_stats([a, b])
        assert merged.injected == {"transient": 3, "torn": 3}
        assert merged.retries == 6 and merged.escalations == 1
        assert merged.total_injected == 6


# ---------------------------------------------------------------------------
# Hardened consumers: SimulatedDisk, WAL, commit, checkpoint
# ---------------------------------------------------------------------------


def _page(page_id: int, payload: bytes, size: int = 256) -> Page:
    return Page(page_id=page_id, capacity=size, data=payload)


class TestDiskInjection:
    def test_transient_read_retries_to_success(self):
        disk = SimulatedDisk(page_size=256)
        page_id = disk.allocate()
        disk.write(_page(page_id, b"payload"))
        disk.fault_injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(op="read", kind="transient", at=0,
                                       run=2),))
        )
        assert disk.read(page_id).data == b"payload"
        assert disk.fault_injector.stats.retries == 2

    def test_read_escalation_is_typed_and_tagged(self):
        disk = SimulatedDisk(page_size=256)
        page_id = disk.allocate()
        disk.write(_page(page_id, b"payload"))
        disk.fault_injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(op="read", kind="transient", at=0,
                                       run=DEFAULT_RETRY_BUDGET + 2),)),
            shard=2,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            disk.read(page_id)
        assert excinfo.value.shard == 2
        # The page itself is untouched once the schedule moves past.
        assert disk.read(page_id).data == b"payload"


class TestWalInjection:
    @staticmethod
    def _attach(disk: FileBackedDisk, injector: "FaultInjector | None") -> None:
        disk.fault_injector = injector
        disk.wal.fault_injector = injector

    def test_torn_append_rolled_back_and_retried(self, tmp_path):
        disk = FileBackedDisk(str(tmp_path / "d"), page_size=256,
                              wal_buffer_bytes=1)
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(op="wal_append", kind="torn", at=0,
                                       run=2),))
        )
        self._attach(disk, injector)
        page_id = disk.allocate()
        disk.write(_page(page_id, b"x" * 200))  # tiny buffer forces a spill
        disk.commit_batch({"stores": {}})
        assert injector.stats.injected.get("torn") == 2
        assert injector.stats.retries == 2
        self._attach(disk, None)
        assert disk.read(page_id).data == b"x" * 200
        disk.checkpoint({"stores": {}})
        disk.close()
        recovered, _catalog = FileBackedDisk.open(str(tmp_path / "d"))
        assert recovered.read(page_id).data == b"x" * 200
        recovered.close()

    def test_failed_commit_rolls_back_and_stays_retryable(self, tmp_path):
        disk = FileBackedDisk(str(tmp_path / "d"), page_size=256)
        first = disk.allocate()
        disk.write(_page(first, b"committed"))
        disk.commit_batch({"stores": {}})
        second = disk.allocate()
        disk.write(_page(second, b"pending"))
        self._attach(disk, FaultInjector(
            FaultPlan(specs=(FaultSpec(op="wal_commit", kind="transient", at=0,
                                       run=DEFAULT_RETRY_BUDGET + 2),)),
            shard=1,
        ))
        with pytest.raises(CommitError) as excinfo:
            disk.commit_batch({"stores": {}})
        assert excinfo.value.shard == 1
        assert disk.committed_batches == 1
        # The COMMIT record was rolled back; only the (uncommitted, replay-
        # invisible) spilled page record remains in the log.
        tail = replay(disk.wal.path)
        assert tail.batch_id == 1
        # The batch is still in memory and retryable once the fault clears.
        self._attach(disk, None)
        assert disk.commit_batch({"stores": {}}) == 2
        assert disk.read(second).data == b"pending"
        disk.close()

    def test_fsync_fault_uses_power_loss_semantics(self, tmp_path):
        disk = FileBackedDisk(str(tmp_path / "d"), page_size=256)
        page_id = disk.allocate()
        disk.write(_page(page_id, b"durable"))
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(op="wal_fsync", kind="fsync", at=0,
                                       run=2),))
        )
        self._attach(disk, injector)
        # The commit retries: each failed fsync rolls the log back to the
        # pre-commit offset (the record may not be durable) and re-appends.
        assert disk.commit_batch({"stores": {}}) == 1
        assert injector.stats.retries == 2
        self._attach(disk, None)
        disk.checkpoint({"stores": {}})
        disk.close()
        recovered, _catalog = FileBackedDisk.open(str(tmp_path / "d"))
        assert recovered.read(page_id).data == b"durable"
        recovered.close()


class TestCheckpointInjection:
    def _env(self, path: str) -> StorageEnvironment:
        env = StorageEnvironment(cache_pages=16, page_size=256, path=path)
        kv = env.create_kvstore("t.kv")
        for i in range(30):
            kv.put(i, i * 10)
        return env

    def test_checkpoint_survives_transient_meta_and_data_faults(self, tmp_path):
        env = self._env(str(tmp_path / "e"))
        env.inject_faults(FaultPlan(specs=(
            FaultSpec(op="data_write", kind="transient", at=0, run=2),
            FaultSpec(op="meta_write", kind="torn", at=0, run=2),
            FaultSpec(op="data_fsync", kind="fsync", at=0),
            FaultSpec(op="meta_fsync", kind="fsync", at=0),
        )))
        env.checkpoint(app_state={"ok": True})
        env.clear_faults()
        env.close()
        recovered = open_environment(str(tmp_path / "e"))
        assert dict(recovered.kvstore("t.kv").items()) == {
            i: i * 10 for i in range(30)
        }
        recovered.close()

    def test_hard_checkpoint_failure_leaves_recoverable_state(self, tmp_path):
        env = self._env(str(tmp_path / "e"))
        env.commit()
        env.inject_faults(FaultPlan(specs=(
            FaultSpec(op="meta_write", kind="transient", at=0,
                      run=DEFAULT_RETRY_BUDGET + 3),
        )))
        with pytest.raises(RetryExhaustedError):
            env.checkpoint()
        env.crash()
        recovered = open_environment(str(tmp_path / "e"))
        assert dict(recovered.kvstore("t.kv").items()) == {
            i: i * 10 for i in range(30)
        }
        recovered.close()


# ---------------------------------------------------------------------------
# Data-at-rest integrity: checksums, bit-rot, scrub
# ---------------------------------------------------------------------------


class TestBitRot:
    def _checkpointed_disk(self, path: str) -> tuple[FileBackedDisk, int]:
        disk = FileBackedDisk(path, page_size=256)
        page_id = disk.allocate()
        disk.write(_page(page_id, b"precious bytes" * 10))
        disk.commit_batch({"stores": {}})
        disk.checkpoint({"stores": {}})
        return disk, page_id

    def test_injected_bitrot_raises_checksum_error(self, tmp_path):
        disk, page_id = self._checkpointed_disk(str(tmp_path / "d"))
        disk.fault_injector = FaultInjector(
            FaultPlan(seed=9, specs=(FaultSpec(op="page_read", kind="bitrot",
                                               at=0),)),
            shard=0,
        )
        with pytest.raises(ChecksumError) as excinfo:
            disk.read(page_id)
        assert excinfo.value.shard == 0
        # The rot was injected on the read path only; the slot is clean.
        disk.fault_injector = None
        assert disk.read(page_id).data == b"precious bytes" * 10
        assert disk.scrub().clean
        disk.close()

    def test_scrub_enumerates_real_on_disk_rot(self, tmp_path):
        disk, page_id = self._checkpointed_disk(str(tmp_path / "d"))
        with open(os.path.join(str(tmp_path / "d"), "pages.dat"), "r+b") as f:
            f.seek(page_id * 256 + 3)
            byte = f.read(1)
            f.seek(page_id * 256 + 3)
            f.write(bytes([byte[0] ^ 0xFF]))
        report = disk.scrub()
        assert not report.clean
        assert page_id in report.corrupt_page_ids
        with pytest.raises(ChecksumError):
            disk.read(page_id)
        disk.close()

    def test_checksums_survive_recovery(self, tmp_path):
        disk, page_id = self._checkpointed_disk(str(tmp_path / "d"))
        disk.close()
        recovered, _catalog = FileBackedDisk.open(str(tmp_path / "d"))
        assert recovered._checksums[page_id] == zlib.crc32(b"precious bytes" * 10)
        assert recovered.scrub().clean
        recovered.close()


# ---------------------------------------------------------------------------
# Environment plumbing
# ---------------------------------------------------------------------------


class TestEnvironmentPlumbing:
    def test_inject_clear_and_stats(self, tmp_path):
        env = StorageEnvironment(cache_pages=8, page_size=256,
                                 path=str(tmp_path / "e"))
        env.create_kvstore("a").put(1, 1)
        env.inject_faults(FaultPlan(specs=(
            FaultSpec(op="write", kind="transient", at=0, run=2),
        )))
        env.commit()  # flushing the dirty page hits the faulted write path
        stats = env.fault_stats()
        assert stats.retries >= 1
        env.clear_faults()
        assert env.fault_stats() is None
        env.close()

    def test_disabled_plan_attaches_nothing(self):
        env = StorageEnvironment(cache_pages=8, page_size=256)
        env.inject_faults(FaultPlan.none())
        assert env.disk.fault_injector is None
        env.close()
