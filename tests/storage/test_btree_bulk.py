"""Tests for the bulk B+-tree operations behind the batched update pipeline.

``insert_many``/``delete_many`` must be observably equivalent to applying the
same operations one key at a time in sorted order — same contents, same split
sequence (and therefore the same page layout), same failure atomicity — while
charging strictly fewer buffer-pool accesses.  The randomized interleavings
run the bulk operations against a model dict through mid-run leaf splits and
the oversized-split rollback path.
"""

import random

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(order=6, page_size=4096, cache_pages=64):
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity_pages=cache_pages)
    return BPlusTree(pool, order=order, name="bulk")


def tree_layout(tree):
    """Physical shape fingerprint: contents plus node structure and size."""
    return (
        list(tree.items()),
        tree.height(),
        tree.node_count(),
        tree.size_bytes(),
    )


class TestBulkInsert:
    def test_insert_many_matches_model(self):
        tree = make_tree()
        items = [(key, key * 3) for key in range(200)]
        random.Random(5).shuffle(items)
        inserted = tree.insert_many(items)
        assert inserted == 200
        assert len(tree) == 200
        assert list(tree.items()) == [(key, key * 3) for key in range(200)]

    def test_insert_many_overwrites_and_counts_only_new_keys(self):
        tree = make_tree()
        tree.insert_many([(key, "old") for key in range(10)])
        inserted = tree.insert_many([(key, "new") for key in range(5, 15)])
        assert inserted == 5
        assert tree.get(7) == "new"
        assert tree.get(2) == "old"
        assert len(tree) == 15

    def test_within_batch_duplicates_follow_sequential_order(self):
        tree = make_tree()
        tree.insert_many([(1, "first"), (2, "x"), (1, "second"), (1, "third")])
        assert tree.get(1) == "third"
        assert len(tree) == 2

    def test_duplicate_raises_but_commits_prior_entries(self):
        tree = make_tree()
        tree.insert(5, "existing")
        with pytest.raises(DuplicateKeyError):
            tree.insert_many([(1, "a"), (5, "clash"), (9, "b")], overwrite=False)
        # Keys sorted before application: 1 committed, 5 raised, 9 never ran.
        assert tree.get(1) == "a"
        assert tree.get(5) == "existing"
        assert 9 not in tree

    def test_bulk_layout_identical_to_sequential_sorted_inserts(self):
        """Same split decisions per entry => bit-identical page layout."""
        rng = random.Random(11)
        items = [
            ((f"t{rng.randrange(50):03d}", -rng.uniform(0, 1000), doc), None)
            for doc in range(600)
        ]
        sequential = make_tree(order=8, page_size=512)
        for key, value in sorted(items, key=lambda item: item[0]):
            sequential.insert(key, value)
        bulk = make_tree(order=8, page_size=512)
        bulk.insert_many(items)
        assert tree_layout(bulk) == tree_layout(sequential)

    def test_mid_run_leaf_splits_keep_contents(self):
        """A single sorted run long enough to split the same leaf repeatedly."""
        tree = make_tree(order=64, page_size=512)
        items = [(key, "v" * 40) for key in range(300)]
        tree.insert_many(items)
        assert tree.height() > 1
        assert list(tree.keys()) == list(range(300))

    def test_oversized_entry_fails_atomically_mid_batch(self):
        """The oversized-split rollback path, hit from inside a bulk run.

        Entries before the failing one are committed (sequential semantics);
        the failing entry is fully unwound, including the size counter, and
        reads agree with write-back afterwards.
        """
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=4)
        tree = BPlusTree(pool, order=64, name="tiny")
        tree.insert_many([(key, "x" * 100) for key in range(3)])
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert_many([(3, "x" * 100), (4, "y" * 400), (5, "z")])
        assert len(tree) == 4  # keys 0-3 committed, 4 unwound, 5 never ran
        assert [key for key, _ in tree.items()] == [0, 1, 2, 3]
        pool.drop()  # force re-decode from disk: views must agree
        assert [key for key, _ in tree.items()] == [0, 1, 2, 3]

    def test_oversized_entry_on_unsplittable_leaf_unwinds_cleanly(self):
        """An entry too big for a leaf that cannot split (fewer than two keys)
        must fail at that entry without corrupting the tree or leaving a
        frame whose write-back crashes every later flush."""
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=4)
        tree = BPlusTree(pool, order=64, name="tiny")
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert_many([(1, "x" * 1000)])
        assert len(tree) == 0
        assert 1 not in tree
        pool.flush()  # the frame must serialise (i.e. hold committed state)
        # Prior entries of the same batch still commit (sequential semantics).
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert_many([(0, "ok"), (1, "y" * 1000), (2, "never")])
        assert list(tree.items()) == [(0, "ok")]
        assert 2 not in tree
        pool.flush()
        pool.drop()
        assert list(tree.items()) == [(0, "ok")]

    def test_empty_batch_is_a_noop(self):
        tree = make_tree()
        before = tree.pool.stats.snapshot()
        assert tree.insert_many([]) == 0
        assert tree.delete_many([]) == 0
        delta = tree.pool.stats.diff(before)
        assert delta.hits == 0 and delta.misses == 0


class TestBulkDelete:
    def test_delete_many_matches_model(self):
        tree = make_tree()
        tree.insert_many([(key, key) for key in range(100)])
        removed = tree.delete_many(range(0, 100, 3))
        assert removed == len(range(0, 100, 3))
        expected = [key for key in range(100) if key % 3 != 0]
        assert list(tree.keys()) == expected
        assert len(tree) == len(expected)

    def test_missing_key_raises_after_committing_prior_deletes(self):
        tree = make_tree()
        tree.insert_many([(key, key) for key in range(10)])
        with pytest.raises(KeyNotFoundError):
            # Applied in sorted order: 3 commits, 4.5 raises, 7 is never reached.
            tree.delete_many([7, 4.5, 3])
        assert 3 not in tree
        assert 7 in tree

    def test_ignore_missing_skips_absent_keys(self):
        tree = make_tree()
        tree.insert_many([(key, key) for key in range(10)])
        assert tree.delete_many([5, 50, 7, 70], ignore_missing=True) == 2
        assert 5 not in tree and 7 not in tree

    def test_duplicate_keys_in_batch_delete_once(self):
        tree = make_tree()
        tree.insert_many([(key, key) for key in range(5)])
        assert tree.delete_many([3, 3, 3], ignore_missing=True) == 1
        assert len(tree) == 4


class TestRandomizedInterleavings:
    @pytest.mark.parametrize("seed", [1, 17, 404])
    def test_bulk_and_single_ops_against_model(self, seed):
        """Random mix of single and bulk operations stays equal to a dict."""
        rng = random.Random(seed)
        tree = make_tree(order=8, page_size=512, cache_pages=16)
        model = {}
        key_space = [
            (f"t{term:02d}", round(-rng.uniform(0, 100), 3), doc)
            for term in range(12)
            for doc in range(40)
        ]
        for _ in range(30):
            action = rng.random()
            if action < 0.4:
                batch = [(rng.choice(key_space), rng.randrange(1000))
                         for _ in range(rng.randrange(1, 60))]
                tree.insert_many(batch)
                for key, value in batch:
                    model[key] = value
            elif action < 0.6 and model:
                victims = rng.sample(sorted(model), min(len(model), rng.randrange(1, 25)))
                extras = [rng.choice(key_space) for _ in range(3)]
                targets = victims + [key for key in extras if key not in model]
                removed = tree.delete_many(targets, ignore_missing=True)
                assert removed == len(victims)
                for key in victims:
                    del model[key]
            elif action < 0.8:
                key = rng.choice(key_space)
                value = rng.randrange(1000)
                tree.insert(key, value)
                model[key] = value
            elif model:
                key = rng.choice(sorted(model))
                assert tree.delete(key) == model.pop(key)
        assert dict(tree.items()) == model
        assert len(tree) == len(model)
        assert list(tree.keys()) == sorted(model)


class TestBulkAccounting:
    """The BufferPoolStats contract of the batch path.

    Bulk descents must charge the same hit/miss/eviction/write-back
    categories as single-key operations — every node access goes through the
    charging ``pool.get`` path, never through the accounting-free ``peek`` —
    while sharing descents across a leaf run (strictly fewer accesses than
    per-key application, never zero).
    """

    def test_bulk_ops_never_use_the_accounting_free_peek_path(self, monkeypatch):
        tree = make_tree(order=8, page_size=512)
        tree.insert_many([(key, key) for key in range(50)])

        def forbidden(page_id):
            raise AssertionError("bulk operations must charge every page access")

        monkeypatch.setattr(tree.pool, "peek", forbidden)
        monkeypatch.setattr(tree.pool.disk, "peek", forbidden)
        tree.insert_many([(key, key) for key in range(50, 120)])
        tree.delete_many(range(0, 120, 4))

    def test_counter_fingerprint_is_deterministic(self):
        """Two identical bulk runs produce identical counter fingerprints."""
        fingerprints = []
        for _ in range(2):
            tree = make_tree(order=8, page_size=512, cache_pages=8)
            tree.insert_many([(key, "v" * 30) for key in range(400)])
            tree.delete_many(range(0, 400, 5))
            stats = tree.pool.stats
            fingerprints.append(
                (stats.hits, stats.misses, stats.evictions, stats.dirty_writebacks)
            )
        assert fingerprints[0] == fingerprints[1]

    def test_bulk_charges_fewer_accesses_than_per_key_but_not_zero(self):
        items = [(key, key) for key in range(500)]
        single = make_tree(order=8, page_size=1024)
        for key, value in items:
            single.insert(key, value)
        single_accesses = single.pool.stats.accesses

        bulk = make_tree(order=8, page_size=1024)
        bulk.insert_many(items)
        bulk_accesses = bulk.pool.stats.accesses
        assert 0 < bulk_accesses < single_accesses
        # Same layout => the follow-up charges are identical too.
        assert tree_layout(bulk) == tree_layout(single)

    def test_warm_and_cold_runs_charge_the_right_categories(self):
        tree = make_tree(order=8, page_size=1024, cache_pages=256)
        tree.insert_many([(key, key) for key in range(300)])
        tree.pool.stats.reset()
        # Warm pool: a bulk delete touches only resident pages.
        tree.delete_many(range(0, 300, 10))
        warm = tree.pool.stats.snapshot()
        assert warm.hits > 0 and warm.misses == 0
        # Cold pool: the same kind of pass must charge misses.
        tree.pool.drop()
        tree.pool.stats.reset()
        tree.delete_many(range(5, 300, 10))
        cold = tree.pool.stats.snapshot()
        assert cold.misses > 0

    def test_evictions_and_writebacks_are_charged_under_pressure(self):
        tree = make_tree(order=8, page_size=512, cache_pages=4)
        tree.insert_many([(key, "v" * 40) for key in range(400)])
        stats = tree.pool.stats
        assert stats.evictions > 0
        assert stats.dirty_writebacks > 0
        assert stats.accesses == stats.hits + stats.misses
        assert list(tree.keys()) == list(range(400))
