"""Tests for the append-only heap file."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap_file import HeapFile


def make_heap(page_size=128, cache_pages=16):
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity_pages=cache_pages)
    return HeapFile(pool, name="test"), pool


class TestHeapFile:
    def test_write_and_read_round_trip(self):
        heap, _pool = make_heap()
        payload = bytes(range(200)) * 3
        handle = heap.write(payload)
        assert heap.read(handle) == payload
        assert handle.length == len(payload)

    def test_multi_page_segments(self):
        heap, _pool = make_heap(page_size=64)
        payload = b"x" * 1000
        handle = heap.write(payload)
        assert handle.page_count == (1000 + 63) // 64
        assert heap.read(handle) == payload

    def test_empty_segment_occupies_one_page(self):
        heap, _pool = make_heap()
        handle = heap.write(b"")
        assert handle.page_count == 1
        assert heap.read(handle) == b""

    def test_iter_pages_streams_lazily(self):
        heap, pool = make_heap(page_size=64)
        handle = heap.write(b"a" * 640)
        pool.drop()
        before = pool.stats.misses
        iterator = heap.iter_pages(handle)
        next(iterator)
        next(iterator)
        assert pool.stats.misses - before == 2  # only the consumed pages were read

    def test_delete_frees_pages(self):
        heap, pool = make_heap()
        handle = heap.write(b"payload")
        heap.delete(handle)
        assert heap.segment_count == 0
        assert not pool.disk.contains(handle.page_ids[0])
        with pytest.raises(StorageError):
            heap.read(handle)

    def test_get_by_segment_id(self):
        heap, _pool = make_heap()
        handle = heap.write(b"abc")
        assert heap.get(handle.segment_id) == handle
        with pytest.raises(StorageError):
            heap.get(999)

    def test_totals(self):
        heap, _pool = make_heap(page_size=64)
        heap.write(b"a" * 100)
        heap.write(b"b" * 30)
        assert heap.segment_count == 2
        assert heap.total_bytes() == 130
        assert heap.total_pages() == 2 + 1

    def test_drop_from_cache_forces_cold_reads(self):
        heap, pool = make_heap(page_size=64)
        handle = heap.write(b"z" * 500)
        heap.read(handle)           # warm the cache
        heap.drop_from_cache()
        misses_before = pool.stats.misses
        heap.read(handle)
        assert pool.stats.misses - misses_before == handle.page_count

    def test_page_ids_cover_all_segments(self):
        heap, _pool = make_heap(page_size=64)
        handles = [heap.write(b"q" * 100) for _ in range(3)]
        expected = {pid for handle in handles for pid in handle.page_ids}
        assert heap.page_ids() == expected
