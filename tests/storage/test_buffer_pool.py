"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.disk import SimulatedDisk


def make_pool(capacity=3):
    disk = SimulatedDisk(page_size=128)
    return BufferPool(disk, capacity_pages=capacity), disk


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(SimulatedDisk(), capacity_pages=0)

    def test_hit_and_miss_accounting(self):
        pool, _disk = make_pool()
        page = pool.allocate()
        pool.get(page.page_id)
        pool.get(page.page_id)
        assert pool.stats.hits == 2
        assert pool.stats.misses == 0
        pool.drop()
        pool.get(page.page_id)
        assert pool.stats.misses == 1

    def test_hits_plus_misses_equals_accesses(self):
        pool, _disk = make_pool(capacity=2)
        pages = [pool.allocate() for _ in range(4)]
        for page in pages:
            pool.get(page.page_id)
        stats = pool.stats
        assert stats.accesses == stats.hits + stats.misses

    def test_lru_eviction_order(self):
        pool, disk = make_pool(capacity=2)
        a = pool.allocate()
        b = pool.allocate()
        pool.get(a.page_id)            # a becomes most recently used
        c = pool.allocate()            # evicts b (least recently used)
        assert pool.contains(a.page_id)
        assert pool.contains(c.page_id)
        assert not pool.contains(b.page_id)
        assert pool.stats.evictions >= 1
        assert disk.contains(b.page_id)

    def test_never_exceeds_capacity(self):
        pool, _disk = make_pool(capacity=3)
        for _ in range(10):
            pool.allocate()
        assert pool.cached_pages <= 3

    def test_dirty_pages_written_back_on_eviction(self):
        pool, disk = make_pool(capacity=1)
        page = pool.allocate()
        page.write(b"dirty content")
        pool.put(page)
        pool.allocate()                # forces eviction of the dirty page
        assert disk.read(page.page_id).data == b"dirty content"

    def test_flush_writes_dirty_pages_without_dropping(self):
        pool, disk = make_pool()
        page = pool.allocate()
        page.write(b"payload")
        pool.put(page)
        pool.flush()
        assert disk.read(page.page_id).data == b"payload"
        assert pool.contains(page.page_id)

    def test_targeted_drop_only_evicts_requested_pages(self):
        pool, _disk = make_pool(capacity=4)
        pages = [pool.allocate() for _ in range(3)]
        pool.drop({pages[0].page_id})
        assert not pool.contains(pages[0].page_id)
        assert pool.contains(pages[1].page_id)
        assert pool.contains(pages[2].page_id)

    def test_get_after_drop_reads_from_disk(self):
        pool, disk = make_pool()
        page = pool.allocate()
        page.write(b"stored")
        pool.put(page)
        pool.drop()
        disk.stats.reset()
        fetched = pool.get(page.page_id)
        assert fetched.data == b"stored"
        assert disk.stats.reads == 1


class TestBufferPoolStats:
    def test_hit_rate(self):
        stats = BufferPoolStats(hits=3, misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert BufferPoolStats().hit_rate == 0.0

    def test_diff(self):
        stats = BufferPoolStats(hits=5, misses=2, evictions=1)
        snap = stats.snapshot()
        stats.hits += 1
        delta = stats.diff(snap)
        assert delta.hits == 1 and delta.misses == 0
