"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.disk import SimulatedDisk


def make_pool(capacity=3):
    disk = SimulatedDisk(page_size=128)
    return BufferPool(disk, capacity_pages=capacity), disk


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(SimulatedDisk(), capacity_pages=0)

    def test_hit_and_miss_accounting(self):
        pool, _disk = make_pool()
        page = pool.allocate()
        pool.get(page.page_id)
        pool.get(page.page_id)
        assert pool.stats.hits == 2
        assert pool.stats.misses == 0
        pool.drop()
        pool.get(page.page_id)
        assert pool.stats.misses == 1

    def test_hits_plus_misses_equals_accesses(self):
        pool, _disk = make_pool(capacity=2)
        pages = [pool.allocate() for _ in range(4)]
        for page in pages:
            pool.get(page.page_id)
        stats = pool.stats
        assert stats.accesses == stats.hits + stats.misses

    def test_lru_eviction_order(self):
        pool, disk = make_pool(capacity=2)
        a = pool.allocate()
        b = pool.allocate()
        pool.get(a.page_id)            # a becomes most recently used
        c = pool.allocate()            # evicts b (least recently used)
        assert pool.contains(a.page_id)
        assert pool.contains(c.page_id)
        assert not pool.contains(b.page_id)
        assert pool.stats.evictions >= 1
        assert disk.contains(b.page_id)

    def test_never_exceeds_capacity(self):
        pool, _disk = make_pool(capacity=3)
        for _ in range(10):
            pool.allocate()
        assert pool.cached_pages <= 3

    def test_dirty_pages_written_back_on_eviction(self):
        pool, disk = make_pool(capacity=1)
        page = pool.allocate()
        page.write(b"dirty content")
        pool.put(page)
        pool.allocate()                # forces eviction of the dirty page
        assert disk.read(page.page_id).data == b"dirty content"

    def test_flush_writes_dirty_pages_without_dropping(self):
        pool, disk = make_pool()
        page = pool.allocate()
        page.write(b"payload")
        pool.put(page)
        pool.flush()
        assert disk.read(page.page_id).data == b"payload"
        assert pool.contains(page.page_id)

    def test_targeted_drop_only_evicts_requested_pages(self):
        pool, _disk = make_pool(capacity=4)
        pages = [pool.allocate() for _ in range(3)]
        pool.drop({pages[0].page_id})
        assert not pool.contains(pages[0].page_id)
        assert pool.contains(pages[1].page_id)
        assert pool.contains(pages[2].page_id)

    def test_get_after_drop_reads_from_disk(self):
        pool, disk = make_pool()
        page = pool.allocate()
        page.write(b"stored")
        pool.put(page)
        pool.drop()
        disk.stats.reset()
        fetched = pool.get(page.page_id)
        assert fetched.data == b"stored"
        assert disk.stats.reads == 1


class TestBufferPoolStats:
    def test_hit_rate(self):
        stats = BufferPoolStats(hits=3, misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert BufferPoolStats().hit_rate == 0.0

    def test_diff(self):
        stats = BufferPoolStats(hits=5, misses=2, evictions=1)
        snap = stats.snapshot()
        stats.hits += 1
        delta = stats.diff(snap)
        assert delta.hits == 1 and delta.misses == 0


def make_midpoint_pool(capacity=8, old_fraction=0.375):
    disk = SimulatedDisk(page_size=128)
    pool = BufferPool(disk, capacity_pages=capacity, policy="midpoint",
                      old_fraction=old_fraction)
    return pool, disk


class TestMidpointPolicy:
    """The scan-resistant midpoint-insertion policy (BufferPool(policy="midpoint"))."""

    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferPoolError):
            BufferPool(SimulatedDisk(), policy="clock")
        with pytest.raises(BufferPoolError):
            BufferPool(SimulatedDisk(), policy="midpoint", old_fraction=1.5)

    def test_data_integrity_matches_lru(self):
        """Same operations, same payloads read back — only eviction order differs."""
        for policy in ("lru", "midpoint"):
            disk = SimulatedDisk(page_size=128)
            pool = BufferPool(disk, capacity_pages=4, policy=policy)
            pages = []
            for i in range(12):
                page = pool.allocate()
                page.write(bytes([i]) * 8)
                pool.put(page)
                pages.append(page.page_id)
            for i, page_id in enumerate(pages):
                assert pool.get(page_id).data == bytes([i]) * 8

    def test_new_pages_enter_probationary_segment(self):
        pool, _disk = make_midpoint_pool(capacity=8)
        page = pool.allocate()
        assert pool.probationary_pages == 1
        assert pool.protected_pages == 0
        pool.get(page.page_id)  # re-reference promotes
        assert pool.protected_pages == 1
        assert pool.probationary_pages == 0

    def test_scan_does_not_evict_hot_set(self):
        """A scan larger than the cache leaves re-referenced pages resident."""
        pool, _disk = make_midpoint_pool(capacity=8)
        hot = [pool.allocate().page_id for _ in range(4)]
        for page_id in hot:  # second touch -> protected segment
            pool.get(page_id)
        scan = [pool.allocate().page_id for _ in range(20)]
        for page_id in scan:  # one long scan, never re-referenced
            pool.get(page_id)
        for page_id in hot:
            assert pool.contains(page_id)

    def test_lru_baseline_loses_hot_set_on_same_scan(self):
        pool, _disk = make_pool(capacity=8)
        hot = [pool.allocate().page_id for _ in range(4)]
        for page_id in hot:
            pool.get(page_id)
        for _ in range(20):
            pool.allocate()
        assert not any(pool.contains(page_id) for page_id in hot)

    def test_midpoint_hit_rate_beats_lru_on_scan_mix(self):
        """The bench's claim in miniature: hot set + repeated oversized scans."""
        def run(policy):
            disk = SimulatedDisk(page_size=128)
            pool = BufferPool(disk, capacity_pages=16, policy=policy)
            hot = [pool.allocate().page_id for _ in range(8)]
            cold = [pool.allocate().page_id for _ in range(64)]
            pool.drop()
            pool.stats.reset()
            for _ in range(4):
                for _rep in range(4):
                    for page_id in hot:
                        pool.get(page_id)
                for page_id in cold:
                    pool.get(page_id)
            return pool.stats.hit_rate

        assert run("midpoint") > run("lru")

    def test_eviction_prefers_probationary_and_writes_back_dirty(self):
        pool, disk = make_midpoint_pool(capacity=4)
        protected = [pool.allocate() for _ in range(2)]
        for page in protected:
            page.write(b"hot")
            pool.put(page)
            pool.get(page.page_id)  # promote
        for _ in range(6):  # overflow through the probationary segment
            scratch = pool.allocate()
            scratch.write(b"cold")
            pool.put(scratch)
        for page in protected:
            assert pool.contains(page.page_id)
        assert pool.stats.evictions >= 4
        # evicted dirty pages were written back and are readable from disk
        assert disk.stats.writes >= 4

    def test_drop_and_flush_cover_both_segments(self):
        pool, disk = make_midpoint_pool(capacity=8)
        first = pool.allocate()
        first.write(b"a")
        pool.put(first)
        pool.get(first.page_id)  # promoted + dirty
        second = pool.allocate()
        second.write(b"b")
        pool.put(second)         # probationary + dirty
        pool.flush()
        assert disk.peek(first.page_id).data == b"a"
        assert disk.peek(second.page_id).data == b"b"
        pool.drop()
        assert pool.cached_pages == 0
        assert pool.get(first.page_id).data == b"a"
        assert pool.get(second.page_id).data == b"b"

    def test_protected_segment_demotes_to_probation_when_full(self):
        pool, _disk = make_midpoint_pool(capacity=8, old_fraction=0.5)
        pages = [pool.allocate().page_id for _ in range(6)]
        for page_id in pages:
            pool.get(page_id)  # promote everything
        # protected limit is capacity - old_target = 4: two were demoted
        assert pool.protected_pages == 4
        assert pool.probationary_pages == 2
        assert all(pool.contains(page_id) for page_id in pages)
