"""Tests for the BerkeleyDB-style key-value facade."""

import pytest

from repro.errors import KeyNotFoundError, StoreClosedError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.kvstore import KVStore


def make_store():
    pool = BufferPool(SimulatedDisk(), capacity_pages=64)
    return KVStore(pool, name="test")


class TestPointOperations:
    def test_put_get_delete(self):
        store = make_store()
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.delete("a") == 1
        assert "a" not in store

    def test_get_with_default(self):
        store = make_store()
        assert store.get("missing", default=None) is None
        with pytest.raises(KeyNotFoundError):
            store.get("missing")

    def test_delete_if_present(self):
        store = make_store()
        store.put("k", "v")
        assert store.delete_if_present("k") is True
        assert store.delete_if_present("k") is False

    def test_len_and_contains(self):
        store = make_store()
        for i in range(10):
            store.put(i, i)
        assert len(store) == 10
        assert 5 in store

    def test_closed_store_rejects_operations(self):
        store = make_store()
        store.close()
        assert store.closed
        with pytest.raises(StoreClosedError):
            store.put("a", 1)
        with pytest.raises(StoreClosedError):
            store.get("a")


class TestCursorsAndRanges:
    def test_cursor_iterates_range_in_order(self):
        store = make_store()
        for i in range(20):
            store.put(i, i * 10)
        cursor = store.cursor(low=5, high=8)
        assert list(cursor) == [(5, 50), (6, 60), (7, 70), (8, 80)]

    def test_cursor_next_returns_none_when_exhausted(self):
        store = make_store()
        store.put(1, "a")
        cursor = store.cursor()
        assert cursor.next() == (1, "a")
        assert cursor.current == (1, "a")
        assert cursor.next() is None
        assert cursor.next() is None

    def test_items_full_scan_sorted(self):
        store = make_store()
        for key in (5, 3, 9, 1):
            store.put(key, None)
        assert [key for key, _ in store.items()] == [1, 3, 5, 9]

    def test_prefix_items_on_composite_keys(self):
        store = make_store()
        store.put(("apple", 2), "a2")
        store.put(("apple", 1), "a1")
        store.put(("banana", 1), "b1")
        store.put(("apricot", 1), "ap1")
        assert list(store.prefix_items(("apple",))) == [
            (("apple", 1), "a1"),
            (("apple", 2), "a2"),
        ]
        assert list(store.prefix_items(("cherry",))) == []

    def test_prefix_items_multi_component_prefix(self):
        store = make_store()
        for term in ("x", "y"):
            for chunk in (3, 2, 1):
                for doc in (7, 5):
                    store.put((term, chunk, doc), None)
        keys = [key for key, _ in store.prefix_items(("x", 2))]
        assert keys == [("x", 2, 5), ("x", 2, 7)]


class TestSizes:
    def test_size_bytes_grows_with_content(self):
        store = make_store()
        empty = store.size_bytes()
        for i in range(200):
            store.put(i, "value-%d" % i)
        assert store.size_bytes() > empty

    def test_page_ids_nonempty(self):
        store = make_store()
        store.put(1, 1)
        assert store.page_ids()
