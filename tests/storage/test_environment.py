"""Tests for the storage environment (named stores + global I/O accounting)."""

import pytest

from repro.errors import StorageError
from repro.storage.environment import StorageEnvironment


class TestStoreManagement:
    def test_create_and_lookup_stores(self):
        env = StorageEnvironment(cache_pages=32)
        kv = env.create_kvstore("scores")
        heap = env.create_heapfile("long_lists")
        assert env.kvstore("scores") is kv
        assert env.heapfile("long_lists") is heap
        assert env.store_names() == ["long_lists", "scores"]

    def test_duplicate_names_rejected_across_store_kinds(self):
        env = StorageEnvironment(cache_pages=32)
        env.create_kvstore("x")
        with pytest.raises(StorageError):
            env.create_kvstore("x")
        with pytest.raises(StorageError):
            env.create_heapfile("x")

    def test_unknown_store_lookup_raises(self):
        env = StorageEnvironment(cache_pages=32)
        with pytest.raises(StorageError):
            env.kvstore("nope")
        with pytest.raises(StorageError):
            env.heapfile("nope")

    def test_total_size_accounts_all_stores(self):
        env = StorageEnvironment(cache_pages=32)
        kv = env.create_kvstore("kv")
        heap = env.create_heapfile("heap")
        kv.put(1, "value")
        heap.write(b"x" * 100)
        assert env.total_size_bytes() >= 100


class TestIOAccounting:
    def test_snapshot_delta_captures_activity(self):
        env = StorageEnvironment(cache_pages=4)
        heap = env.create_heapfile("heap")
        handle = heap.write(b"a" * 4096 * 3)
        env.drop_cache()
        before = env.snapshot()
        heap.read(handle)
        delta = env.delta_since(before)
        assert delta.page_reads >= 3
        assert delta.cost_ms() > 0.0

    def test_delta_is_zero_without_activity(self):
        env = StorageEnvironment(cache_pages=8)
        before = env.snapshot()
        delta = env.delta_since(before)
        assert delta.page_reads == 0
        assert delta.page_writes == 0
        assert delta.pool_hits == 0

    def test_reset_stats(self):
        env = StorageEnvironment(cache_pages=8)
        kv = env.create_kvstore("kv")
        kv.put(1, 1)
        env.reset_stats()
        assert env.disk.stats.reads == 0
        assert env.pool.stats.accesses == 0

    def test_drop_cache_then_read_counts_misses(self):
        env = StorageEnvironment(cache_pages=16)
        kv = env.create_kvstore("kv")
        for i in range(50):
            kv.put(i, i)
        env.drop_cache()
        before = env.snapshot()
        kv.get(25)
        delta = env.delta_since(before)
        assert delta.page_reads >= 1
