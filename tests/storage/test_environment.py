"""Tests for the storage environment (named stores + global I/O accounting)."""

import pytest

from repro.errors import StorageError
from repro.storage.environment import StorageEnvironment


class TestStoreManagement:
    def test_create_and_lookup_stores(self):
        env = StorageEnvironment(cache_pages=32)
        kv = env.create_kvstore("scores")
        heap = env.create_heapfile("long_lists")
        assert env.kvstore("scores") is kv
        assert env.heapfile("long_lists") is heap
        assert env.store_names() == ["long_lists", "scores"]

    def test_duplicate_names_rejected_across_store_kinds(self):
        env = StorageEnvironment(cache_pages=32)
        env.create_kvstore("x")
        with pytest.raises(StorageError):
            env.create_kvstore("x")
        with pytest.raises(StorageError):
            env.create_heapfile("x")

    def test_unknown_store_lookup_raises(self):
        env = StorageEnvironment(cache_pages=32)
        with pytest.raises(StorageError):
            env.kvstore("nope")
        with pytest.raises(StorageError):
            env.heapfile("nope")

    def test_total_size_accounts_all_stores(self):
        env = StorageEnvironment(cache_pages=32)
        kv = env.create_kvstore("kv")
        heap = env.create_heapfile("heap")
        kv.put(1, "value")
        heap.write(b"x" * 100)
        assert env.total_size_bytes() >= 100


class TestIOAccounting:
    def test_snapshot_delta_captures_activity(self):
        env = StorageEnvironment(cache_pages=4)
        heap = env.create_heapfile("heap")
        handle = heap.write(b"a" * 4096 * 3)
        env.drop_cache()
        before = env.snapshot()
        heap.read(handle)
        delta = env.delta_since(before)
        assert delta.page_reads >= 3
        assert delta.cost_ms() > 0.0

    def test_delta_is_zero_without_activity(self):
        env = StorageEnvironment(cache_pages=8)
        before = env.snapshot()
        delta = env.delta_since(before)
        assert delta.page_reads == 0
        assert delta.page_writes == 0
        assert delta.pool_hits == 0

    def test_reset_stats(self):
        env = StorageEnvironment(cache_pages=8)
        kv = env.create_kvstore("kv")
        kv.put(1, 1)
        env.reset_stats()
        assert env.disk.stats.reads == 0
        assert env.pool.stats.accesses == 0

    def test_drop_cache_then_read_counts_misses(self):
        env = StorageEnvironment(cache_pages=16)
        kv = env.create_kvstore("kv")
        for i in range(50):
            kv.put(i, i)
        env.drop_cache()
        before = env.snapshot()
        kv.get(25)
        delta = env.delta_since(before)
        assert delta.page_reads >= 1


class TestLifecycleIdempotence:
    """close()/crash() are idempotent and safe under concurrent teardown.

    The executor pool's shutdown path and a context manager's __exit__ can
    both reach close() — a WAL file handle must never be double-closed
    (satellite of the concurrent-execution PR).
    """

    def test_close_twice_is_noop(self):
        env = StorageEnvironment(cache_pages=8)
        env.create_kvstore("kv").put(1, 1)
        env.close()
        env.close()
        assert env.closed

    def test_close_after_crash_is_noop(self, tmp_path):
        env = StorageEnvironment(cache_pages=8, path=str(tmp_path / "env"))
        env.create_kvstore("kv").put(1, 1)
        env.crash()
        env.close()   # must not reopen or re-close the WAL handle
        env.crash()   # and crashing again is equally safe
        assert env.closed

    def test_exit_after_crash_does_not_raise(self, tmp_path):
        with StorageEnvironment(cache_pages=8, path=str(tmp_path / "env")) as env:
            env.create_kvstore("kv").put(1, 1)
            env.crash()
        assert env.closed

    def test_concurrent_close_single_winner(self, tmp_path):
        import threading

        env = StorageEnvironment(cache_pages=8, path=str(tmp_path / "env"))
        env.create_kvstore("kv").put(1, 1)
        errors = []

        def teardown():
            try:
                env.close()
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=teardown) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert env.closed

    def test_sharded_lifecycle_idempotent(self, tmp_path):
        import threading

        from repro.storage.sharding import ShardedEnvironment

        env = ShardedEnvironment(shard_count=3, cache_pages=24,
                                 path=str(tmp_path / "sharded"))
        env.create_kvstore("kv", key_shard="doc").put(1, 1)
        errors = []

        def teardown(action):
            try:
                action()
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=teardown, args=(env.close,))
                   for _ in range(4)]
        threads += [threading.Thread(target=teardown, args=(env.crash,))
                    for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert env.closed
        env.close()
        env.crash()

    def test_text_index_close_joins_executors(self):
        from repro.core.text_index import SVRTextIndex

        index = SVRTextIndex(method="id", shards=2, threads=4, cache_pages=64,
                             page_size=512)
        pool = index.router._pool
        assert pool is not None and pool.parallel
        index.close()
        index.close()
        assert pool.closed
