"""Tests for the simulated disk and its cost model."""

import pytest

from repro.errors import PageNotFoundError
from repro.storage.disk import DiskCostModel, DiskStats, SimulatedDisk
from repro.storage.pager import Page


class TestSimulatedDisk:
    def test_allocate_assigns_increasing_ids(self):
        disk = SimulatedDisk()
        ids = [disk.allocate() for _ in range(3)]
        assert ids == [0, 1, 2]
        assert disk.page_count == 3

    def test_read_returns_copy(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        page = disk.read(page_id)
        page.write(b"local change")
        assert disk.read(page_id).data == b""

    def test_write_persists_payload(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        page = Page(page_id=page_id, capacity=disk.page_size, data=b"persisted")
        disk.write(page)
        assert disk.read(page_id).data == b"persisted"

    def test_read_unknown_page_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(PageNotFoundError):
            disk.read(42)

    def test_write_unknown_page_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(PageNotFoundError):
            disk.write(Page(page_id=9, capacity=disk.page_size))

    def test_free_removes_page(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        disk.free(page_id)
        assert not disk.contains(page_id)

    def test_sequential_vs_random_read_accounting(self):
        disk = SimulatedDisk()
        ids = disk.allocate_many(5)
        disk.stats.reset()
        disk.read(ids[0])
        disk.read(ids[1])          # sequential (previous + 1)
        disk.read(ids[4])          # random jump
        disk.read(ids[2])          # random jump backwards
        assert disk.stats.reads == 4
        assert disk.stats.sequential_reads == 1
        assert disk.stats.random_reads == 3
        assert disk.stats.reads == disk.stats.sequential_reads + disk.stats.random_reads

    def test_bytes_accounting(self):
        disk = SimulatedDisk(page_size=128)
        page_id = disk.allocate()
        disk.read(page_id)
        assert disk.stats.bytes_read == 128
        disk.write(Page(page_id=page_id, capacity=128, data=b"x"))
        assert disk.stats.bytes_written == 128


class TestDiskStats:
    def test_snapshot_and_diff(self):
        stats = DiskStats(reads=10, writes=4, random_reads=6, sequential_reads=4)
        snap = stats.snapshot()
        stats.reads += 5
        stats.random_reads += 5
        delta = stats.diff(snap)
        assert delta.reads == 5
        assert delta.random_reads == 5
        assert snap.reads == 10

    def test_reset(self):
        stats = DiskStats(reads=3, writes=2)
        stats.reset()
        assert stats.reads == 0 and stats.writes == 0


class TestDiskCostModel:
    def test_cost_scales_with_random_reads(self):
        model = DiskCostModel(random_read_ms=10.0, sequential_read_ms=0.1, write_ms=0.0,
                              cpu_per_page_ms=0.0)
        cheap = DiskStats(reads=10, sequential_reads=10)
        expensive = DiskStats(reads=10, random_reads=10)
        assert model.cost_ms(expensive) > 50 * model.cost_ms(cheap)

    def test_estimated_cost_tracks_activity(self):
        disk = SimulatedDisk()
        assert disk.estimated_cost_ms() == 0.0
        page_id = disk.allocate()
        disk.read(page_id)
        assert disk.estimated_cost_ms() > 0.0
