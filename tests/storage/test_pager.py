"""Tests for the page abstraction."""

import pytest

from repro.errors import PageError
from repro.storage.pager import PAGE_SIZE, Page, pages_needed, split_into_pages


class TestPage:
    def test_new_page_is_empty(self):
        page = Page(page_id=1)
        assert page.size == 0
        assert page.free_space == PAGE_SIZE
        assert not page.dirty

    def test_write_replaces_payload_and_marks_dirty(self):
        page = Page(page_id=1, capacity=64)
        page.write(b"hello")
        assert page.data == b"hello"
        assert page.dirty
        page.write(b"world!")
        assert page.data == b"world!"

    def test_write_rejects_oversized_payload(self):
        page = Page(page_id=1, capacity=8)
        with pytest.raises(PageError):
            page.write(b"123456789")

    def test_append_accumulates_until_capacity(self):
        page = Page(page_id=1, capacity=8)
        page.append(b"1234")
        page.append(b"5678")
        assert page.data == b"12345678"
        with pytest.raises(PageError):
            page.append(b"9")

    def test_clear_empties_payload(self):
        page = Page(page_id=1, capacity=8, data=b"abc")
        page.clear()
        assert page.size == 0
        assert page.dirty

    def test_copy_is_independent(self):
        page = Page(page_id=3, capacity=16, data=b"abc")
        duplicate = page.copy()
        duplicate.write(b"xyz")
        assert page.data == b"abc"

    def test_constructor_validates_capacity_and_size(self):
        with pytest.raises(PageError):
            Page(page_id=1, capacity=0)
        with pytest.raises(PageError):
            Page(page_id=1, capacity=2, data=b"abc")


class TestPageMath:
    def test_pages_needed_rounds_up(self):
        assert pages_needed(0, page_size=100) == 1
        assert pages_needed(1, page_size=100) == 1
        assert pages_needed(100, page_size=100) == 1
        assert pages_needed(101, page_size=100) == 2

    def test_pages_needed_rejects_negative(self):
        with pytest.raises(PageError):
            pages_needed(-1)

    def test_split_into_pages_reassembles(self):
        payload = bytes(range(256)) * 5
        fragments = split_into_pages(payload, page_size=100)
        assert all(len(fragment) <= 100 for fragment in fragments)
        assert b"".join(fragments) == payload

    def test_split_empty_payload_occupies_one_page(self):
        assert split_into_pages(b"", page_size=100) == [b""]
