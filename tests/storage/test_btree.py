"""Tests for the paged B+-tree."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.btree import BPlusTree, default_order
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(order=6, page_size=4096, cache_pages=64):
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity_pages=cache_pages)
    return BPlusTree(pool, order=order, name="test")


class TestBasicOperations:
    def test_insert_and_get(self):
        tree = make_tree()
        tree.insert(5, "five")
        tree.insert(1, "one")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert len(tree) == 2

    def test_get_missing_key_raises_or_returns_default(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.get(99)
        assert tree.get(99, default="fallback") == "fallback"

    def test_overwrite_and_duplicate_detection(self):
        tree = make_tree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.get("k") == 2
        assert len(tree) == 1
        with pytest.raises(DuplicateKeyError):
            tree.insert("k", 3, overwrite=False)

    def test_delete(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert tree.delete(1) == "a"
        assert 1 not in tree
        assert len(tree) == 1
        with pytest.raises(KeyNotFoundError):
            tree.delete(1)

    def test_contains(self):
        tree = make_tree()
        tree.insert(10, None)
        assert 10 in tree
        assert 11 not in tree

    def test_update_value(self):
        tree = make_tree()
        tree.insert("counter", 1)
        assert tree.update_value("counter", lambda value: value + 1) == 2
        assert tree.get("counter") == 2
        with pytest.raises(KeyNotFoundError):
            tree.update_value("missing", lambda value: value)

    def test_clear(self):
        tree = make_tree()
        for i in range(20):
            tree.insert(i, i)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


class TestOrderingAndRangeScans:
    def test_items_sorted_after_random_inserts(self):
        tree = make_tree(order=6)
        import random

        rng = random.Random(3)
        keys = list(range(500))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        assert [key for key, _ in tree.items()] == sorted(keys)
        assert all(value == key * 2 for key, value in tree.items())

    def test_range_scan_bounds(self):
        tree = make_tree()
        for key in range(100):
            tree.insert(key, None)
        assert [k for k, _ in tree.items(low=10, high=15)] == [10, 11, 12, 13, 14, 15]
        assert [k for k, _ in tree.items(low=10, high=15, inclusive=(False, False))] == [
            11, 12, 13, 14,
        ]
        assert [k for k, _ in tree.items(low=97)] == [97, 98, 99]
        assert [k for k, _ in tree.items(high=2)] == [0, 1, 2]

    def test_reverse_iteration(self):
        tree = make_tree()
        for key in range(10):
            tree.insert(key, None)
        assert [k for k, _ in tree.items(reverse=True)] == list(reversed(range(10)))

    def test_first_and_last(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.first()
        for key in (5, 1, 9):
            tree.insert(key, str(key))
        assert tree.first() == (1, "1")
        assert tree.last() == (9, "9")

    def test_tuple_keys_order_lexicographically(self):
        tree = make_tree()
        tree.insert(("b", 2), "b2")
        tree.insert(("a", 9), "a9")
        tree.insert(("a", 1), "a1")
        assert [key for key, _ in tree.items()] == [("a", 1), ("a", 9), ("b", 2)]


class TestStructure:
    def test_height_grows_with_size(self):
        tree = make_tree(order=6)
        assert tree.height() == 1
        for key in range(200):
            tree.insert(key, None)
        assert tree.height() >= 3
        assert tree.node_count() > 30

    def test_order_validation(self):
        with pytest.raises(StorageError):
            make_tree(order=2)

    def test_default_order_scales_with_page_size(self):
        assert default_order(4096) > default_order(512) >= 6

    def test_oversized_value_raises_clear_error(self):
        tree = make_tree(order=6, page_size=256)
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert(1, "x" * 5000)

    def test_page_ids_cover_all_nodes(self):
        tree = make_tree(order=6)
        for key in range(100):
            tree.insert(key, None)
        assert len(tree.page_ids()) == tree.node_count()

    def test_size_bytes_positive_and_grows(self):
        tree = make_tree()
        empty_size = tree.size_bytes()
        for key in range(50):
            tree.insert(key, "payload")
        assert tree.size_bytes() > empty_size


class TestSizeEstimateInvariant:
    def test_upper_bound_never_underestimates(self):
        """The incremental size bound must never report less than the true size.

        The bound is what makes the lazy split check exact: estimate <= limit
        implies true size <= limit only while the bound stays an upper bound.
        """
        import random

        tree = make_tree(order=32, page_size=512, cache_pages=256)
        rng = random.Random(11)
        for step in range(600):
            key = (f"t{rng.randrange(40):03d}", rng.randrange(200))
            action = rng.random()
            if action < 0.6:
                tree.insert(key, rng.random() * 100)
            elif action < 0.8:
                tree.insert(key, "payload-" + "x" * rng.randrange(30))
            else:
                try:
                    tree.delete(key)
                except Exception:
                    pass
        checked = 0
        for page_id in tree.page_ids():
            node = tree._peek_node(page_id)
            estimate = node.estimated_size()
            exact = len(node.to_bytes())
            if estimate is not None:
                assert estimate >= exact
            assert exact <= tree.pool.disk.page_size
            checked += 1
        assert checked == tree.node_count()

    def test_split_check_and_write_guard_share_one_threshold(self):
        """A node passing the split check can always be written to its page.

        Randomized value sizes below the per-entry maximum must never trip the
        oversized-node error: the split threshold (capacity minus slack) keeps
        every non-splittable node within page capacity.
        """
        import random

        from repro.storage.btree import NODE_SPLIT_SLACK, split_threshold

        page_size = 512
        assert split_threshold(page_size) == page_size - NODE_SPLIT_SLACK
        tree = make_tree(order=64, page_size=page_size, cache_pages=128)
        rng = random.Random(5)
        for key in range(300):
            tree.insert(key, "v" * rng.randrange(0, 120))
        assert len(tree) == 300
        # Exercise the boundary: values sized right around the slack.
        boundary = make_tree(order=64, page_size=page_size, cache_pages=128)
        for key in range(64):
            boundary.insert(key, "w" * (NODE_SPLIT_SLACK + key))
        assert len(boundary) == 64


class TestMaintenanceAccounting:
    def make_loaded(self, cache_pages=256):
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=cache_pages)
        tree = BPlusTree(pool, order=8, name="maint")
        for key in range(400):
            tree.insert(key, key)
        return pool, tree

    def test_size_and_page_enumeration_charge_nothing(self):
        pool, tree = self.make_loaded()
        before_pool = pool.stats.snapshot()
        before_disk = pool.disk.stats.snapshot()
        tree.size_bytes()
        tree.page_ids()
        tree.node_count()
        tree.height()
        assert pool.stats.diff(before_pool).hits == 0
        assert pool.stats.diff(before_pool).misses == 0
        delta = pool.disk.stats.diff(before_disk)
        assert delta.reads == 0 and delta.writes == 0

    def test_maintenance_does_not_touch_lru_order(self):
        pool, tree = self.make_loaded(cache_pages=8)
        resident_before = sorted(
            page_id for page_id in tree.page_ids() if pool.contains(page_id)
        )
        tree.size_bytes()
        resident_after = sorted(
            page_id for page_id in tree.page_ids() if pool.contains(page_id)
        )
        assert resident_before == resident_after

    def test_accounted_page_ids_charges_reads(self):
        pool, tree = self.make_loaded()
        before = pool.stats.snapshot()
        ids = tree.page_ids(accounted=True)
        assert len(ids) == tree.node_count()
        assert pool.stats.diff(before).accesses >= len(ids)

    def test_last_reads_only_one_root_to_leaf_path(self):
        pool, tree = self.make_loaded()
        before = pool.stats.snapshot()
        assert tree.last() == (399, 399)
        accesses = pool.stats.diff(before).hits + pool.stats.diff(before).misses
        assert accesses <= tree.height() + 1

    def test_bounded_reverse_scan_stops_reading_leaves(self):
        from itertools import islice

        pool, tree = self.make_loaded()
        before = pool.stats.snapshot()
        top = [key for key, _ in islice(tree.items(reverse=True), 5)]
        assert top == [399, 398, 397, 396, 395]
        accesses = pool.stats.diff(before).accesses
        # A materialising implementation reads every leaf (~dozens of pages).
        assert accesses <= tree.height() + 3

    def test_reverse_iteration_with_bounds(self):
        _pool, tree = self.make_loaded()
        assert [k for k, _ in tree.items(low=10, high=15, reverse=True)] == [
            15, 14, 13, 12, 11, 10,
        ]
        assert [k for k, _ in tree.items(low=10, high=15, reverse=True,
                                         inclusive=(False, False))] == [14, 13, 12, 11]
        assert [k for k, _ in tree.items(high=3, reverse=True)] == [3, 2, 1, 0]
        assert [k for k, _ in tree.items(low=396, reverse=True)] == [399, 398, 397, 396]

    def test_reverse_iteration_after_deletes(self):
        _pool, tree = self.make_loaded()
        for key in range(350, 400):
            tree.delete(key)
        assert [k for k, _ in tree.items(reverse=True)][:3] == [349, 348, 347]
        assert tree.last() == (349, 349)


class TestSharedNodeIterationSafety:
    def test_forward_scan_is_stable_under_mid_iteration_splits(self):
        """A split under the cursor must not re-deliver already-yielded keys.

        Cached decoded nodes are shared; the scan snapshots each leaf
        (entries *and* successor pointer) when it reaches it.
        """
        tree = make_tree(order=4)
        for key in range(0, 80, 10):
            tree.insert(key, None)
        seen = []
        iterator = tree.items()
        seen.append(next(iterator)[0])
        for key in (1, 2, 3, 4):  # splits the leaf under the cursor
            tree.insert(key, None)
        seen.extend(key for key, _ in iterator)
        assert seen == sorted(seen), f"out-of-order or duplicated keys: {seen}"
        assert len(seen) == len(set(seen))

    def test_reverse_scan_survives_split_ahead_of_the_cursor(self):
        """A split below the reverse cursor must not hide committed keys.

        The reverse walk re-descends from the current root for every leaf
        step, so pages created by mid-iteration splits are still found.
        """
        tree = make_tree(order=4)
        original = list(range(0, 80, 10))
        for key in original:
            tree.insert(key, None)
        iterator = tree.items(reverse=True)
        seen = [next(iterator)[0]]
        for key in (1, 2, 3, 4):  # splits the leftmost leaf, ahead of the cursor
            tree.insert(key, None)
        seen.extend(key for key, _ in iterator)
        assert seen == sorted(seen, reverse=True)
        missing = set(original) - set(seen)
        assert not missing, f"committed keys dropped by reverse scan: {missing}"

    def test_split_survives_eviction_of_the_overfull_node(self):
        """Sibling allocation may evict the splitting node's own frame.

        The write-back must not try to serialise the not-yet-split node (which
        no longer fits in a page); the split detaches it first.  With values
        that split into fitting halves, the whole cascade of splits works even
        when every allocation evicts the node being split.
        """
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=1)
        tree = BPlusTree(pool, order=64, name="tiny-pool")
        for key in range(12):
            tree.insert(key, "x" * 120)
        assert len(tree) == 12
        assert [key for key, _ in tree.items()] == list(range(12))
        assert tree.get(11) == "x" * 120

    def test_oversized_split_fails_cleanly_and_atomically(self):
        """A value too big to share a page raises StorageError, not corruption.

        The failing insert must unwind completely: every previously committed
        entry survives (the committed state is checkpointed before the split),
        the size counter is rolled back, and reads and write-back agree.
        """
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=1)
        tree = BPlusTree(pool, order=64, name="tiny-pool")
        for key in range(3):
            tree.insert(key, "x" * 100)
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert(3, "y" * 400)
        assert len(tree) == 3
        assert [key for key, _ in tree.items()] == [0, 1, 2]
        assert tree.get(1) == "x" * 100

    def test_oversized_split_after_flush_leaves_no_split_brain(self):
        """After a flush, a failed split must not leave reads serving a
        mutated decoded node while the disk holds the committed bytes."""
        pool = BufferPool(SimulatedDisk(page_size=512), capacity_pages=4)
        tree = BPlusTree(pool, order=64, name="flush-pool")
        for key in (5, 6, 7):
            tree.insert(key, "x" * 100)
        pool.flush()
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert(1, "y" * 400)
        assert [key for key, _ in tree.items()] == [5, 6, 7]
        pool.drop()  # force re-read from disk: views must agree
        assert [key for key, _ in tree.items()] == [5, 6, 7]
        assert len(tree) == 3


class TestIOBehaviour:
    def test_lookups_touch_pages_through_the_pool(self):
        pool = BufferPool(SimulatedDisk(page_size=4096), capacity_pages=128)
        tree = BPlusTree(pool, order=8, name="io")
        for key in range(300):
            tree.insert(key, key)
        before = pool.stats.accesses
        tree.get(123)
        assert pool.stats.accesses - before >= tree.height()

    def test_persists_across_cache_drop(self):
        pool = BufferPool(SimulatedDisk(page_size=4096), capacity_pages=8)
        tree = BPlusTree(pool, order=8, name="evict")
        for key in range(500):
            tree.insert(key, key * 3)
        pool.drop()
        assert tree.get(250) == 750
        assert [key for key, _ in tree.items(low=495)] == [495, 496, 497, 498, 499]
