"""Tests for the paged B+-tree."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.btree import BPlusTree, default_order
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(order=6, page_size=4096, cache_pages=64):
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity_pages=cache_pages)
    return BPlusTree(pool, order=order, name="test")


class TestBasicOperations:
    def test_insert_and_get(self):
        tree = make_tree()
        tree.insert(5, "five")
        tree.insert(1, "one")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert len(tree) == 2

    def test_get_missing_key_raises_or_returns_default(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.get(99)
        assert tree.get(99, default="fallback") == "fallback"

    def test_overwrite_and_duplicate_detection(self):
        tree = make_tree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.get("k") == 2
        assert len(tree) == 1
        with pytest.raises(DuplicateKeyError):
            tree.insert("k", 3, overwrite=False)

    def test_delete(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert tree.delete(1) == "a"
        assert 1 not in tree
        assert len(tree) == 1
        with pytest.raises(KeyNotFoundError):
            tree.delete(1)

    def test_contains(self):
        tree = make_tree()
        tree.insert(10, None)
        assert 10 in tree
        assert 11 not in tree

    def test_update_value(self):
        tree = make_tree()
        tree.insert("counter", 1)
        assert tree.update_value("counter", lambda value: value + 1) == 2
        assert tree.get("counter") == 2
        with pytest.raises(KeyNotFoundError):
            tree.update_value("missing", lambda value: value)

    def test_clear(self):
        tree = make_tree()
        for i in range(20):
            tree.insert(i, i)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


class TestOrderingAndRangeScans:
    def test_items_sorted_after_random_inserts(self):
        tree = make_tree(order=6)
        import random

        rng = random.Random(3)
        keys = list(range(500))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        assert [key for key, _ in tree.items()] == sorted(keys)
        assert all(value == key * 2 for key, value in tree.items())

    def test_range_scan_bounds(self):
        tree = make_tree()
        for key in range(100):
            tree.insert(key, None)
        assert [k for k, _ in tree.items(low=10, high=15)] == [10, 11, 12, 13, 14, 15]
        assert [k for k, _ in tree.items(low=10, high=15, inclusive=(False, False))] == [
            11, 12, 13, 14,
        ]
        assert [k for k, _ in tree.items(low=97)] == [97, 98, 99]
        assert [k for k, _ in tree.items(high=2)] == [0, 1, 2]

    def test_reverse_iteration(self):
        tree = make_tree()
        for key in range(10):
            tree.insert(key, None)
        assert [k for k, _ in tree.items(reverse=True)] == list(reversed(range(10)))

    def test_first_and_last(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.first()
        for key in (5, 1, 9):
            tree.insert(key, str(key))
        assert tree.first() == (1, "1")
        assert tree.last() == (9, "9")

    def test_tuple_keys_order_lexicographically(self):
        tree = make_tree()
        tree.insert(("b", 2), "b2")
        tree.insert(("a", 9), "a9")
        tree.insert(("a", 1), "a1")
        assert [key for key, _ in tree.items()] == [("a", 1), ("a", 9), ("b", 2)]


class TestStructure:
    def test_height_grows_with_size(self):
        tree = make_tree(order=6)
        assert tree.height() == 1
        for key in range(200):
            tree.insert(key, None)
        assert tree.height() >= 3
        assert tree.node_count() > 30

    def test_order_validation(self):
        with pytest.raises(StorageError):
            make_tree(order=2)

    def test_default_order_scales_with_page_size(self):
        assert default_order(4096) > default_order(512) >= 6

    def test_oversized_value_raises_clear_error(self):
        tree = make_tree(order=6, page_size=256)
        with pytest.raises(StorageError, match="HeapFile"):
            tree.insert(1, "x" * 5000)

    def test_page_ids_cover_all_nodes(self):
        tree = make_tree(order=6)
        for key in range(100):
            tree.insert(key, None)
        assert len(tree.page_ids()) == tree.node_count()

    def test_size_bytes_positive_and_grows(self):
        tree = make_tree()
        empty_size = tree.size_bytes()
        for key in range(50):
            tree.insert(key, "payload")
        assert tree.size_bytes() > empty_size


class TestIOBehaviour:
    def test_lookups_touch_pages_through_the_pool(self):
        pool = BufferPool(SimulatedDisk(page_size=4096), capacity_pages=128)
        tree = BPlusTree(pool, order=8, name="io")
        for key in range(300):
            tree.insert(key, key)
        before = pool.stats.accesses
        tree.get(123)
        assert pool.stats.accesses - before >= tree.height()

    def test_persists_across_cache_drop(self):
        pool = BufferPool(SimulatedDisk(page_size=4096), capacity_pages=8)
        tree = BPlusTree(pool, order=8, name="evict")
        for key in range(500):
            tree.insert(key, key * 3)
        pool.drop()
        assert tree.get(250) == 750
        assert [key for key, _ in tree.items(low=495)] == [495, 496, 497, 498, 499]
