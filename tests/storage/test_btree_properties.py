"""Property-based tests: the B+-tree must behave exactly like a sorted dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.storage.btree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(order=6):
    pool = BufferPool(SimulatedDisk(page_size=4096), capacity_pages=32)
    return BPlusTree(pool, order=order, name="prop")


keys = st.integers(min_value=-10_000, max_value=10_000)
values = st.integers() | st.text(max_size=8) | st.none()


@settings(max_examples=60, deadline=None)
@given(entries=st.lists(st.tuples(keys, values), max_size=300))
def test_inserts_match_dict_model(entries):
    tree = make_tree()
    model = {}
    for key, value in entries:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for key, value in model.items():
        assert tree.get(key) == value


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(st.tuples(keys, values), max_size=200),
    deletions=st.lists(keys, max_size=100),
)
def test_inserts_and_deletes_match_dict_model(entries, deletions):
    tree = make_tree()
    model = {}
    for key, value in entries:
        tree.insert(key, value)
        model[key] = value
    for key in deletions:
        if key in model:
            assert tree.delete(key) == model.pop(key)
        else:
            try:
                tree.delete(key)
            except KeyNotFoundError:
                pass
            else:  # pragma: no cover - defensive
                raise AssertionError("deleting a missing key must raise")
    assert list(tree.items()) == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    entries=st.lists(st.tuples(keys, st.integers()), min_size=1, max_size=200),
    low=keys,
    high=keys,
)
def test_range_scans_match_dict_model(entries, low, high):
    if low > high:
        low, high = high, low
    tree = make_tree()
    model = {}
    for key, value in entries:
        tree.insert(key, value)
        model[key] = value
    expected = sorted((k, v) for k, v in model.items() if low <= k <= high)
    assert list(tree.items(low=low, high=high)) == expected
