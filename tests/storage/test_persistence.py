"""Durability subsystem tests: file-backed disk, WAL, checkpoint, recovery.

The contract under test has two halves:

* **fidelity** — the file-backed disk is accounting-identical and
  page-byte-identical to the memory-backed disk for any operation sequence
  (the hypothesis property at the bottom);
* **durability** — a group commit survives a crash exactly, an uncommitted
  tail vanishes exactly, and a torn WAL tail is truncated back to the last
  intact commit.
"""

from __future__ import annotations

import os
import pickle
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import category_fingerprint, disk_page_bytes
from repro.errors import PageNotFoundError, StorageError, StoreClosedError
from repro.storage.disk import SimulatedDisk
from repro.storage.environment import StorageEnvironment
from repro.storage.pager import Page
from repro.storage.persistence import (
    FileBackedDisk,
    PageBitmap,
    open_any_environment,
    open_environment,
    open_sharded_environment,
    replay,
)
from repro.storage.sharding import ShardedEnvironment


# ---------------------------------------------------------------------------
# PageBitmap
# ---------------------------------------------------------------------------


class TestPageBitmap:
    def test_set_clear_contains(self):
        bitmap = PageBitmap()
        for page_id in (0, 7, 8, 63, 200):
            bitmap.set(page_id)
        assert all(page_id in bitmap for page_id in (0, 7, 8, 63, 200))
        assert 1 not in bitmap and 199 not in bitmap
        bitmap.clear(8)
        assert 8 not in bitmap
        bitmap.clear(10_000)  # clearing past the end is a no-op
        assert bitmap.live_ids() == [0, 7, 63, 200]

    def test_round_trip(self):
        bitmap = PageBitmap()
        for page_id in range(0, 300, 7):
            bitmap.set(page_id)
        restored = PageBitmap.from_bytes(bitmap.to_bytes())
        assert restored.live_ids() == bitmap.live_ids()


# ---------------------------------------------------------------------------
# FileBackedDisk: page API + accounting fidelity
# ---------------------------------------------------------------------------


def _scripted_ops(disk):
    """A deterministic op mix covering allocate/write/read/peek/free."""
    ids = disk.allocate_many(6)
    for index, page_id in enumerate(ids):
        page = disk.read(page_id)
        page.write(bytes([index]) * (index * 40 + 1))
        disk.write(page)
    for page_id in ids:          # sequential scan
        disk.read(page_id)
    disk.read(ids[3])            # random
    disk.peek(ids[0])            # accounting-free
    disk.free(ids[2])
    extra = disk.allocate()
    page = disk.read(extra)
    page.write(b"tail")
    disk.write(page)
    return ids, extra


class TestFileBackedDisk:
    def test_matches_simulated_disk_exactly(self, tmp_path):
        memory = SimulatedDisk(page_size=256)
        filed = FileBackedDisk(str(tmp_path / "disk"), page_size=256)
        _scripted_ops(memory)
        _scripted_ops(filed)
        assert filed.stats == memory.stats
        assert filed.page_count == memory.page_count
        assert filed.used_bytes() == memory.used_bytes()
        for page_id in range(memory._next_page_id):
            assert filed.contains(page_id) == memory.contains(page_id)
            if memory.contains(page_id):
                assert filed.peek(page_id).data == memory.peek(page_id).data
        filed.close()

    def test_missing_page_raises(self, tmp_path):
        disk = FileBackedDisk(str(tmp_path / "disk"))
        with pytest.raises(PageNotFoundError):
            disk.read(0)
        page_id = disk.allocate()
        disk.free(page_id)
        with pytest.raises(PageNotFoundError):
            disk.peek(page_id)
        with pytest.raises(PageNotFoundError):
            disk.write(Page(page_id=page_id, capacity=disk.page_size))
        disk.close()

    def test_commit_checkpoint_recover(self, tmp_path):
        path = str(tmp_path / "disk")
        disk = FileBackedDisk(path, page_size=128)
        ids = disk.allocate_many(3)
        for page_id in ids:
            page = disk.read(page_id)
            page.write(f"page-{page_id}".encode())
            disk.write(page)
        disk.commit_batch({"app": None})
        disk.checkpoint({"app": None})
        # committed-but-not-checkpointed batch
        page = disk.read(ids[1])
        page.write(b"committed-v2")
        disk.write(page)
        disk.commit_batch({"app": None})
        # uncommitted tail: lost on crash
        page = disk.read(ids[0])
        page.write(b"uncommitted")
        disk.write(page)
        disk.close()

        recovered, catalog = FileBackedDisk.open(path)
        assert recovered.peek(ids[0]).data == b"page-0"
        assert recovered.peek(ids[1]).data == b"committed-v2"
        assert recovered.peek(ids[2]).data == b"page-2"
        assert recovered.page_count == 3
        assert catalog["batch"] == recovered.committed_batches
        recovered.close()

    def test_spill_keeps_reads_correct(self, tmp_path):
        """Page images spilled to the WAL file read back transparently."""
        disk = FileBackedDisk(str(tmp_path / "disk"), page_size=128,
                              wal_buffer_bytes=64)
        ids = disk.allocate_many(8)
        for page_id in ids:
            page = disk.read(page_id)
            page.write(bytes([page_id % 251]) * 100)
            disk.write(page)
        assert disk.pending_wal_pages() == 8
        for page_id in ids:
            assert disk.peek(page_id).data == bytes([page_id % 251]) * 100
        disk.commit_batch({})
        assert disk.pending_wal_pages() == 0
        assert disk.overlay_pages() == 8
        disk.close()

    def test_constructor_refuses_existing_disk(self, tmp_path):
        path = str(tmp_path / "disk")
        disk = FileBackedDisk(path)
        disk.checkpoint({})
        disk.close()
        with pytest.raises(StorageError):
            FileBackedDisk(path)

    def test_open_refuses_empty_dir(self, tmp_path):
        with pytest.raises(StorageError):
            FileBackedDisk.open(str(tmp_path / "nothing"))

    def test_closed_disk_raises(self, tmp_path):
        disk = FileBackedDisk(str(tmp_path / "disk"))
        disk.allocate()
        disk.close()
        disk.close()  # idempotent
        with pytest.raises(StoreClosedError):
            disk.allocate()


# ---------------------------------------------------------------------------
# WAL torn-tail handling
# ---------------------------------------------------------------------------


class TestWalReplay:
    def test_torn_tail_truncates_to_last_commit(self, tmp_path):
        path = str(tmp_path / "disk")
        disk = FileBackedDisk(path, page_size=128)
        page_id = disk.allocate()
        page = disk.read(page_id)
        page.write(b"first")
        disk.write(page)
        disk.commit_batch({"app": "checkpointed"})
        disk.checkpoint({"app": "checkpointed"})
        page = disk.read(page_id)
        page.write(b"second")
        disk.write(page)
        disk.commit_batch({"app": "committed"})
        wal_path = os.path.join(path, "wal.log")
        disk.close()

        # Tear the log: chop bytes off the tail, corrupting the last record.
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(size - 3)
        result = replay(wal_path)
        assert result.catalog is None  # the only commit record is torn
        recovered, catalog = FileBackedDisk.open(path)
        assert recovered.peek(page_id).data == b"first"
        assert catalog["app"] == "checkpointed"
        # the torn tail was truncated away
        assert os.path.getsize(wal_path) == 0
        recovered.close()

    def test_replay_stops_at_corrupt_crc(self, tmp_path):
        path = str(tmp_path / "disk")
        disk = FileBackedDisk(path, page_size=128)
        disk.checkpoint({})  # anchor meta.pkl, as the environment does
        page_id = disk.allocate()
        for round_no in range(2):
            page = disk.read(page_id)
            page.write(f"round-{round_no}".encode())
            disk.write(page)
            disk.commit_batch({"round": round_no})
        wal_path = os.path.join(path, "wal.log")
        disk.close()
        # Flip a byte inside the *second* batch's payload region.
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.seek(size - 10)
            byte = handle.read(1)
            handle.seek(size - 10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        recovered, catalog = FileBackedDisk.open(path)
        assert recovered.peek(page_id).data == b"round-0"
        assert catalog["round"] == 0
        recovered.close()

    # -- raw-frame edge cases ------------------------------------------------
    # A power cut can land the tear at any byte offset; these pin the three
    # boundary positions the sequential scan must each treat as "tail ends
    # here": inside a record's CRC trailer, inside the next record's header,
    # and inside a COMMIT whose WRITE prefix must then be discarded whole.

    @staticmethod
    def _write_frame(page_id: int, payload: bytes) -> bytes:
        from repro.storage.persistence.wal import _CRC, _WRITE, _WRITE_HEADER
        header = _WRITE_HEADER.pack(_WRITE, page_id, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(header))
        return header + payload + _CRC.pack(crc)

    @staticmethod
    def _commit_frame(batch_id: int, catalog: bytes) -> bytes:
        from repro.storage.persistence.wal import _COMMIT, _COMMIT_HEADER, _CRC
        header = _COMMIT_HEADER.pack(_COMMIT, batch_id, len(catalog))
        crc = zlib.crc32(catalog, zlib.crc32(header))
        return header + catalog + _CRC.pack(crc)

    def test_truncation_inside_crc_trailer_drops_the_record(self, tmp_path):
        wal_path = str(tmp_path / "wal.log")
        first = self._write_frame(0, b"alpha") + self._commit_frame(1, b"c1")
        second = self._write_frame(1, b"beta") + self._commit_frame(2, b"c2")
        with open(wal_path, "wb") as handle:
            # Cut 2 bytes into the second commit's 4-byte CRC trailer: the
            # header and catalog are fully present, only the trailer is short.
            handle.write(first + second[:-2])
        result = replay(wal_path)
        assert result.batch_id == 1
        assert result.catalog == b"c1"
        assert result.valid_bytes == len(first)
        assert list(result.pages) == [0]

    def test_valid_record_then_partial_header_ends_the_scan(self, tmp_path):
        wal_path = str(tmp_path / "wal.log")
        first = self._write_frame(0, b"alpha") + self._commit_frame(1, b"c1")
        torn_header = self._write_frame(7, b"gamma")[:5]  # header is 13 bytes
        with open(wal_path, "wb") as handle:
            handle.write(first + torn_header)
        result = replay(wal_path)
        assert result.batch_id == 1
        assert result.valid_bytes == len(first)
        # Recovery truncates the partial header away entirely.
        disk_path = str(tmp_path / "d")
        disk = FileBackedDisk(disk_path, page_size=128)
        disk.checkpoint({})
        page_id = disk.allocate()
        page = disk.read(page_id)
        page.write(b"kept")
        disk.write(page)
        disk.commit_batch({"app": "kept"})
        disk.close()
        wal_file = os.path.join(disk_path, "wal.log")
        committed_bytes = os.path.getsize(wal_file)
        with open(wal_file, "ab") as handle:
            handle.write(torn_header)
        recovered, catalog = FileBackedDisk.open(disk_path)
        assert recovered.wal.size_bytes() == committed_bytes
        assert catalog["app"] == "kept"
        assert recovered.peek(page_id).data == b"kept"
        recovered.close()

    def test_corrupted_commit_discards_its_write_prefix(self, tmp_path):
        wal_path = str(tmp_path / "wal.log")
        first = self._write_frame(0, b"alpha") + self._commit_frame(1, b"c1")
        writes = self._write_frame(1, b"beta") + self._write_frame(2, b"delta")
        commit = bytearray(self._commit_frame(2, b"c2"))
        commit[-6] ^= 0xFF  # corrupt the catalog, so the CRC check fails
        with open(wal_path, "wb") as handle:
            handle.write(first + writes + bytes(commit))
        result = replay(wal_path)
        # The batch's WRITE records were intact, but without a valid COMMIT
        # they never existed: pages 1 and 2 must not appear in the result.
        assert result.batch_id == 1
        assert result.catalog == b"c1"
        assert sorted(result.pages) == [0]
        assert result.valid_bytes == len(first)


# ---------------------------------------------------------------------------
# Environment-level durability
# ---------------------------------------------------------------------------


def _populate(env):
    kv = env.create_kvstore("t.kv")
    heap = env.create_heapfile("t.heap")
    for index in range(200):
        kv.put((f"term{index % 20:03d}", index), index * 1.5)
    handle = heap.write(b"segment" * 300)
    for index in range(0, 200, 9):
        kv.delete((f"term{index % 20:03d}", index))
    return kv, heap, handle


class TestEnvironmentDurability:
    def test_checkpoint_close_reopen(self, tmp_path):
        path = str(tmp_path / "env")
        env = StorageEnvironment(cache_pages=16, page_size=256, path=path)
        kv, heap, handle = _populate(env)
        expected = dict(kv.items())
        env.close()
        env.close()  # idempotent
        assert env.closed

        recovered = open_environment(path)
        assert recovered.recovered
        assert recovered.store_names() == ["t.heap", "t.kv"]
        assert dict(recovered.kvstore("t.kv").items()) == expected
        restored_heap = recovered.heapfile("t.heap")
        assert restored_heap.read(restored_heap.get(0)) == b"segment" * 300
        recovered.close()

    def test_crash_recovers_committed_prefix_only(self, tmp_path):
        path = str(tmp_path / "env")
        env = StorageEnvironment(cache_pages=16, page_size=256, path=path)
        kv, _heap, _handle = _populate(env)
        committed = dict(kv.items())
        batch = env.commit(app_state={"tag": "batch-1"})
        assert batch >= 1
        kv.put(("zzz", 0), "never-committed")
        env.crash()

        recovered = open_environment(path)
        assert dict(recovered.kvstore("t.kv").items()) == committed
        assert recovered.recovered_app_state == {"tag": "batch-1"}
        recovered.close()

    def test_operations_after_close_raise(self, tmp_path):
        env = StorageEnvironment(cache_pages=8, path=str(tmp_path / "env"))
        kv = env.create_kvstore("t.kv")
        env.close()
        with pytest.raises(StoreClosedError):
            env.create_kvstore("other")
        with pytest.raises(StoreClosedError):
            kv.put(1, 1)
        with pytest.raises(StoreClosedError):
            env.commit()

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "env")
        with StorageEnvironment(cache_pages=8, path=path) as env:
            env.create_kvstore("t.kv").put(1, "one")
        assert env.closed
        recovered = open_environment(path)
        assert recovered.kvstore("t.kv").get(1) == "one"
        recovered.close()

    def test_context_manager_crashes_on_exception(self, tmp_path):
        path = str(tmp_path / "env")
        env = StorageEnvironment(cache_pages=8, path=path)
        env.create_kvstore("t.kv").put(1, "committed")
        env.commit()
        with pytest.raises(RuntimeError):
            with env:
                env.kvstore("t.kv").put(2, "doomed")
                raise RuntimeError("boom")
        assert env.closed
        recovered = open_environment(path)
        assert recovered.kvstore("t.kv").get(2, default=None) is None
        assert recovered.kvstore("t.kv").get(1) == "committed"
        recovered.close()

    def test_repro_backend_dir_is_created_on_demand(self, monkeypatch, tmp_path):
        missing = tmp_path / "not" / "yet" / "there"
        monkeypatch.setenv("REPRO_BACKEND", "file")
        monkeypatch.setenv("REPRO_BACKEND_DIR", str(missing))
        env = StorageEnvironment(cache_pages=8)
        assert env.durable and str(env.path).startswith(str(missing))
        env.close()

    def test_memory_environment_close_and_commit_are_safe(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        env = StorageEnvironment(cache_pages=8)
        env.create_kvstore("t.kv").put(1, 1)
        assert env.commit() == 0
        assert env.checkpoint() == 0
        env.close()
        assert env.closed

    def test_wal_bounded_by_checkpoint(self, tmp_path):
        path = str(tmp_path / "env")
        env = StorageEnvironment(cache_pages=8, page_size=256, path=path)
        kv = env.create_kvstore("t.kv")
        for index in range(100):
            kv.put(index, bytes(50))
        env.commit()
        assert env.disk.wal.size_bytes() > 0
        env.checkpoint()
        assert env.disk.wal.size_bytes() == 0
        env.close()


# ---------------------------------------------------------------------------
# Sharded environment durability
# ---------------------------------------------------------------------------


class TestShardedDurability:
    def test_round_trip_with_registry(self, tmp_path):
        path = str(tmp_path / "sharded")
        env = ShardedEnvironment(shard_count=3, cache_pages=48,
                                 page_size=256, path=path)
        kv = env.create_kvstore("x.kv", key_shard="term")
        doc_kv = env.create_kvstore("x.doc", key_shard="doc")
        heap = env.create_heapfile("x.heap", key_shard="term")
        for index in range(120):
            kv.put((f"w{index % 15:02d}", index), index)
            doc_kv.put(index, float(index))
        handle = heap.write(b"longlist" * 100, key="w05")
        env.commit(app_state="sharded-blob")
        kv.put(("lost", 0), "lost")
        env.crash()

        recovered = open_sharded_environment(path)
        assert recovered.shard_count == 3
        assert recovered.recovered_app_state == "sharded-blob"
        rkv = recovered.kvstore("x.kv")
        assert rkv.get(("lost", 0), default=None) is None
        assert dict(rkv.items()) == {(f"w{i % 15:02d}", i): i for i in range(120)}
        assert dict(recovered.kvstore("x.doc").items()) == {
            i: float(i) for i in range(120)
        }
        rheap = recovered.heapfile("x.heap")
        assert rheap.shard_count == 3
        part = rheap.shard_heap(handle.shard)
        assert part.read(part.get(0)) == b"longlist" * 100
        # routing must be preserved exactly
        assert recovered.shard_of_term("w05") == handle.shard
        recovered.close()

    def test_torn_commit_fanout_rolls_back_to_commit_point(self, tmp_path):
        """A crash inside the commit fan-out leaves shards one batch apart;
        recovery rolls the overshooting shard back to the commit point
        (shard 0's batch) instead of mixing two batch states — the extra
        commit is still in that shard's WAL, so it is a clean prefix cut."""
        path = str(tmp_path / "torn")
        env = ShardedEnvironment(shard_count=2, cache_pages=16,
                                 page_size=256, path=path)
        kv = env.create_kvstore("x.kv", key_shard="term")
        kv.put(("a", 1), 1)
        env.commit()
        # Simulate a crash between shard 1's commit and shard 0's: commit
        # only the non-commit-point shard.
        kv.put(("b", 2), 2)
        shard_of_b = env.shard_of_term("b")
        assert shard_of_b == 1, "test assumes 'b' routes to shard 1"
        env.shards[1].commit()
        env.crash()

        recovered = open_sharded_environment(path)
        assert (recovered.shards[1].committed_batches
                == recovered.shards[0].committed_batches)
        rkv = recovered.kvstore("x.kv")
        assert rkv.get(("a", 1)) == 1
        assert rkv.get(("b", 2), default=None) is None
        recovered.close()

    def test_open_any_environment_dispatches(self, tmp_path):
        plain_path = str(tmp_path / "plain")
        sharded_path = str(tmp_path / "sharded")
        with StorageEnvironment(cache_pages=8, path=plain_path) as env:
            env.create_kvstore("a").put(1, 1)
        with ShardedEnvironment(shard_count=2, cache_pages=8,
                                path=sharded_path) as env:
            env.create_kvstore("b").put(("t", 1), 1)
        plain = open_any_environment(plain_path)
        sharded = open_any_environment(sharded_path)
        assert isinstance(plain, StorageEnvironment)
        assert isinstance(sharded, ShardedEnvironment)
        plain.close()
        sharded.close()
        with pytest.raises(StorageError):
            open_any_environment(str(tmp_path / "missing"))


# ---------------------------------------------------------------------------
# Hypothesis: backend fidelity over arbitrary operation sequences
# ---------------------------------------------------------------------------


_KEYS = st.integers(min_value=0, max_value=30)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("delete"), _KEYS, st.just(0)),
        st.tuples(st.just("get"), _KEYS, st.just(0)),
        st.tuples(st.just("scan"), st.just(0), st.just(0)),
        st.tuples(st.just("heap"), st.just(0),
                  st.integers(min_value=0, max_value=2000)),
        st.tuples(st.just("drop"), st.just(0), st.just(0)),
        st.tuples(st.just("flush"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def _run_ops(env, ops):
    kv = env.create_kvstore("p.kv")
    heap = env.create_heapfile("p.heap")
    for op, key, value in ops:
        if op == "put":
            kv.put((f"k{key:02d}", key), value)
        elif op == "delete":
            kv.delete_if_present((f"k{key:02d}", key))
        elif op == "get":
            kv.get((f"k{key:02d}", key), default=None)
        elif op == "scan":
            list(kv.items())
        elif op == "heap":
            handle = heap.write(b"h" * value)
            heap.read(handle)
        elif op == "drop":
            env.drop_cache()
        elif op == "flush":
            env.pool.flush()


class TestBackendFidelityProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=_OPS)
    def test_memory_and_file_fingerprints_identical(self, ops, tmp_path_factory):
        """The satellite round-trip property: same ops, same counters, same bytes."""
        memory = StorageEnvironment(cache_pages=8, page_size=256)
        filed = StorageEnvironment(
            cache_pages=8, page_size=256,
            path=str(tmp_path_factory.mktemp("fidelity") / "env"),
        )
        _run_ops(memory, ops)
        _run_ops(filed, ops)
        assert category_fingerprint(filed) == category_fingerprint(memory)
        assert disk_page_bytes(filed) == disk_page_bytes(memory)
        # And the file backend must reproduce those bytes after recovery.
        filed.commit()
        path = filed.path
        filed.crash()
        recovered = open_environment(path)
        assert dict(recovered.kvstore("p.kv").items()) == dict(
            memory.kvstore("p.kv").items()
        )
        recovered.close()
        filed_dir = path
        del filed_dir

    @settings(max_examples=15, deadline=None)
    @given(ops=_OPS, boundary=st.integers(min_value=0, max_value=59))
    def test_commit_boundary_recovery(self, ops, boundary, tmp_path_factory):
        """Committing after ``boundary`` ops and crashing recovers exactly them."""
        boundary = min(boundary, len(ops))
        reference = StorageEnvironment(cache_pages=8, page_size=256)
        _run_ops(reference, ops[:boundary])

        durable = StorageEnvironment(
            cache_pages=8, page_size=256,
            path=str(tmp_path_factory.mktemp("boundary") / "env"),
        )
        kv = durable.create_kvstore("p.kv")
        heap = durable.create_heapfile("p.heap")
        del kv, heap
        _replay_split(durable, ops, boundary)
        path = durable.path
        durable.crash()
        recovered = open_environment(path)
        assert dict(recovered.kvstore("p.kv").items()) == dict(
            reference.kvstore("p.kv").items()
        )
        recovered.close()


def _replay_split(env, ops, boundary):
    """Apply ``ops`` with a commit after the first ``boundary`` of them."""
    kv = env.kvstore("p.kv")
    heap = env.heapfile("p.heap")
    for position, (op, key, value) in enumerate(ops):
        if position == boundary:
            env.commit()
        if op == "put":
            kv.put((f"k{key:02d}", key), value)
        elif op == "delete":
            kv.delete_if_present((f"k{key:02d}", key))
        elif op == "get":
            kv.get((f"k{key:02d}", key), default=None)
        elif op == "scan":
            list(kv.items())
        elif op == "heap":
            handle = heap.write(b"h" * value)
            heap.read(handle)
        elif op == "drop":
            env.drop_cache()
        elif op == "flush":
            env.pool.flush()
    if boundary >= len(ops):
        env.commit()


# ---------------------------------------------------------------------------
# Catalog serialisation sanity
# ---------------------------------------------------------------------------


def test_commit_record_catalog_is_picklable_and_versioned(tmp_path):
    path = str(tmp_path / "env")
    env = StorageEnvironment(cache_pages=8, page_size=256, path=path)
    env.create_kvstore("t.kv").put(1, "x")
    env.commit(app_state={"n": 1})
    catalog = env._commit_payload(env._app_state)
    blob = pickle.dumps(catalog)
    assert pickle.loads(blob)["app"] == {"n": 1}
    assert "t.kv" in catalog["stores"]["kv"]
    env.close()


# ---------------------------------------------------------------------------
# Blocked posting payloads: bitrot, torn tails, checkpoint recovery
# ---------------------------------------------------------------------------


class TestBlockedPayloadIntegrity:
    """Silent corruption below the page layer must surface as ChecksumError.

    The blocked posting codec carries a CRC per directory and per block; a
    flipped byte or a torn (zero-filled) tail in a long-list page must raise
    a typed error during the scan — on the memory and the file backend alike
    — and intact blocked payloads must survive checkpoint/recovery bytewise.
    """

    def _build_index(self, env):
        from repro.core.indexes.registry import create_index
        from repro.text.documents import DocumentStore
        import random as random_module

        rng = random_module.Random(7)
        index = create_index("id", env, DocumentStore(), blocked_postings=True)
        # Widely spaced doc ids keep the deltas multi-byte, so the blocked
        # list spans several 256-byte pages and page-level corruption lands
        # inside block payloads.
        for doc_id in range(600):
            index.add_document(doc_id * 9973, rng.uniform(1.0, 500.0),
                               terms=["alpha", f"x{doc_id % 7}"])
        index.finalize()
        return index

    def _corrupt_page(self, env, page_id, tear=False):
        page = env.disk.peek(page_id)
        data = bytearray(page.data)
        if tear:
            keep = len(data) // 2
            data[keep:] = bytes(len(data) - keep)
        else:
            data[len(data) // 2] ^= 0x41
        page.write(bytes(data))
        env.disk.write(page)

    def _env(self, tmp_path, backend):
        path = str(tmp_path / "env") if backend == "file" else None
        return StorageEnvironment(cache_pages=16, page_size=256, path=path)

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_bitrot_surfaces_as_checksum_error(self, backend, tmp_path):
        from repro.errors import ChecksumError

        env = self._env(tmp_path, backend)
        index = self._build_index(env)
        handle = index._segments["alpha"]
        assert len(handle.page_ids) > 1  # the list must span pages
        index.drop_long_list_cache()  # flush, then force reads from disk
        self._corrupt_page(env, handle.page_ids[-1])
        with pytest.raises(ChecksumError):
            index.query(["alpha"], k=300)

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_torn_tail_surfaces_as_checksum_error(self, backend, tmp_path):
        from repro.errors import ChecksumError

        env = self._env(tmp_path, backend)
        index = self._build_index(env)
        handle = index._segments["alpha"]
        index.drop_long_list_cache()
        self._corrupt_page(env, handle.page_ids[-1], tear=True)
        with pytest.raises(ChecksumError):
            index.query(["alpha"], k=300)

    def test_blocked_payloads_survive_checkpoint_recovery(self, tmp_path):
        from repro.core.posting import decode_blocked_id_postings

        path = str(tmp_path / "env")
        env = StorageEnvironment(cache_pages=16, page_size=256, path=path)
        index = self._build_index(env)
        handle = index._segments["alpha"]
        heap_name = index._long_lists.name
        original = index._long_lists.read(handle)
        expected = [(p.doc_id, p.term_score)
                    for p in decode_blocked_id_postings(original)]
        env.close()

        recovered = open_environment(path)
        heap = recovered.heapfile(heap_name)
        restored = heap.read(heap.get(handle.segment_id))
        assert restored == original
        assert [(p.doc_id, p.term_score)
                for p in decode_blocked_id_postings(restored)] == expected
        recovered.close()
