"""Tests for the workload generators (Zipf samplers, corpus, updates, queries, archive)."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.core.text_index import SVRTextIndex
from repro.relational.database import Database
from repro.workloads.archive import ArchiveConfig, InternetArchiveDataset
from repro.workloads.multiclient import MultiClientConfig, MultiClientDriver
from repro.workloads.queries import KeywordQuery, QueryWorkload, QueryWorkloadConfig
from repro.workloads.synthetic import SyntheticCorpusConfig, generate_corpus, term_name
from repro.workloads.updates import (
    ScoreUpdate,
    UpdateWorkload,
    UpdateWorkloadConfig,
    apply_updates,
)
from repro.workloads.zipf import ZipfSampler, zipf_scores


class TestZipf:
    def test_sampler_is_skewed_towards_low_ranks(self):
        sampler = ZipfSampler(100, 1.0, random.Random(0))
        ranks = sampler.sample_ranks(5000)
        counts = Counter(ranks)
        assert counts[1] > counts[50] >= 0
        assert min(ranks) >= 1 and max(ranks) <= 100

    def test_zero_exponent_is_roughly_uniform(self):
        sampler = ZipfSampler(10, 0.0, random.Random(0))
        counts = Counter(sampler.sample_ranks(10000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, 0.75)
        assert sum(sampler.probability(rank) for rank in range(1, 51)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -1.0)
        with pytest.raises(WorkloadError):
            zipf_scores(-1, 100.0, 0.75)

    def test_zipf_scores_range_and_determinism(self):
        scores_a = zipf_scores(200, 100000.0, 0.75, random.Random(1))
        scores_b = zipf_scores(200, 100000.0, 0.75, random.Random(1))
        assert scores_a == scores_b
        assert all(0 <= score <= 100000.0 for score in scores_a)
        assert max(scores_a) > 10 * min(scores_a)   # heavy skew


class TestSyntheticCorpus:
    def test_generation_is_deterministic(self):
        config = SyntheticCorpusConfig.tiny()
        a = generate_corpus(config)
        b = generate_corpus(config)
        assert [d.terms for d in a.documents] == [d.terms for d in b.documents]
        assert a.scores() == b.scores()

    def test_corpus_respects_config(self):
        config = SyntheticCorpusConfig(
            num_docs=50, terms_per_doc=20, num_distinct_terms=100,
            structured_column_bytes=32, seed=1,
        )
        corpus = generate_corpus(config)
        assert len(corpus) == 50
        assert all(len(doc.terms) == 20 for doc in corpus.documents)
        assert all(len(doc.structured_value) == 32 for doc in corpus.documents)
        used_terms = {term for doc in corpus.documents for term in doc.terms}
        assert used_terms <= {term_name(rank) for rank in range(1, 101)}

    def test_frequent_terms_ordered_by_frequency(self):
        corpus = generate_corpus(SyntheticCorpusConfig.tiny())
        top = corpus.frequent_terms(10)
        counts = Counter(term for doc in corpus.documents for term in doc.terms)
        frequencies = [counts[term] for term in top]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_scaled_and_paper_scale_configs(self):
        config = SyntheticCorpusConfig(num_docs=100)
        assert config.scaled(0.5).num_docs == 50
        with pytest.raises(WorkloadError):
            config.scaled(0)
        paper = SyntheticCorpusConfig.paper_scale()
        assert paper.num_docs == 100000 and paper.terms_per_doc == 2000

    def test_document_text_round_trips_terms(self):
        corpus = generate_corpus(SyntheticCorpusConfig.tiny())
        document = corpus.documents[0]
        assert tuple(document.text.split()) == document.terms


class TestUpdateWorkload:
    def make(self, **overrides):
        corpus = generate_corpus(SyntheticCorpusConfig.tiny())
        overrides.setdefault("num_updates", 500)
        config = UpdateWorkloadConfig(**overrides)
        return UpdateWorkload(config, corpus.scores()), corpus

    def test_updates_are_deterministic_and_bounded(self):
        workload, _corpus = self.make(mean_step=100.0, seed=3)
        first = workload.generate_list()
        workload_again, _ = self.make(mean_step=100.0, seed=3)
        assert [ (u.doc_id, u.delta) for u in first ] == [
            (u.doc_id, u.delta) for u in workload_again.generate_list()
        ]
        assert all(abs(update.delta) <= 200.0 for update in first)

    def test_focus_set_updates_follow_direction(self):
        workload, _corpus = self.make(
            focus_set_fraction=0.1, focus_update_fraction=1.0, focus_direction="increase"
        )
        focus = set(workload.focus_set)
        assert focus
        updates = workload.generate_list()
        assert all(update.doc_id in focus for update in updates)
        assert all(update.delta >= 0 for update in updates)

    def test_high_score_documents_updated_more_often(self):
        workload, corpus = self.make(focus_set_fraction=0.0, target_zipf=1.0,
                                     num_updates=2000)
        counts = Counter(update.doc_id for update in workload.generate())
        by_score = sorted(corpus.scores().items(), key=lambda item: -item[1])
        top_docs = {doc for doc, _ in by_score[:20]}
        bottom_docs = {doc for doc, _ in by_score[-20:]}
        top_updates = sum(counts.get(doc, 0) for doc in top_docs)
        bottom_updates = sum(counts.get(doc, 0) for doc in bottom_docs)
        assert top_updates > bottom_updates

    def test_apply_updates_never_goes_negative(self):
        workload, corpus = self.make(mean_step=100000.0)
        scores = apply_updates(workload.generate(), dict(corpus.scores()))
        assert all(score >= 0 for score in scores.values())

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            UpdateWorkloadConfig(mean_step=0)
        with pytest.raises(WorkloadError):
            UpdateWorkloadConfig(focus_set_fraction=2.0)
        with pytest.raises(WorkloadError):
            UpdateWorkloadConfig(focus_direction="sideways")
        with pytest.raises(WorkloadError):
            UpdateWorkload(UpdateWorkloadConfig(), {})


class TestQueryWorkload:
    def test_selectivity_controls_the_keyword_pool(self):
        corpus = generate_corpus(SyntheticCorpusConfig.tiny())
        frequent = corpus.frequent_terms(200)
        unselective = QueryWorkload(
            QueryWorkloadConfig(selectivity="unselective", num_queries=10), frequent,
            vocabulary_size=10000,
        )
        selective = QueryWorkload(
            QueryWorkloadConfig(selectivity="selective", num_queries=10), frequent,
            vocabulary_size=10000,
        )
        assert len(unselective.pool) < len(selective.pool)

    def test_queries_use_pool_terms_and_config(self):
        corpus = generate_corpus(SyntheticCorpusConfig.tiny())
        workload = QueryWorkload(
            QueryWorkloadConfig(num_queries=7, terms_per_query=3, k=5, conjunctive=False),
            corpus.frequent_terms(50),
        )
        queries = workload.generate()
        assert len(queries) == 7
        for query in queries:
            assert len(query.keywords) == 3
            assert set(query.keywords) <= set(workload.pool)
            assert query.k == 5 and not query.conjunctive

    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryWorkloadConfig(selectivity="bogus")
        with pytest.raises(WorkloadError):
            QueryWorkload(QueryWorkloadConfig(), [])
        with pytest.raises(WorkloadError):
            QueryWorkload(QueryWorkloadConfig(terms_per_query=5), ["only-term"])


class TestArchiveDataset:
    def test_populate_creates_consistent_tables(self):
        database = Database()
        dataset = InternetArchiveDataset(ArchiveConfig(num_movies=25, seed=2))
        dataset.populate(database)
        movies = list(database.table("movies").scan())
        assert len(movies) == 25
        stats = {row["movie_id"] for row in database.table("statistics").scan()}
        assert stats == {row["movie_id"] for row in movies}
        for row in database.table("reviews").scan():
            assert 1.0 <= row["rating"] <= 5.0
            assert row["movie_id"] in stats

    def test_score_spec_is_positive_and_matches_formula(self):
        database = Database()
        dataset = InternetArchiveDataset(ArchiveConfig(num_movies=10, seed=2))
        dataset.populate(database)
        spec = dataset.build_score_spec(database)
        for movie_id in range(1, 11):
            components = spec.component_scores(movie_id)
            expected = (
                components["S1"] * 100 + components["S2"] * 0.5 + components["S3"]
            )
            assert spec.svr_score(movie_id) == pytest.approx(expected)
            assert spec.svr_score(movie_id) >= 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArchiveConfig(num_movies=0)


class TestMultiClientDriver:
    def _traffic(self, seed=3, num_queries=12, num_updates=120):
        rng = random.Random(seed)
        vocab = [f"w{i:03d}" for i in range(14)]
        queries = [
            KeywordQuery(
                keywords=tuple(rng.sample(vocab, 2)),
                k=rng.choice([3, 5]),
                conjunctive=rng.random() < 0.5,
            )
            for _ in range(num_queries)
        ]
        updates = [
            ScoreUpdate(doc_id=rng.randrange(1, 30), delta=rng.uniform(-80, 80))
            for _ in range(num_updates)
        ]
        return vocab, queries, updates

    def _index(self, vocab, shards, seed=21):
        index = SVRTextIndex(method="chunk", shards=shards, cache_pages=256,
                             page_size=512, chunk_ratio=2.0, min_chunk_size=2)
        rng = random.Random(seed)
        for doc_id in range(1, 31):
            terms = [rng.choice(vocab) for _ in range(8)]
            index.add_document_terms(doc_id, terms, round(rng.uniform(0, 1000), 2))
        index.finalize()
        return index

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            MultiClientConfig(num_clients=0)
        with pytest.raises(WorkloadError):
            MultiClientConfig(query_fraction=1.5)
        with pytest.raises(WorkloadError):
            MultiClientConfig(batch_window=0)

    def test_schedules_are_deterministic_and_cover_all_work(self):
        _vocab, queries, updates = self._traffic()
        config = MultiClientConfig(num_clients=3, batch_window=16, seed=5)
        first = MultiClientDriver(config, queries, updates).client_schedules()
        second = MultiClientDriver(config, queries, updates).client_schedules()
        assert first == second
        dealt_queries = [
            op for ops in first for kind, op in ops if kind == "query"
        ]
        dealt_updates = [
            update for ops in first for kind, op in ops if kind == "updates"
            for update in op
        ]
        assert dealt_queries
        assert Counter(map(repr, dealt_queries)) == Counter(map(repr, queries))
        assert Counter(map(repr, dealt_updates)) == Counter(map(repr, updates))

    def test_replay_counts_and_shard_report(self):
        vocab, queries, updates = self._traffic()
        index = self._index(vocab, shards=3)
        config = MultiClientConfig(num_clients=4, batch_window=16, seed=7)
        result = MultiClientDriver(config, queries, updates).run(index)
        assert result.queries_run == len(queries)
        assert result.updates_applied == len(updates)
        assert len(result.clients) == 4
        assert sum(client.queries for client in result.clients) == len(queries)
        assert result.shard_load is not None
        assert result.shard_load.shard_count == 3
        assert result.operations == result.queries_run + result.update_windows
        row = result.as_row()
        assert row["shards"] == 3 and row["queries"] == len(queries)

    def test_final_state_is_shard_invariant_under_mixed_traffic(self):
        """The same interleaved traffic leaves 1-shard and 4-shard engines in
        identical logical state — the sharded engine's acceptance property."""
        vocab, queries, updates = self._traffic()
        config = MultiClientConfig(num_clients=3, batch_window=8, seed=11)
        indexes = [self._index(vocab, shards=shards) for shards in (1, 4)]
        for index in indexes:
            MultiClientDriver(config, queries, updates).run(index)
        contents = [
            {
                name: list(index.env.kvstore(name).items())
                for name in index.env.kvstore_names()
            }
            for index in indexes
        ]
        assert contents[0] == contents[1]
        for keywords in (["w001", "w002"], ["w004"], ["w010", "w011"]):
            answers = [
                [
                    (r.doc_id, r.score)
                    for r in index.search(keywords, k=5, conjunctive=False).results
                ]
                for index in indexes
            ]
            assert answers[0] == answers[1]


class TestServiceLoadDriver:
    def _traffic(self, seed=3, num_queries=12, num_updates=120):
        rng = random.Random(seed)
        vocab = [f"w{i:03d}" for i in range(14)]
        queries = [
            KeywordQuery(
                keywords=tuple(rng.sample(vocab, 2)),
                k=rng.choice([3, 5]),
                conjunctive=rng.random() < 0.5,
            )
            for _ in range(num_queries)
        ]
        updates = [
            ScoreUpdate(doc_id=rng.randrange(1, 30), delta=rng.uniform(-80, 80))
            for _ in range(num_updates)
        ]
        return vocab, queries, updates

    def _index(self, vocab, shards=4, threads=4, path=None, seed=21):
        index = SVRTextIndex(method="chunk", shards=shards, threads=threads,
                             cache_pages=256, page_size=512, chunk_ratio=2.0,
                             min_chunk_size=2, path=path)
        rng = random.Random(seed)
        for doc_id in range(1, 31):
            terms = [rng.choice(vocab) for _ in range(8)]
            index.add_document_terms(doc_id, terms, round(rng.uniform(0, 1000), 2))
        index.finalize()
        return index

    def test_percentile(self):
        from repro.workloads.service import percentile

        assert percentile([], 0.5) == 0.0
        assert percentile([5.0], 0.99) == 5.0
        values = list(map(float, range(1, 101)))
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.5) == pytest.approx(50.0, abs=1.0)
        with pytest.raises(WorkloadError):
            percentile(values, 1.5)

    def test_schedules_match_multiclient_driver(self):
        """Closed-loop concurrent replay runs the exact round-robin schedules."""
        from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver

        _vocab, queries, updates = self._traffic()
        service = ServiceLoadDriver(
            ServiceLoadConfig(num_clients=3, query_fraction=0.5,
                              batch_window=16, seed=5),
            queries, updates,
        )
        round_robin = MultiClientDriver(
            MultiClientConfig(num_clients=3, query_fraction=0.5,
                              batch_window=16, seed=5),
            queries, updates,
        )
        assert service.client_schedules() == round_robin.client_schedules()

    def test_concurrent_run_covers_all_work_and_profiles_latency(self):
        from repro.bench.metrics import OperationMetrics
        from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver

        vocab, queries, updates = self._traffic()
        index = self._index(vocab)
        result = ServiceLoadDriver(
            ServiceLoadConfig(num_clients=4, query_fraction=0.5,
                              batch_window=16, seed=7),
            queries, updates,
        ).run(index)
        assert result.queries_run == len(queries)
        assert sum(client.queries for client in result.clients) == len(queries)
        assert len(result.query_latencies_ms) == len(queries)
        assert result.update_windows == len(result.window_latencies_ms)
        assert result.wall_seconds > 0
        assert result.throughput_ops_s > 0
        assert result.shard_load is not None
        assert result.shard_load.shard_count == 4
        metrics = OperationMetrics(label="service")
        result.record_into(metrics)
        for key in ("p50_query_ms", "p95_query_ms", "p99_query_ms",
                    "throughput_ops_s", "combined_windows"):
            assert key in metrics.extra
        row = result.as_row()
        assert row["clients"] == 4 and row["queries"] == len(queries)
        index.close()

    def test_background_checkpoint_cadence_under_load(self, tmp_path):
        """Durability under load: the checkpointer runs while clients hammer,
        and a crash afterwards recovers to the last checkpointed state."""
        from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver

        vocab, queries, updates = self._traffic(num_updates=400)
        index = self._index(vocab, path=str(tmp_path / "svc"))
        result = ServiceLoadDriver(
            ServiceLoadConfig(num_clients=4, query_fraction=0.3,
                              batch_window=8, seed=9,
                              checkpoint_interval_s=0.002),
            queries, updates,
        ).run(index)
        assert result.checkpoints >= 1
        reference = [
            (r.doc_id, r.score)
            for r in index.search([vocab[1], vocab[2]], k=5,
                                  conjunctive=False).results
        ]
        index.checkpoint()
        index.crash()
        reopened = SVRTextIndex.open(str(tmp_path / "svc"))
        recovered = [
            (r.doc_id, r.score)
            for r in reopened.search([vocab[1], vocab[2]], k=5,
                                     conjunctive=False).results
        ]
        assert recovered == reference
        reopened.close()

    def test_config_validation(self):
        from repro.workloads.service import ServiceLoadConfig

        with pytest.raises(WorkloadError):
            ServiceLoadConfig(checkpoint_interval_s=0.0)
        with pytest.raises(WorkloadError):
            ServiceLoadConfig(num_clients=0).scheduling()
