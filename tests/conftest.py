"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.environment import StorageEnvironment

#: Options that make the chunked methods behave sensibly on tiny corpora.
SMALL_CHUNK_OPTIONS = {"chunk_ratio": 3.0, "min_chunk_size": 2}

#: All index methods with the options the tests use for each.
METHOD_OPTIONS: dict[str, dict] = {
    "id": {},
    "score": {},
    "score_threshold": {"threshold_ratio": 2.0},
    "chunk": dict(SMALL_CHUNK_OPTIONS),
    "id_termscore": {},
    "chunk_termscore": {**SMALL_CHUNK_OPTIONS, "fancy_size": 5},
}

#: Methods whose ranking uses SVR scores only (identical results expected).
SVR_ONLY_METHODS = ("id", "score", "score_threshold", "chunk")

#: Methods whose ranking combines SVR and term scores.
TERMSCORE_METHODS = ("id_termscore", "chunk_termscore")

#: Deterministic seeds for the randomized update storms of the batch
#: equivalence harness (hypothesis-style explicit examples: each seed drives
#: one reproducible storm through every index method).
UPDATE_STORM_SEEDS = (11, 23, 57, 2026)


@pytest.fixture
def env() -> StorageEnvironment:
    """A fresh storage environment with a modest cache."""
    return StorageEnvironment(cache_pages=256)

@pytest.fixture
def tiny_pool() -> BufferPool:
    """A buffer pool small enough to force evictions."""
    return BufferPool(SimulatedDisk(), capacity_pages=4)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for test data."""
    return random.Random(1234)


def make_corpus(rng: random.Random, num_docs: int = 40, vocabulary: int = 25,
                terms_per_doc: int = 12, max_score: float = 1000.0):
    """A small random corpus: list of (doc_id, terms, score)."""
    vocab = [f"w{i:03d}" for i in range(vocabulary)]
    corpus = []
    for doc_id in range(1, num_docs + 1):
        terms = [rng.choice(vocab) for _ in range(terms_per_doc)]
        score = round(rng.uniform(0.0, max_score), 2)
        corpus.append((doc_id, terms, score))
    return corpus


@pytest.fixture
def small_corpus(rng: random.Random):
    """A deterministic small corpus shared by the index tests."""
    return make_corpus(rng)
