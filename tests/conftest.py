"""Shared fixtures for the test suite.

Setting ``REPRO_BACKEND=file`` reruns the whole suite against the durable
file-backed storage engine: every ``StorageEnvironment`` created without an
explicit path lands on a fresh ``FileBackedDisk`` directory (under pytest's
tmp root, via the session fixture below).  Accounting is backend-independent,
so the suite must pass unchanged — that equivalence is itself part of the
durability contract and is what the CI file-backend leg checks.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.environment import StorageEnvironment


@pytest.fixture(scope="session", autouse=True)
def _file_backend_dir(tmp_path_factory) -> None:
    """Route REPRO_BACKEND=file environments under pytest's tmp root."""
    if os.environ.get("REPRO_BACKEND", "").lower() == "file":
        if not os.environ.get("REPRO_BACKEND_DIR"):
            os.environ["REPRO_BACKEND_DIR"] = str(
                tmp_path_factory.mktemp("repro-file-backend")
            )

#: Options that make the chunked methods behave sensibly on tiny corpora.
SMALL_CHUNK_OPTIONS = {"chunk_ratio": 3.0, "min_chunk_size": 2}

#: All index methods with the options the tests use for each.
METHOD_OPTIONS: dict[str, dict] = {
    "id": {},
    "score": {},
    "score_threshold": {"threshold_ratio": 2.0},
    "chunk": dict(SMALL_CHUNK_OPTIONS),
    "id_termscore": {},
    "chunk_termscore": {**SMALL_CHUNK_OPTIONS, "fancy_size": 5},
}

#: Methods whose ranking uses SVR scores only (identical results expected).
SVR_ONLY_METHODS = ("id", "score", "score_threshold", "chunk")

#: Methods whose ranking combines SVR and term scores.
TERMSCORE_METHODS = ("id_termscore", "chunk_termscore")

#: Deterministic seeds for the randomized update storms of the batch
#: equivalence harness (hypothesis-style explicit examples: each seed drives
#: one reproducible storm through every index method).
UPDATE_STORM_SEEDS = (11, 23, 57, 2026)


@pytest.fixture
def env():
    """A fresh storage environment with a modest cache (closed at teardown).

    Closing releases the file handles deterministically when the suite runs
    against the file backend; on the memory backend it is a cheap no-op
    beyond marking the stores closed.
    """
    environment = StorageEnvironment(cache_pages=256)
    yield environment
    environment.close()

@pytest.fixture
def tiny_pool() -> BufferPool:
    """A buffer pool small enough to force evictions."""
    return BufferPool(SimulatedDisk(), capacity_pages=4)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for test data."""
    return random.Random(1234)


def make_corpus(rng: random.Random, num_docs: int = 40, vocabulary: int = 25,
                terms_per_doc: int = 12, max_score: float = 1000.0):
    """A small random corpus: list of (doc_id, terms, score)."""
    vocab = [f"w{i:03d}" for i in range(vocabulary)]
    corpus = []
    for doc_id in range(1, num_docs + 1):
        terms = [rng.choice(vocab) for _ in range(terms_per_doc)]
        score = round(rng.uniform(0.0, max_score), 2)
        corpus.append((doc_id, terms, score))
    return corpus


@pytest.fixture
def small_corpus(rng: random.Random):
    """A deterministic small corpus shared by the index tests."""
    return make_corpus(rng)
