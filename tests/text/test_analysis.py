"""Tests for tokenisation and the analysis pipeline."""

import pytest

from repro.errors import TokenizationError
from repro.text.analyzer import DEFAULT_STOPWORDS, Analyzer
from repro.text.tokenizer import Tokenizer


class TestTokenizer:
    def test_splits_on_non_alphanumerics(self):
        tokens = Tokenizer().tokenize("Hello, world!  It's 2005;ICDE")
        assert tokens == ["Hello", "world", "It's", "2005", "ICDE"]

    def test_length_filters(self):
        tokenizer = Tokenizer(min_length=3, max_length=5)
        assert tokenizer.tokenize("a ab abc abcd abcdef") == ["abc", "abcd"]

    def test_custom_pattern(self):
        tokenizer = Tokenizer(pattern=r"[a-z]+")
        assert tokenizer.tokenize("abc123def") == ["abc", "def"]

    def test_invalid_configuration(self):
        with pytest.raises(TokenizationError):
            Tokenizer(min_length=0)
        with pytest.raises(TokenizationError):
            Tokenizer(min_length=5, max_length=2)

    def test_non_string_input_rejected(self):
        with pytest.raises(TokenizationError):
            Tokenizer().tokenize(123)

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []


class TestAnalyzer:
    def test_lowercases_by_default(self):
        assert Analyzer().analyze("Golden GATE") == ["golden", "gate"]

    def test_lowercasing_can_be_disabled(self):
        assert Analyzer(lowercase=False).analyze("Golden GATE") == ["Golden", "GATE"]

    def test_english_stopwords_removed(self):
        analyzer = Analyzer.english()
        terms = analyzer.analyze("The bridge and the fog")
        assert terms == ["bridge", "fog"]
        assert "the" in DEFAULT_STOPWORDS

    def test_duplicates_preserved_for_term_frequencies(self):
        assert Analyzer().analyze("gate gate gate") == ["gate", "gate", "gate"]

    def test_normalize_query_terms_deduplicates_and_filters(self):
        analyzer = Analyzer.english()
        keywords = analyzer.normalize_query_terms(["Golden", "golden gate", "the", "!!"])
        assert keywords == ["golden", "gate"]

    def test_query_and_document_analysis_are_consistent(self):
        analyzer = Analyzer()
        document_terms = set(analyzer.analyze("Golden Gate bridge"))
        query_terms = analyzer.normalize_query_terms(["GOLDEN", "Bridge"])
        assert set(query_terms) <= document_terms
