"""Tests for the forward index, term dictionary and term scoring."""

import math

import pytest

from repro.errors import DocumentNotFoundError, TextError
from repro.text.dictionary import TermDictionary
from repro.text.documents import Document, DocumentStore
from repro.text.termscore import TermScorer


class TestDocument:
    def test_from_terms_counts_frequencies(self):
        document = Document.from_terms(1, ["a", "b", "a", "c", "a"])
        assert document.term_frequencies == {"a": 3, "b": 1, "c": 1}
        assert document.length == 5
        assert document.distinct_terms == {"a", "b", "c"}
        assert document.term_frequency("a") == 3
        assert document.term_frequency("zzz") == 0


class TestDocumentStore:
    def test_add_get_remove(self):
        store = DocumentStore()
        store.add_terms(1, ["x", "y"])
        assert store.get(1).length == 2
        assert 1 in store and len(store) == 1
        removed = store.remove(1)
        assert removed.doc_id == 1
        with pytest.raises(DocumentNotFoundError):
            store.get(1)

    def test_duplicate_add_rejected(self):
        store = DocumentStore()
        store.add_terms(1, ["x"])
        with pytest.raises(TextError):
            store.add_terms(1, ["y"])

    def test_replace_returns_old_version(self):
        store = DocumentStore()
        store.add_terms(1, ["old"])
        old = store.replace(Document.from_terms(1, ["new", "terms"]))
        assert old.distinct_terms == {"old"}
        assert store.get(1).distinct_terms == {"new", "terms"}
        with pytest.raises(DocumentNotFoundError):
            store.replace(Document.from_terms(9, ["x"]))

    def test_average_length(self):
        store = DocumentStore()
        assert store.average_length() == 0.0
        store.add_terms(1, ["a"] * 4)
        store.add_terms(2, ["b"] * 2)
        assert store.average_length() == 3.0


class TestTermDictionary:
    def test_document_frequencies(self):
        dictionary = TermDictionary()
        dictionary.add_document_terms({"a", "b"})
        dictionary.add_document_terms({"a", "c"})
        assert dictionary.document_frequency("a") == 2
        assert dictionary.document_frequency("b") == 1
        assert dictionary.document_frequency("zzz") == 0
        assert len(dictionary) == 3
        assert set(dictionary.live_terms()) == {"a", "b", "c"}

    def test_remove_and_update(self):
        dictionary = TermDictionary()
        dictionary.add_document_terms({"a", "b"})
        dictionary.update_document_terms({"a", "b"}, {"b", "c"})
        assert dictionary.document_frequency("a") == 0
        assert dictionary.document_frequency("c") == 1
        with pytest.raises(TextError):
            dictionary.remove_document_terms({"never-seen"})

    def test_term_ids_are_stable(self):
        dictionary = TermDictionary()
        dictionary.add_document_terms({"first"})
        first_id = dictionary.term_id("first")
        dictionary.add_document_terms({"second"})
        assert dictionary.term_id("first") == first_id
        with pytest.raises(TextError):
            dictionary.term_id("missing")


class TestTermScorer:
    @pytest.fixture
    def scorer(self):
        documents = DocumentStore()
        dictionary = TermDictionary()
        corpus = {
            1: ["gate"] * 5 + ["bridge"] * 5,
            2: ["gate", "harbor", "ferry", "fog"],
            3: ["harbor", "ferry"],
        }
        for doc_id, terms in corpus.items():
            documents.add_terms(doc_id, terms)
            dictionary.add_document_terms(documents.get(doc_id).distinct_terms)
        return TermScorer(documents, dictionary)

    def test_normalized_tf(self, scorer):
        assert scorer.term_score("gate", 1) == pytest.approx(0.5)
        assert scorer.term_score("gate", 2) == pytest.approx(0.25)
        assert scorer.term_score("gate", 3) == 0.0
        assert scorer.term_score("gate", 99) == 0.0

    def test_idf_prefers_rare_terms(self, scorer):
        assert scorer.idf("fog") > scorer.idf("gate") > 0.0
        assert scorer.idf("fog") == pytest.approx(math.log(1 + 3 / 1))

    def test_query_tfidf_ranks_relevant_documents_higher(self, scorer):
        assert scorer.query_tfidf(["gate", "bridge"], 1) > scorer.query_tfidf(
            ["gate", "bridge"], 2
        )
        assert scorer.query_tfidf(["gate"], 3) == 0.0

    def test_combined_scoring_function_is_monotone(self, scorer):
        term_scores = scorer.query_term_scores(["gate"], 1)
        low = TermScorer.combine(100.0, term_scores, term_weight=1.0)
        high = TermScorer.combine(200.0, term_scores, term_weight=1.0)
        assert high > low
        assert TermScorer.combine(100.0, {}, term_weight=1.0) == 100.0
