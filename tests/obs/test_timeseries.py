"""MetricsSampler: ring-buffered windows over the registry (fake clock)."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    MetricsSampler,
    SamplerDaemon,
    sample_interval_from_environ,
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _sampler(window_s: float = 1.0, capacity: int = 4):
    registry = MetricsRegistry()
    clock = FakeClock()
    sampler = MetricsSampler(registry, window_s=window_s, capacity=capacity,
                             clock=clock)
    return registry, clock, sampler


class TestRolling:
    def test_tick_is_noop_before_the_window_boundary(self):
        registry, clock, sampler = _sampler(window_s=1.0)
        registry.inc("query.count")
        clock.advance(0.5)
        assert sampler.tick() is None
        assert sampler.windows() == []
        clock.advance(0.6)
        window = sampler.tick()
        assert window is not None
        assert sampler.windows() == [window]

    def test_counter_deltas_become_rates(self):
        registry, clock, sampler = _sampler()
        registry.inc("query.count", 10.0)
        registry.inc("update.count", 4.0)
        clock.advance(2.0)
        window = sampler.roll()
        assert window["duration_s"] == pytest.approx(2.0)
        assert window["deltas"]["query.count"] == 10.0
        assert window["rates"]["query.count"] == pytest.approx(5.0)
        assert window["rates"]["update.count"] == pytest.approx(2.0)
        # The next window diffs against the new baseline, not lifetime zero.
        registry.inc("query.count", 3.0)
        clock.advance(1.0)
        assert sampler.roll()["deltas"] == {"query.count": 3.0}

    def test_unchanged_counters_are_omitted(self):
        registry, clock, sampler = _sampler()
        registry.inc("query.count", 5.0)
        clock.advance(1.0)
        sampler.roll()
        clock.advance(1.0)
        window = sampler.roll()
        assert window["deltas"] == {} and window["rates"] == {}

    def test_gauges_record_last_value_not_delta(self):
        registry, clock, sampler = _sampler()
        registry.set_gauge("pool.hit_rate", 0.25, shard=0)
        clock.advance(1.0)
        sampler.roll()
        registry.set_gauge("pool.hit_rate", 0.75, shard=0)
        clock.advance(1.0)
        window = sampler.roll()
        assert window["gauges"]['pool.hit_rate{shard=0}'] == 0.75

    def test_windowed_histogram_quantiles(self):
        registry, clock, sampler = _sampler()
        for _ in range(97):
            registry.observe("query.latency_ms", 1.0)
        for _ in range(3):
            registry.observe("query.latency_ms", 400.0)
        clock.advance(1.0)
        hist = sampler.roll()["histograms"]["query.latency_ms"]
        assert hist["count"] == 100
        assert hist["p50"] <= 1.0
        # Rank 99 lands among the 400 ms outliers; the windowed quantile is
        # clamped by the lifetime max (400), not the bucket bound (500).
        assert hist["p99"] == 400.0
        # A second window with no new observations reports no histogram row.
        clock.advance(1.0)
        assert sampler.roll()["histograms"] == {}
        # Windowed, not lifetime: a fast window after the slow one is fast.
        for _ in range(10):
            registry.observe("query.latency_ms", 1.0)
        clock.advance(1.0)
        hist = sampler.roll()["histograms"]["query.latency_ms"]
        assert hist["count"] == 10
        assert hist["p99"] <= 1.0

    def test_ring_capacity_drops_oldest(self):
        registry, clock, sampler = _sampler(capacity=3)
        for n in range(5):
            registry.inc("query.count", float(n + 1))
            clock.advance(1.0)
            sampler.roll()
        kept = sampler.windows()
        assert len(kept) == 3
        assert [w["deltas"]["query.count"] for w in kept] == [3.0, 4.0, 5.0]
        assert sampler.latest() is kept[-1] or sampler.latest() == kept[-1]

    def test_aggregate_sums_deltas_and_buckets(self):
        registry, clock, sampler = _sampler(capacity=10)
        for _ in range(3):
            registry.inc("query.count", 2.0)
            registry.observe("query.latency_ms", 10.0)
            clock.advance(1.0)
            sampler.roll()
        aggregate = sampler.aggregate(last=2)
        assert aggregate["windows"] == 2
        assert aggregate["duration_s"] == pytest.approx(2.0)
        assert aggregate["deltas"]["query.count"] == 4.0
        hist = aggregate["histograms"]["query.latency_ms"]
        assert hist["count"] == 2
        assert sum(c for _b, c in hist["buckets"]) >= 2

    def test_snapshot_is_json_shaped(self):
        import json

        registry, clock, sampler = _sampler()
        registry.inc("query.count")
        registry.observe("query.latency_ms", 5.0)
        clock.advance(1.0)
        sampler.roll()
        snapshot = sampler.snapshot()
        assert snapshot["window_s"] == 1.0
        (window,) = snapshot["windows"]
        assert "buckets" not in window["histograms"]["query.latency_ms"]
        json.dumps(snapshot)


class TestConfig:
    def test_invalid_window_and_capacity_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            MetricsSampler(registry, window_s=0.0)
        with pytest.raises(ObservabilityError):
            MetricsSampler(registry, capacity=0)

    def test_sample_interval_from_environ(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_SAMPLE_MS", raising=False)
        assert sample_interval_from_environ() is None
        monkeypatch.setenv("REPRO_OBS_SAMPLE_MS", "250")
        assert sample_interval_from_environ() == pytest.approx(0.25)
        monkeypatch.setenv("REPRO_OBS_SAMPLE_MS", "nope")
        with pytest.raises(ObservabilityError):
            sample_interval_from_environ()
        monkeypatch.setenv("REPRO_OBS_SAMPLE_MS", "-5")
        with pytest.raises(ObservabilityError):
            sample_interval_from_environ()


class TestDaemon:
    def test_daemon_invokes_callback_until_stopped(self):
        import threading

        fired = threading.Event()
        daemon = SamplerDaemon(0.01, fired.set)
        daemon.start()
        try:
            assert fired.wait(timeout=2.0)
        finally:
            daemon.stop()
        assert not daemon.is_alive()

    def test_daemon_survives_callback_exceptions(self):
        import threading

        calls = []
        resumed = threading.Event()

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("engine mid-close")
            resumed.set()

        daemon = SamplerDaemon(0.01, flaky)
        daemon.start()
        try:
            assert resumed.wait(timeout=2.0)
        finally:
            daemon.stop()


def test_engine_sampler_records_query_traffic():
    """The router's pull-driven sampler sees traffic after a forced roll."""
    import random

    from repro.core.text_index import SVRTextIndex
    from tests.conftest import METHOD_OPTIONS, make_corpus

    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=4, threads=1,
                         cache_pages=256, **METHOD_OPTIONS["chunk"])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        for _ in range(5):
            index.search(["w001", "w004"], k=5)
        window = index.router.sampler.roll()
        assert window["deltas"]["query.count"] == 5.0
        assert window["histograms"]["query.latency_ms"]["count"] == 5
    finally:
        index.close()
