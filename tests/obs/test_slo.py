"""SLO burn-rate tracking: multiwindow evaluation, gauges, burn events."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.obs.timeseries import MetricsSampler

from tests.obs.test_timeseries import FakeClock


def _rig(objectives):
    registry = MetricsRegistry()
    clock = FakeClock()
    sampler = MetricsSampler(registry, window_s=1.0, capacity=30, clock=clock)
    events = EventLog()
    tracker = SLOTracker(sampler, objectives=objectives, metrics=registry,
                         events=events)
    return registry, clock, sampler, events, tracker


def _roll(registry, clock, sampler, latencies=(), degraded=0, queries=0):
    """One sampler window carrying the given traffic."""
    for latency in latencies:
        registry.observe("query.latency_ms", latency)
    queries = max(queries, len(latencies))
    if queries:
        registry.inc("query.count", float(queries))
    if degraded:
        registry.inc("query.degraded", float(degraded))
    clock.advance(1.0)
    sampler.roll()


_LATENCY = SLObjective(name="p99", kind="latency", target=0.1,
                       threshold_ms=100.0, fast_windows=2, slow_windows=8)
_RATIO = SLObjective(name="degraded", kind="ratio", target=0.1,
                     fast_windows=2, slow_windows=8)


class TestObjectiveValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ObservabilityError):
            SLObjective(name="x", kind="availability", target=0.1)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ObservabilityError):
            SLObjective(name="x", kind="ratio", target=1.5)

    def test_latency_kind_needs_threshold(self):
        with pytest.raises(ObservabilityError):
            SLObjective(name="x", kind="latency", target=0.1)

    def test_defaults_cover_latency_and_availability(self):
        kinds = {objective.kind for objective in DEFAULT_OBJECTIVES}
        assert kinds == {"latency", "ratio"}


class TestLatencyObjective:
    def test_quiet_engine_is_not_burning(self):
        registry, clock, sampler, events, tracker = _rig([_LATENCY])
        _roll(registry, clock, sampler)
        status = tracker.evaluate()
        assert status["p99"]["burning"] is False
        assert tracker.burning is False
        assert not events.events(kind="slo_burn")

    def test_healthy_traffic_is_not_burning(self):
        registry, clock, sampler, _events, tracker = _rig([_LATENCY])
        for _ in range(4):
            _roll(registry, clock, sampler, latencies=[5.0] * 10)
        status = tracker.evaluate()
        assert status["p99"]["fast"]["burn_rate"] == 0.0
        assert status["p99"]["burning"] is False

    def test_sustained_slowness_burns_and_emits_once(self):
        registry, clock, sampler, events, tracker = _rig([_LATENCY])
        for _ in range(4):
            _roll(registry, clock, sampler, latencies=[500.0] * 10)
            tracker.evaluate()
        status = tracker.status()
        assert status["burning"] is True
        entry = status["objectives"]["p99"]
        # Every query broke the 100 ms bar: bad fraction 1.0, target 0.1.
        assert entry["fast"]["burn_rate"] == pytest.approx(10.0)
        assert entry["slow"]["burn_rate"] == pytest.approx(10.0)
        # Edge-triggered: one event for the whole burning episode.
        assert len(events.events(kind="slo_burn")) == 1
        burn = events.events(kind="slo_burn")[0]
        assert burn.fields["slo"] == "p99"
        # Gauges mirror the evaluation for scrapers.
        assert registry.gauge_value("slo.burning", slo="p99") == 1.0
        assert registry.gauge_value(
            "slo.burn_rate", slo="p99", window="fast") == pytest.approx(10.0)

    def test_fast_spike_alone_does_not_burn(self):
        """A one-window blip trips the fast burn but not the slow window."""
        registry, clock, sampler, events, tracker = _rig([_LATENCY])
        for _ in range(7):
            _roll(registry, clock, sampler, latencies=[5.0] * 20)
        _roll(registry, clock, sampler, latencies=[500.0] * 5)
        status = tracker.evaluate()
        entry = status["p99"]
        assert entry["fast"]["burn_rate"] >= 1.0
        assert entry["slow"]["burn_rate"] < 1.0
        assert entry["burning"] is False
        assert not events.events(kind="slo_burn")

    def test_recovery_clears_burning_and_rearms_the_event(self):
        registry, clock, sampler, events, tracker = _rig([_LATENCY])
        for _ in range(3):
            _roll(registry, clock, sampler, latencies=[500.0] * 10)
            tracker.evaluate()
        assert tracker.burning is True
        # Enough healthy windows push both burn windows back under 1.0.
        for _ in range(10):
            _roll(registry, clock, sampler, latencies=[5.0] * 50)
            tracker.evaluate()
        assert tracker.burning is False
        # A fresh episode re-emits: the edge trigger re-arms on recovery.
        for _ in range(10):
            _roll(registry, clock, sampler, latencies=[500.0] * 50)
            tracker.evaluate()
        assert tracker.burning is True
        assert len(events.events(kind="slo_burn")) == 2


class TestRatioObjective:
    def test_degraded_fraction_over_target_burns(self):
        registry, clock, sampler, events, tracker = _rig([_RATIO])
        for _ in range(4):
            _roll(registry, clock, sampler, queries=10, degraded=5)
            tracker.evaluate()
        entry = tracker.status()["objectives"]["degraded"]
        assert entry["fast"]["bad_fraction"] == pytest.approx(0.5)
        assert entry["burning"] is True
        assert len(events.events(kind="slo_burn")) == 1

    def test_degraded_fraction_under_target_does_not_burn(self):
        registry, clock, sampler, _events, tracker = _rig([_RATIO])
        for _ in range(4):
            _roll(registry, clock, sampler, queries=200, degraded=1)
            tracker.evaluate()
        entry = tracker.status()["objectives"]["degraded"]
        assert entry["fast"]["bad_fraction"] == pytest.approx(0.005)
        assert entry["burning"] is False


def test_engine_wires_tracker_and_serves_status():
    """The router owns a tracker over its sampler; rolls feed /slo."""
    import random

    from repro.core.text_index import SVRTextIndex
    from tests.conftest import METHOD_OPTIONS, make_corpus

    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=4, threads=1,
                         cache_pages=256, **METHOD_OPTIONS["chunk"])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        for _ in range(5):
            index.search(["w001", "w004"], k=5)
        index.router._obs_roll()
        status = index.router.slo.status()
        assert set(status["objectives"]) == {
            objective.name for objective in DEFAULT_OBJECTIVES
        }
        assert status["burning"] is False
        assert index.router.metrics.gauge_value(
            "slo.burning", slo="query_p99_latency") == 0.0
    finally:
        index.close()
