"""Snapshot exporters and the introspection CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.text_index import SVRTextIndex
from repro.errors import ObservabilityError
from repro.obs.dump import main as dump_main
from repro.obs.snapshot import observability_snapshot, to_json, to_prometheus_text
from tests.conftest import METHOD_OPTIONS, make_corpus


def _build(tmp_path=None, shards=4, threads=1, **kwargs):
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(
        method="chunk", shards=shards, threads=threads, cache_pages=256,
        path=None if tmp_path is None else str(tmp_path / "idx"),
        **METHOD_OPTIONS["chunk"], **kwargs,
    )
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


class TestSnapshot:
    def test_snapshot_shape_and_json(self):
        index = _build(list_cache_pages=8)
        try:
            index.search(["w001", "w004"], k=5)
            snapshot = index.observability()
            assert snapshot["engine"]["method"] == "chunk"
            assert snapshot["engine"]["shards"] == 4
            assert snapshot["metrics"]["counters"]["query.count"] == 1.0
            assert len(snapshot["shard_io"]) == 4
            assert snapshot["list_cache"]["budget_bytes"] > 0
            assert len(snapshot["shard_health"]) == 4
            json.loads(to_json(snapshot))  # round-trips as JSON
        finally:
            index.close()

    def test_snapshot_performs_no_storage_accesses(self):
        from tests.helpers import category_fingerprint

        index = _build()
        try:
            index.search(["w001"], k=5)
            before = category_fingerprint(index.env)
            index.observability()
            assert category_fingerprint(index.env) == before
        finally:
            index.close()

    def test_snapshot_includes_wal_on_durable_engines(self, tmp_path):
        index = _build(tmp_path)
        try:
            index.checkpoint()
            snapshot = index.observability()
            assert len(snapshot["wal"]) == 4
            assert all(row["batches_committed"] >= 1 for row in snapshot["wal"])
        finally:
            index.close()

    def test_snapshot_rejects_bare_objects(self):
        with pytest.raises(ObservabilityError):
            observability_snapshot(object())


class TestPrometheusExport:
    def test_counters_gauges_histograms_render(self):
        index = _build()
        try:
            index.search(["w001", "w004"], k=5)
            index.router.metrics.set_gauge("bench.ops", 7.0)
            text = to_prometheus_text(index)
            assert "# TYPE query_count counter" in text
            assert "query_count 1.0" in text
            assert "# TYPE bench_ops gauge" in text
            assert "# TYPE query_latency_ms histogram" in text
            assert 'query_latency_ms_bucket{le="+Inf"} 1' in text
            assert "query_latency_ms_count 1" in text
        finally:
            index.close()

    def test_labels_render_prometheus_style(self):
        index = _build(threads=4)
        try:
            index.search(["w001", "w004"], k=5, conjunctive=False)
            text = to_prometheus_text(index)
            assert 'shard_postings_scanned{shard=' in text
        finally:
            index.close()

    def test_help_lines_accompany_every_type_line(self):
        index = _build(threads=4)
        try:
            index.search(["w001"], k=5)
            text = to_prometheus_text(index)
        finally:
            index.close()
        typed = {line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE ")}
        helped = {line.split()[2] for line in text.splitlines()
                  if line.startswith("# HELP ")}
        assert typed and typed == helped

    def test_adversarial_label_values_escape_and_round_trip(self):
        index = _build()
        try:
            hostile = 'a\\b"c\nd'
            index.router.metrics.set_gauge("custom.gauge", 1.0, tag=hostile)
            text = to_prometheus_text(index)
        finally:
            index.close()
        line = next(l for l in text.splitlines()
                    if l.startswith("custom_gauge{"))
        # One physical line: the newline travelled as the \n escape.
        assert line == 'custom_gauge{tag="a\\\\b\\"c\\nd"} 1.0'
        # Round-trip: un-escaping per the exposition format recovers the
        # original value (escapes are unambiguous, decoded left-to-right).
        raw = line[len('custom_gauge{tag="'):line.rindex('"')]
        decoded, i = [], 0
        while i < len(raw):
            if raw[i] == "\\":
                decoded.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
                i += 2
            else:
                decoded.append(raw[i])
                i += 1
        assert "".join(decoded) == hostile


class TestBenchExport:
    def test_operation_metrics_export_into_registry(self):
        from repro.bench.metrics import OperationMetrics
        from repro.obs.metrics import MetricsRegistry

        metrics = OperationMetrics(label="queries")
        metrics.record(wall_ms=10.0, pages_read=4)
        metrics.extra["p99_query_ms"] = 12.5
        registry = MetricsRegistry()
        metrics.export_into(registry)
        assert registry.gauge_value("bench.operations", bench="queries") == 1.0
        assert registry.gauge_value("bench.pages_read", bench="queries") == 4.0
        assert registry.gauge_value("bench.extra.p99_query_ms",
                                    bench="queries") == 12.5
        # Re-export after more operations overwrites instead of double-counting.
        metrics.record(wall_ms=20.0)
        metrics.export_into(registry)
        assert registry.gauge_value("bench.operations", bench="queries") == 2.0

    def test_service_result_records_tail_latencies(self):
        from repro.bench.metrics import OperationMetrics
        from repro.workloads.service import ServiceLoadResult

        result = ServiceLoadResult(
            queries_run=3, wall_seconds=1.0,
            query_latencies_ms=[1.0, 2.0, 100.0],
            window_latencies_ms=[5.0],
        )
        metrics = OperationMetrics()
        result.record_into(metrics)
        assert metrics.extra["p999_query_ms"] == 100.0
        assert metrics.extra["max_query_ms"] == 100.0
        assert metrics.extra["p999_window_ms"] == 5.0
        assert metrics.extra["max_window_ms"] == 5.0


class TestCLI:
    def test_demo_text(self, capsys):
        assert dump_main(["--demo"]) == 0
        out = capsys.readouterr().out
        assert "engine: method=chunk" in out
        assert "query.count = 200" in out

    def test_demo_json(self, capsys):
        assert dump_main(["--demo", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["metrics"]["counters"]["query.count"] == 200.0

    def test_demo_prom(self, capsys):
        assert dump_main(["--demo", "--format", "prom"]) == 0
        assert "# TYPE query_count counter" in capsys.readouterr().out

    def test_path_dump_leaves_directory_recoverable(self, tmp_path, capsys):
        index = _build(tmp_path)
        index.search(["w001", "w004"], k=5)
        index.commit()
        doc_count = index.document_count()
        index.close()

        assert dump_main(["--path", str(tmp_path / "idx"),
                          "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine"]["durable"] is True
        assert len(snapshot["wal"]) == 4

        # The dump must not have mutated the durable state.
        reopened = SVRTextIndex.open(str(tmp_path / "idx"))
        try:
            assert reopened.document_count() == doc_count
            assert reopened.search(["w001", "w004"], k=5).results
        finally:
            reopened.close()
