"""Live monitoring endpoint: routes, scrape fidelity, health gating."""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.core.text_index import SVRTextIndex
from repro.errors import ObservabilityError
from repro.obs.http import http_port_from_environ, serve_observability
from tests.conftest import METHOD_OPTIONS, make_corpus


def _build(shards=4, threads=1):
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=shards, threads=threads,
                         cache_pages=256, **METHOD_OPTIONS["chunk"])
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


def _get(url: str):
    """(status, content_type, body) — non-2xx responses included."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (response.status, response.headers.get("Content-Type"),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return (error.code, error.headers.get("Content-Type"),
                error.read().decode("utf-8"))


def _prometheus_value(body: str, series: str,
                      default: "float | None" = None) -> float:
    for line in body.splitlines():
        if line.startswith(series + " "):
            return float(line.split()[-1])
    if default is not None:
        return default
    raise AssertionError(f"series {series!r} not found in scrape")


class TestRoutes:
    def test_metrics_scrape_matches_registry_exactly(self):
        index = _build(threads=4)  # the fanout path feeds per-shard series
        try:
            for _ in range(7):
                index.search(["w001", "w004"], k=5)
            with serve_observability(index) as server:
                status, content_type, body = _get(server.url + "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "# TYPE query_count counter" in body
            assert "# HELP query_count" in body
            assert "# TYPE query_latency_ms histogram" in body
            metrics = index.router.metrics
            assert _prometheus_value(body, "query_count") == \
                metrics.counter_value("query.count") == 7.0
            assert _prometheus_value(body, "query_latency_ms_count") == 7.0
            # Only shards owning a probed term carry a series; absent means 0.
            scraped_per_shard = sum(
                _prometheus_value(
                    body, 'shard_postings_scanned{shard="%d"}' % shard,
                    default=0.0)
                for shard in range(4)
            )
            assert scraped_per_shard == \
                metrics.counter_value("query.postings_scanned")
        finally:
            index.close()

    def test_snapshot_and_slo_routes_serve_json(self):
        index = _build()
        try:
            index.search(["w001"], k=5)
            index.router._obs_roll()
            with serve_observability(index) as server:
                status, content_type, body = _get(server.url + "/snapshot")
                assert status == 200 and "json" in content_type
                snapshot = json.loads(body)
                assert snapshot["engine"]["method"] == "chunk"
                assert snapshot["timeseries"]["windows"]
                status, _ct, body = _get(server.url + "/slo")
                assert status == 200
                assert json.loads(body)["burning"] is False
                status, _ct, body = _get(server.url + "/slow")
                assert status == 200
                assert isinstance(json.loads(body), list)
        finally:
            index.close()

    def test_healthz_flips_to_503_on_quarantine(self):
        index = _build()
        try:
            with serve_observability(index) as server:
                status, _ct, body = _get(server.url + "/healthz")
                assert status == 200
                assert json.loads(body)["status"] == "ok"
                index.router.quarantine_shard(2, "injected for test")
                status, _ct, body = _get(server.url + "/healthz")
                assert status == 503
                payload = json.loads(body)
                assert payload["status"] == "degraded"
                assert any("quarantined" in reason
                           for reason in payload["reasons"])
        finally:
            index.close()

    def test_unknown_route_is_404(self):
        index = _build()
        try:
            with serve_observability(index) as server:
                status, _ct, body = _get(server.url + "/nope")
            assert status == 404
            assert "/metrics" in body
        finally:
            index.close()

    def test_close_is_idempotent_and_frees_the_port(self):
        index = _build()
        try:
            server = serve_observability(index)
            url = server.url
            server.close()
            server.close()
            with pytest.raises(urllib.error.URLError):
                urllib.request.urlopen(url + "/healthz", timeout=1)
        finally:
            index.close()


class TestAutostart:
    def test_env_port_starts_and_close_stops(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_HTTP_PORT", "0")
        index = _build(shards=1)
        url = index._obs_server.url
        status, _ct, _body = _get(url + "/healthz")
        assert status == 200
        index.close()
        assert index._obs_server is None
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=1)

    def test_unset_env_means_no_server(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_HTTP_PORT", raising=False)
        index = _build(shards=1)
        try:
            assert index._obs_server is None
        finally:
            index.close()

    def test_port_parsing_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_HTTP_PORT", "nope")
        with pytest.raises(ObservabilityError):
            http_port_from_environ()
        monkeypatch.setenv("REPRO_OBS_HTTP_PORT", "70000")
        with pytest.raises(ObservabilityError):
            http_port_from_environ()


def test_service_storm_then_scrape_is_consistent():
    """The CI endpoint smoke: a concurrent storm, then one scrape whose
    totals match both the registry and the driver's own accounting."""
    from repro.workloads.queries import KeywordQuery
    from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver
    from repro.workloads.updates import ScoreUpdate

    rng = random.Random(3)
    vocab = [f"w{i:03d}" for i in range(25)]
    queries = [
        KeywordQuery(keywords=tuple(rng.sample(vocab, 2)),
                     k=rng.choice([3, 5]),
                     conjunctive=rng.random() < 0.5)
        for _ in range(12)
    ]
    updates = [
        ScoreUpdate(doc_id=rng.randrange(1, 41), delta=rng.uniform(-80, 80))
        for _ in range(60)
    ]
    index = _build(shards=4, threads=4)
    try:
        result = ServiceLoadDriver(
            ServiceLoadConfig(num_clients=4, query_fraction=0.5,
                              batch_window=16, seed=7),
            queries, updates,
        ).run(index)
        with serve_observability(index) as server:
            status, _ct, body = _get(server.url + "/metrics")
            assert status == 200
            assert _prometheus_value(body, "query_count") == \
                index.router.metrics.counter_value("query.count") == \
                float(result.queries_run)
            status, _ct, snap_body = _get(server.url + "/snapshot")
        snapshot = json.loads(snap_body)
        # The driver's post-storm roll closed out the final window, so the
        # scrape sees the storm in the ring, not just lifetime counters.
        windows = snapshot["timeseries"]["windows"]
        assert sum(w["deltas"].get("query.count", 0.0) for w in windows) == \
            float(result.queries_run)
        assert snapshot["slo"]["objectives"]
    finally:
        index.close()
