"""Span trees, cross-thread propagation, and the slow-query log."""

from __future__ import annotations

import random

import pytest

from repro.core.text_index import SVRTextIndex
from repro.errors import ObservabilityError
from repro.exec.executor import ExecutorPool
from repro.obs.trace import (
    SlowQueryLog,
    bind_current,
    current_span,
    set_tracing,
    slow_query_threshold_from_environ,
    span,
    tracing_from_environ,
    tracing_enabled,
)
from tests.conftest import METHOD_OPTIONS, make_corpus


@pytest.fixture
def traced():
    previous = set_tracing(True)
    yield
    set_tracing(previous)


class TestEnviron:
    def test_tracing_from_environ(self, monkeypatch):
        for off in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert not tracing_from_environ()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_from_environ()

    def test_slow_query_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        assert slow_query_threshold_from_environ() == 100.0
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "2.5")
        assert slow_query_threshold_from_environ() == 2.5
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "-1")
        with pytest.raises(ObservabilityError):
            slow_query_threshold_from_environ()
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "soon")
        with pytest.raises(ObservabilityError):
            slow_query_threshold_from_environ()


class TestSpanTree:
    def test_disabled_spans_yield_none(self):
        previous = set_tracing(False)
        try:
            assert not tracing_enabled()
            with span("query") as node:
                assert node is None
            assert current_span() is None
        finally:
            set_tracing(previous)

    def test_nesting(self, traced):
        with span("query", k=3) as root:
            assert current_span() is root
            with span("query.plan") as plan:
                assert current_span() is plan
            with span("query.merge"):
                pass
        assert current_span() is None
        assert [child.name for child in root.children] == ["query.plan",
                                                           "query.merge"]
        assert root.duration_ms is not None and root.duration_ms >= 0.0
        assert root.tags == {"k": 3}

    def test_to_dict_and_format(self, traced):
        with span("query", k=1) as root:
            with span("shard.scan", shard=0):
                pass
        data = root.to_dict()
        assert data["name"] == "query"
        assert data["children"][0]["tags"] == {"shard": 0}
        text = root.format_tree()
        assert "query" in text and "shard.scan" in text

    def test_bind_current_installs_span_on_other_thread(self, traced):
        import threading

        seen = {}
        with span("query") as root:
            fn = bind_current(lambda: seen.setdefault("span", current_span()))
            thread = threading.Thread(target=fn)
            thread.start()
            thread.join()
        assert seen["span"] is root

    def test_bind_current_is_identity_when_disabled(self):
        previous = set_tracing(False)
        try:
            fn = lambda: None  # noqa: E731
            assert bind_current(fn) is fn
        finally:
            set_tracing(previous)


class TestExecutorPropagation:
    def test_worker_thread_spans_land_under_query_root(self, traced):
        pool = ExecutorPool(shard_count=2, threads=2, scatter=True)
        try:
            with span("query") as root:
                def scan():
                    with span("shard.scan", shard=0):
                        return 42
                assert pool.submit(0, scan).result() == 42
            assert [child.name for child in root.children] == ["shard.scan"]
        finally:
            pool.close()

    def test_stolen_task_still_records_under_root(self, traced):
        # Whether the worker claims the task or the caller steals it via
        # result(steal=True), the binding travels inside the closure and the
        # scan span lands under the submitting query's root either way.
        pool = ExecutorPool(shard_count=1, threads=2, scatter=True)
        try:
            with span("query") as root:
                def scan():
                    with span("shard.scan", shard=0):
                        return "stolen"
                future = pool.submit(0, scan)
                assert future.result(steal=True) == "stolen"
            assert [child.name for child in root.children] == ["shard.scan"]
        finally:
            pool.close()


class TestSlowQueryLog:
    def _closed_span(self, name="query", duration_ms=5.0):
        with span(name) as node:
            pass
        node.duration_ms = duration_ms
        return node

    def test_below_threshold_not_recorded(self, traced):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.maybe_record(self._closed_span(duration_ms=5.0)) is None
        assert len(log) == 0

    def test_above_threshold_recorded_with_attribution(self, traced):
        log = SlowQueryLog(threshold_ms=1.0)
        root = self._closed_span(duration_ms=50.0)
        entry = log.maybe_record(root, keywords=["a", "b"],
                                 attribution={"a": {"pages_read": 3}})
        assert entry is not None
        assert log.entries()[0]["keywords"] == ["a", "b"]
        assert log.entries()[0]["terms"]["a"]["pages_read"] == 3
        assert log.entries()[0]["tree"]["name"] == "query"
        log.clear()
        assert len(log) == 0

    def test_capacity_bound(self, traced):
        log = SlowQueryLog(capacity=2, threshold_ms=0.0)
        for _ in range(5):
            log.maybe_record(self._closed_span(duration_ms=1.0))
        assert len(log) == 2


class TestEngineTracing:
    def _build(self, shards=4, threads=4):
        corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
        index = SVRTextIndex(method="chunk", shards=shards, threads=threads,
                             cache_pages=256, **METHOD_OPTIONS["chunk"])
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        return index

    def test_slow_query_log_captures_fanout_term_attribution(self, traced):
        from repro.obs.trace import SLOW_QUERIES

        SLOW_QUERIES.clear()
        previous = SLOW_QUERIES.threshold_ms
        SLOW_QUERIES.threshold_ms = 0.0  # every query is "slow"
        index = self._build(shards=4, threads=4)
        try:
            index.search(["w001", "w004"], k=5)
            entries = SLOW_QUERIES.entries()
            assert entries, "threshold 0 must record the query"
            entry = entries[-1]
            assert entry["keywords"] == ["w001", "w004"]
            assert set(entry["terms"]) == {"w001", "w004"}
            for stats in entry["terms"].values():
                assert "postings_scanned" in stats and "shard" in stats
            assert entry["tree"]["name"] == "query"
            # The fan-out's shard scans must appear inside the tree.
            names = set()
            nodes = [entry["tree"]]
            while nodes:
                node = nodes.pop()
                names.add(node["name"])
                nodes.extend(node["children"])
            assert "shard.scan" in names
        finally:
            SLOW_QUERIES.threshold_ms = previous
            SLOW_QUERIES.clear()
            index.close()

    def test_serial_engine_records_aggregate_attribution(self, traced):
        from repro.obs.trace import SLOW_QUERIES

        SLOW_QUERIES.clear()
        previous = SLOW_QUERIES.threshold_ms
        SLOW_QUERIES.threshold_ms = 0.0
        index = self._build(shards=1, threads=1)
        try:
            index.search(["w001"], k=5)
            entry = SLOW_QUERIES.entries()[-1]
            assert set(entry["terms"]) == {"*"}
        finally:
            SLOW_QUERIES.threshold_ms = previous
            SLOW_QUERIES.clear()
            index.close()

    def test_quarantine_retry_path_stays_traced(self, traced, tmp_path):
        """A query that quarantines a shard mid-flight still answers and the
        trace/metrics wrapper records exactly one query."""
        corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
        index = SVRTextIndex(method="chunk", shards=4, threads=4,
                             cache_pages=256, path=str(tmp_path / "idx"),
                             **METHOD_OPTIONS["chunk"])
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        index.checkpoint()
        try:
            index.router.quarantine_shard(1, "test")
            before = index.router.metrics.counter_value("query.count")
            response = index.search(["w001", "w004"], k=5,
                                    conjunctive=False)
            after = index.router.metrics.counter_value("query.count")
            assert after == before + 1
            assert response.stats is not None
        finally:
            index.close()
