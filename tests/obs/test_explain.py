"""Query EXPLAIN / EXPLAIN ANALYZE: plan shape, zero-I/O, bit-identity.

Two hard contracts from the observability layer's charter:

* **EXPLAIN is accounting-free** — describing a plan goes through the peek
  path only (directory peeks, cached handles, dictionary stats), so the
  engine's I/O fingerprint is bit-identical before and after any number of
  ``explain()`` calls;
* **ANALYZE is the real query** — ``explain(analyze=True)`` runs the exact
  production query path (plus tracing, which the invisibility suite pins as
  accounting-free), so a workload probed through ANALYZE produces the same
  answers and the same final I/O fingerprint as one probed through
  ``search()``, for every method x shard count x thread count.
"""

from __future__ import annotations

import random

import pytest

from repro.core.text_index import SVRTextIndex
from repro.errors import QueryError
from repro.obs.trace import SLOW_QUERIES, tracing_enabled
from tests.conftest import (
    METHOD_OPTIONS,
    SVR_ONLY_METHODS,
    TERMSCORE_METHODS,
    make_corpus,
)
from tests.helpers import category_fingerprint

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS

_PROBES = (
    (["w001", "w004"], 3, True),
    (["w001", "w004"], 10, True),
    (["w002", "w007", "w011"], 5, True),
    (["w003"], 10, False),
    (["w005", "w009"], 10, False),
)


@pytest.fixture(autouse=True)
def clean_slow_queries():
    yield
    SLOW_QUERIES.clear()


def _build(method: str, shards: int, threads: int,
           **kwargs) -> SVRTextIndex:
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method=method, shards=shards, threads=threads,
                         cache_pages=256, **METHOD_OPTIONS[method], **kwargs)
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    return index


def _run_probe_workload(method: str, shards: int, threads: int,
                        analyze: bool):
    """The invisibility suite's probe workload, answered either through
    ``search()`` or through ``explain(analyze=True)``."""
    index = _build(method, shards, threads)
    try:
        answers = []

        def probe():
            for keywords, k, conjunctive in _PROBES:
                if analyze:
                    plan = index.explain(keywords, k=k,
                                         conjunctive=conjunctive,
                                         analyze=True)
                    rows = plan["execution"]["results"]
                    answers.append([(r["doc_id"], r["score"]) for r in rows])
                else:
                    response = index.search(keywords, k=k,
                                            conjunctive=conjunctive)
                    answers.append(
                        [(r.doc_id, r.score) for r in response.results]
                    )

        probe()
        rng = random.Random(5)
        live = [doc_id for doc_id, _terms, _score in
                make_corpus(random.Random(97), num_docs=40, vocabulary=25)]
        for _ in range(6):
            index.update_score(rng.choice(live),
                               round(rng.uniform(0.0, 1000.0), 2))
        probe()
        index.apply_score_updates(
            [(rng.choice(live), round(rng.uniform(0.0, 1000.0), 2))
             for _ in range(8)]
        )
        probe()
        return answers, category_fingerprint(index.env)
    finally:
        index.close()


@pytest.mark.parametrize("threads", [1, 4])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("method", ALL_METHODS)
def test_analyze_is_the_real_query(method, shards, threads):
    """ANALYZE answers and final I/O fingerprints match search() exactly."""
    search_answers, search_fp = _run_probe_workload(
        method, shards, threads, analyze=False)
    analyze_answers, analyze_fp = _run_probe_workload(
        method, shards, threads, analyze=True)
    assert analyze_answers == search_answers
    assert analyze_fp == search_fp


@pytest.mark.parametrize("method", ALL_METHODS)
def test_explain_is_accounting_free(method):
    """Plain EXPLAIN performs zero accounted storage accesses."""
    index = _build(method, shards=4, threads=1)
    try:
        index.search(["w001", "w004"], k=5)  # realistic warm state
        before = category_fingerprint(index.env)
        for keywords, k, conjunctive in _PROBES:
            plan = index.explain(keywords, k=k, conjunctive=conjunctive)
            assert plan["execution"] is None
        index.explain(["zzzabsent"], k=5)
        assert category_fingerprint(index.env) == before
    finally:
        index.close()


def test_plan_shape_and_term_layouts():
    index = _build("chunk", shards=4, threads=1, list_cache_pages=8)
    try:
        plan = index.explain(["w001", "zzzabsent"], k=5)
        assert plan["query"]["keywords"] == ["w001", "zzzabsent"]
        engine = plan["engine"]
        assert engine["method"] == "chunk"
        assert engine["shards"] == 4
        assert isinstance(engine["pruning_eligible"], bool)
        assert isinstance(engine["seek_eligible"], bool)
        by_term = {row["term"]: row for row in plan["terms"]}
        assert by_term["zzzabsent"]["layout"] == "absent"
        present = by_term["w001"]
        assert present["layout"] in ("blocked", "legacy", "btree-clustered")
        assert present["estimated_postings"] > 0
        assert 0 <= present["shard"] < 4
        assert "cacheable" in present["cache"]
    finally:
        index.close()


def test_analyze_execution_section():
    index = _build("chunk", shards=4, threads=4)
    try:
        previous = tracing_enabled()
        plan = index.explain(["w001", "w004"], k=5, analyze=True)
        # ANALYZE flips tracing on for its query only, then restores it.
        assert tracing_enabled() == previous
        execution = plan["execution"]
        assert execution["latency_ms"] >= 0.0
        assert execution["totals"]["postings_scanned"] > 0
        assert set(execution["phases"]) >= {"plan_ms", "merge_ms", "scan_ms"}
        assert execution["per_term_actuals"] in ("exact", "aggregate-only")
        assert execution["trace"]["name"] == "explain.analyze"
        assert isinstance(execution["skip_events"], list)
        assert len(execution["shards"]) >= 1
        if execution["per_term_actuals"] == "exact":
            for row in plan["terms"]:
                assert "actual" in row
    finally:
        index.close()


def test_estimates_track_actuals_on_single_term_scans():
    """A term's ``estimated_postings`` bounds what a full scan of it decodes."""
    index = _build("chunk", shards=1, threads=1)
    try:
        for term in ("w001", "w003", "w007"):
            plan = index.explain([term], k=40, conjunctive=False,
                                 analyze=True)
            (row,) = plan["terms"]
            actual = plan["execution"]["totals"]["postings_scanned"]
            assert 0 < actual <= row["estimated_postings"]
    finally:
        index.close()


def test_explain_rejects_empty_queries():
    index = _build("chunk", shards=1, threads=1)
    try:
        with pytest.raises(QueryError):
            index.explain("")
    finally:
        index.close()


class TestRenderAndCLI:
    def test_render_text_mentions_terms_and_phases(self):
        from repro.obs.explain import render_text

        index = _build("chunk", shards=4, threads=1)
        try:
            rendered = render_text(index.explain(["w001", "w004"], k=5,
                                                 analyze=True))
        finally:
            index.close()
        assert "w001" in rendered and "w004" in rendered
        assert "ANALYZE" in rendered
        assert "postings=" in rendered and "blocks_skipped=" in rendered

    def test_cli_demo_analyze_json(self, capsys):
        import json

        from repro.obs.explain import main as explain_main

        assert explain_main(["--demo", "term3", "term7", "--analyze",
                             "--format", "json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["query"]["keywords"] == ["term3", "term7"]
        assert plan["execution"]["totals"]["postings_scanned"] >= 0
