"""Accounting invisibility: tracing must never change an I/O fingerprint.

The observability layer's hard contract is that it only *reads* existing
counters and clocks — it never touches a page.  This suite pins that two
ways:

* **matrix** — the same probe workload (queries, sequential updates, a
  batched window, insert/delete/content-update) over all six methods x
  shards {1, 4} x threads {1, 4} produces *bit-identical* buffer-pool and
  disk counter fingerprints with tracing enabled and disabled, and
  identical answers;
* **experiments** — the fig7 / table1 harnesses report identical I/O
  columns with ``set_tracing(True)`` (wall-clock columns are excluded —
  time is the one thing tracing legitimately measures).
"""

from __future__ import annotations

import random

import pytest

from repro.core.text_index import SVRTextIndex
from repro.obs.trace import SLOW_QUERIES, set_tracing
from tests.conftest import METHOD_OPTIONS, SVR_ONLY_METHODS, TERMSCORE_METHODS, make_corpus
from tests.helpers import category_fingerprint

ALL_METHODS = SVR_ONLY_METHODS + TERMSCORE_METHODS

_PROBES = (
    (["w001", "w004"], 3, True),
    (["w001", "w004"], 10, True),
    (["w002", "w007", "w011"], 5, True),
    (["w003"], 10, False),
    (["w005", "w009"], 10, False),
)


def _run_probe_workload(method: str, shards: int, threads: int):
    """Build + query + write workload; returns (answers, fingerprint)."""
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method=method, shards=shards, threads=threads,
                         cache_pages=256, **METHOD_OPTIONS[method])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        answers = []

        def probe():
            for keywords, k, conjunctive in _PROBES:
                response = index.search(keywords, k=k, conjunctive=conjunctive)
                answers.append([(r.doc_id, r.score) for r in response.results])

        probe()
        rng = random.Random(5)
        live = [doc_id for doc_id, _terms, _score in corpus]
        for _ in range(6):
            index.update_score(rng.choice(live),
                              round(rng.uniform(0.0, 1000.0), 2))
        probe()
        index.apply_score_updates(
            [(rng.choice(live), round(rng.uniform(0.0, 1000.0), 2))
             for _ in range(8)]
        )
        index.insert_document_terms(900, ["w001", "w004", "w019"], 512.0)
        index.update_content(900, "w002 w004 w007")
        index.delete_document(live[0])
        probe()
        return answers, category_fingerprint(index.env)
    finally:
        index.close()


@pytest.mark.parametrize("threads", [1, 4])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("method", ALL_METHODS)
def test_tracing_is_accounting_invisible(method, shards, threads):
    previous = set_tracing(False)
    try:
        baseline_answers, baseline_fp = _run_probe_workload(method, shards, threads)
        set_tracing(True)
        traced_answers, traced_fp = _run_probe_workload(method, shards, threads)
    finally:
        set_tracing(previous)
        SLOW_QUERIES.clear()
    assert traced_answers == baseline_answers
    assert traced_fp == baseline_fp


def test_metrics_registry_records_without_tracing():
    """The always-on registry must see the workload even when tracing is off."""
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=4, threads=1,
                         cache_pages=256, **METHOD_OPTIONS["chunk"])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        for keywords, k, conjunctive in _PROBES:
            index.search(keywords, k=k, conjunctive=conjunctive)
        metrics = index.router.metrics
        assert metrics.counter_value("query.count") == len(_PROBES)
        hist = metrics.histogram("query.latency_ms")
        assert hist is not None and hist.count == len(_PROBES)
        assert metrics.counter_value("query.postings_scanned") > 0
    finally:
        index.close()


def test_fanout_records_per_shard_series():
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=4, threads=4,
                         cache_pages=256, **METHOD_OPTIONS["chunk"])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        for keywords, k, conjunctive in _PROBES:
            index.search(keywords, k=k, conjunctive=conjunctive)
        metrics = index.router.metrics
        per_shard = sum(
            metrics.counter_value("shard.postings_scanned", shard=shard)
            for shard in range(4)
        )
        assert per_shard == metrics.counter_value("query.postings_scanned")
        assert per_shard > 0
    finally:
        index.close()


def test_list_cache_counts_aggregate_per_shard():
    """Satellite: list-cache hit/miss counts land on race-free shard series."""
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=4, threads=4,
                         cache_pages=256, list_cache_pages=8,
                         **METHOD_OPTIONS["chunk"])
    try:
        for doc_id, terms, score in corpus:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()
        for _ in range(2):  # second pass serves from the cache
            for keywords, k, conjunctive in _PROBES:
                index.search(keywords, k=k, conjunctive=conjunctive)
        metrics = index.router.metrics
        cache = index.index.list_cache
        registry_hits = sum(
            metrics.counter_value("list_cache.hits", shard=shard)
            for shard in range(4)
        )
        registry_misses = sum(
            metrics.counter_value("list_cache.misses", shard=shard)
            for shard in range(4)
        )
        assert registry_hits == cache.stats.hits > 0
        assert registry_misses == cache.stats.misses > 0
    finally:
        index.close()


# ---------------------------------------------------------------------------
# Experiment harnesses: fig7 / table1 fingerprints under tracing
# ---------------------------------------------------------------------------

_FIG7_WALL_COLUMNS = ("avg_update_ms", "avg_query_ms")
_TABLE1_WALL_COLUMNS = ("build_seconds",)


def _strip(rows, wall_columns):
    return [
        {key: value for key, value in row.items() if key not in wall_columns}
        for row in rows
    ]


def test_fig7_io_columns_identical_under_tracing():
    from repro.bench.experiments import fig7_varying_updates
    from repro.bench.runner import BenchScale

    scale = BenchScale.smoke()
    previous = set_tracing(False)
    try:
        baseline = fig7_varying_updates(scale, update_counts=(0, 100))
        set_tracing(True)
        traced = fig7_varying_updates(scale, update_counts=(0, 100))
    finally:
        set_tracing(previous)
        SLOW_QUERIES.clear()
    assert _strip(traced, _FIG7_WALL_COLUMNS) == _strip(baseline, _FIG7_WALL_COLUMNS)


def test_table1_sizes_identical_under_tracing():
    from repro.bench.experiments import table1_index_sizes
    from repro.bench.runner import BenchScale

    scale = BenchScale.smoke()
    previous = set_tracing(False)
    try:
        baseline = table1_index_sizes(scale)
        set_tracing(True)
        traced = table1_index_sizes(scale)
    finally:
        set_tracing(previous)
    assert _strip(traced, _TABLE1_WALL_COLUMNS) == _strip(baseline, _TABLE1_WALL_COLUMNS)
