"""Structured event log: ring semantics plus the engine emission sites."""

from __future__ import annotations

import random

import pytest

from repro.core.text_index import SVRTextIndex
from repro.obs.events import EVENTS, EventLog, emit
from repro.storage.faults import DEFAULT_RETRY_BUDGET, FaultPlan, FaultSpec
from tests.conftest import METHOD_OPTIONS, make_corpus


@pytest.fixture(autouse=True)
def clean_events():
    EVENTS.clear()
    yield
    EVENTS.clear()


class TestEventLogUnit:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("quarantine", shard=1, reason="x")
        log.emit("reopen", shard=1)
        log.emit("quarantine", shard=2, reason="y")
        assert len(log) == 3
        assert [e.shard for e in log.events(kind="quarantine")] == [1, 2]
        assert [e.kind for e in log.events(shard=1)] == ["quarantine", "reopen"]

    def test_sequence_numbers_are_monotonic(self):
        log = EventLog()
        seqs = [log.emit("x").seq for _ in range(5)]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5

    def test_ring_capacity(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.emit("tick", n=index)
        kept = log.events()
        assert len(kept) == 3
        assert [e.fields["n"] for e in kept] == [7, 8, 9]

    def test_to_dict_flattens_fields(self):
        log = EventLog()
        event = log.emit("checkpoint", shard=0, batch=4)
        data = event.to_dict()
        assert data["kind"] == "checkpoint" and data["batch"] == 4

    def test_module_level_emit_targets_global_log(self):
        emit("custom", shard=None, note="hello")
        assert EVENTS.events(kind="custom")[0].fields["note"] == "hello"


def _durable_index(tmp_path, shards=4):
    corpus = make_corpus(random.Random(97), num_docs=40, vocabulary=25)
    index = SVRTextIndex(method="chunk", shards=shards, cache_pages=256,
                         path=str(tmp_path / "idx"),
                         **METHOD_OPTIONS["chunk"])
    for doc_id, terms, score in corpus:
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    index.checkpoint()
    return index


class TestEngineEmissionSites:
    # Lifecycle events emitted while a router is alive land in the
    # *router-owned* log (``index.router.events``), not the process-global
    # stream: two engines in one process must not interleave their histories.
    def test_quarantine_and_reopen_events(self, tmp_path):
        index = _durable_index(tmp_path)
        try:
            index.router.events.clear()
            index.router.quarantine_shard(2, "injected for test")
            # Re-quarantining an already-quarantined shard must not re-emit.
            index.router.quarantine_shard(2, "again")
            quarantines = index.router.events.events(kind="quarantine")
            assert len(quarantines) == 1
            assert quarantines[0].shard == 2
            assert quarantines[0].fields["reason"] == "injected for test"
            assert index.router.metrics.counter_value(
                "shard.quarantined", shard=2) == 1.0

            index.reopen_shard(2)
            reopens = index.router.events.events(kind="reopen")
            assert len(reopens) == 1 and reopens[0].shard == 2
            assert reopens[0].fields["lifted_quarantine"] is True
            assert index.router.metrics.counter_value(
                "shard.reopened", shard=2) == 1.0
            # Nothing leaked into the process-global stream.
            assert not EVENTS.events(kind="quarantine")
            assert not EVENTS.events(kind="reopen")
        finally:
            index.close()

    def test_checkpoint_events_carry_shard_tags(self, tmp_path):
        index = _durable_index(tmp_path)
        try:
            # Bootstrap folds predate the router (no sink yet) and land in
            # the global stream; clear both so only the checkpoint under
            # test is visible.
            index.router.events.clear()
            EVENTS.clear()
            index.checkpoint()
            checkpoints = index.router.events.events(kind="checkpoint")
            assert {e.shard for e in checkpoints} == {0, 1, 2, 3}
            assert not EVENTS.events(kind="checkpoint")
        finally:
            index.close()

    def test_event_logs_are_scoped_per_engine(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = _durable_index(tmp_path / "a", shards=2)
        b = _durable_index(tmp_path / "b", shards=2)
        try:
            a.router.events.clear()
            b.router.events.clear()
            a.router.quarantine_shard(1, "only engine a")
            assert [e.kind for e in a.router.events.events()] == ["quarantine"]
            assert not b.router.events.events()
        finally:
            a.close()
            b.close()

    def test_event_log_capacity_from_environ(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_LOG_CAP", "3")
        index = _durable_index(tmp_path)
        try:
            log = index.router.events
            log.clear()
            for n in range(10):
                log.emit("tick", n=n)
            assert [e.fields["n"] for e in log.events()] == [7, 8, 9]
        finally:
            index.close()

    def test_recovery_event_on_open(self, tmp_path):
        index = _durable_index(tmp_path)
        index.commit()
        index.close()
        EVENTS.clear()
        recovered = SVRTextIndex.open(str(tmp_path / "idx"))
        try:
            recoveries = EVENTS.events(kind="recovery")
            assert len(recoveries) == 4  # one per shard directory
            for event in recoveries:
                assert event.fields["batch"] >= 1
        finally:
            recovered.close()

    def test_fault_escalation_event(self, tmp_path):
        index = _durable_index(tmp_path, shards=2)
        try:
            EVENTS.clear()
            # One retry-exhausting run of read failures escalates to a hard
            # fault, which the router turns into a quarantine.
            index.env.shards[1].inject_faults(FaultPlan(
                specs=(FaultSpec(op="read", kind="transient", at=0,
                                 run=DEFAULT_RETRY_BUDGET + 1),),
            ), shard=1)
            index.drop_long_list_cache()
            index.search(["w001", "w004"], k=5, conjunctive=False)
            escalations = EVENTS.events(kind="fault_escalation")
            assert escalations, "exhausted retries must emit an escalation"
            assert escalations[0].fields["op"] == "read"
            assert escalations[0].fields["retries"] >= 1
        finally:
            index.clear_faults()
            index.close()
