"""Unit layer of the observability package: percentile, histogram, registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError, WorkloadError
from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LatencyHistogram,
    percentile,
)
from repro.obs.metrics import MetricsRegistry, render_series


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([5.0], 0.99) == 5.0

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.5) == 51  # round(0.5 * 99) = 50 -> index 50

    def test_out_of_range_fraction(self):
        with pytest.raises(ObservabilityError):
            percentile([1.0], 1.5)

    def test_service_wrapper_keeps_workload_error(self):
        # The workloads module re-exports the same implementation but must
        # keep raising WorkloadError (its long-standing error contract).
        from repro.workloads.service import percentile as service_percentile

        assert service_percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        with pytest.raises(WorkloadError):
            service_percentile([1.0], 2.0)


class TestLatencyHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError):
            LatencyHistogram(())
        with pytest.raises(ObservabilityError):
            LatencyHistogram((1.0, 1.0))

    def test_observe_tracks_extremes_and_mean(self):
        hist = LatencyHistogram((1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.5 and hist.max == 20.0
        assert hist.mean == pytest.approx(22.5 / 3)
        assert hist.counts == [1, 1, 1]  # one per bucket incl. overflow

    def test_quantile_is_bucket_granular_and_clamped(self):
        hist = LatencyHistogram((1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(0.7)
        hist.observe(42.0)
        # Quantiles report the bucket's upper bound, clamped to the max seen.
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == min(100.0, hist.max)
        assert hist.quantile(0.0) == 1.0

    def test_quantile_overflow_bucket_reports_max(self):
        hist = LatencyHistogram((1.0,))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.quantile(0.99) == 70.0

    def test_merge(self):
        a = LatencyHistogram((1.0, 10.0))
        b = LatencyHistogram((1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(0.2)
        a.merge(b)
        assert a.count == 3
        assert a.min == 0.2 and a.max == 5.0
        with pytest.raises(ObservabilityError):
            a.merge(LatencyHistogram((2.0,)))

    def test_snapshot_buckets_are_cumulative(self):
        hist = LatencyHistogram((1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == [(1.0, 2), (10.0, 3)]
        assert snap["p999"] == 100.0

    def test_default_bounds_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)


class TestMetricsRegistry:
    def test_counters_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("query.count")
        registry.inc("query.count", value=2.0)
        registry.inc("shard.pages_read", value=5.0, shard=3)
        assert registry.counter_value("query.count") == 3.0
        assert registry.counter_value("shard.pages_read", shard=3) == 5.0
        assert registry.counter_value("shard.pages_read", shard=0) == 0.0

    def test_add_many_is_one_series_per_name(self):
        registry = MetricsRegistry()
        registry.add_many({"a": 1.0, "b": 2.0}, shard=1)
        registry.add_many({"a": 0.5}, shard=1)
        assert registry.counter_value("a", shard=1) == 1.5
        assert registry.counter_value("b", shard=1) == 2.0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("bench.ops", 10.0)
        registry.set_gauge("bench.ops", 20.0)
        assert registry.gauge_value("bench.ops") == 20.0

    def test_observe_feeds_histogram(self):
        registry = MetricsRegistry(histogram_bounds=(1.0, 10.0))
        registry.observe("query.latency_ms", 0.5)
        registry.observe("query.latency_ms", 5.0)
        hist = registry.histogram("query.latency_ms")
        assert hist is not None and hist.count == 2

    def test_snapshot_renders_series_names(self):
        registry = MetricsRegistry()
        registry.inc("list_cache.hits", shard=2)
        registry.set_gauge("bench.ops", 1.0)
        registry.observe("query.latency_ms", 3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"list_cache.hits{shard=2}": 1.0}
        assert snap["gauges"] == {"bench.ops": 1.0}
        assert "query.latency_ms" in snap["histograms"]

    def test_series_handles_mixed_label_types(self):
        registry = MetricsRegistry()
        registry.inc("x", shard=1)
        registry.inc("x", shard="spill")  # mixed int/str labels must not TypeError
        kinds = [item[0] for item in registry.series()]
        assert kinds == ["counter", "counter"]

    def test_render_series(self):
        assert render_series("a.b", ()) == "a.b"
        assert render_series("a.b", (("shard", 3),)) == "a.b{shard=3}"

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.clear()
        assert registry.counter_value("a") == 0.0

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        per_thread = 2000

        def work(shard):
            for _ in range(per_thread):
                registry.add_many({"hits": 1.0}, shard=shard)

        threads = [threading.Thread(target=work, args=(i % 2,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = (registry.counter_value("hits", shard=0)
                 + registry.counter_value("hits", shard=1))
        assert total == 4 * per_thread
