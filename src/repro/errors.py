"""Exception hierarchy for the SVR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around calls into
the library.  Sub-hierarchies mirror the package layout: storage errors,
relational errors, text errors and index/query errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageError(StorageError):
    """A page could not be read, written or decoded."""


class PageNotFoundError(PageError):
    """A page id does not exist on the simulated disk."""


class BufferPoolError(StorageError):
    """The buffer pool was used incorrectly (e.g. invalid capacity)."""


class KeyNotFoundError(StorageError):
    """A key lookup in a B+-tree or key-value store found nothing."""


class DuplicateKeyError(StorageError):
    """An insert would violate a unique-key constraint."""


class StoreClosedError(StorageError):
    """An operation was attempted on a closed store or environment."""


class TransientIOError(StorageError):
    """A storage operation failed in a way that is expected to succeed on
    retry (injected or real transient I/O failure, failed fsync, torn append).

    The retry machinery (:func:`repro.storage.faults.run_with_retries`)
    consumes these internally; callers only ever see one escalated to
    :class:`RetryExhaustedError` after the retry budget.
    """


class RetryExhaustedError(StorageError):
    """A transient fault persisted past the bounded retry budget.

    Carries an optional ``shard`` attribute naming the failure domain when
    the fault originated inside a sharded environment (used by the router to
    quarantine the shard).
    """

    shard: "int | None" = None


class DiskFullError(StorageError):
    """The backend ran out of space (ENOSPC-class hard fault, not retried)."""

    shard: "int | None" = None


class ChecksumError(PageError):
    """A page image read from ``pages.dat`` failed its per-page checksum.

    Raised at read/scrub time so silent bit-rot surfaces as a typed storage
    error instead of pickle garbage in some higher layer.
    """

    shard: "int | None" = None


class CommitError(StorageError):
    """A group commit could not be made durable.

    The batch is rolled back to the pre-commit WAL state: nothing was
    half-applied, the writes stay uncommitted in memory, and the commit may
    be retried (or the environment crashed and recovered to the previous
    commit boundary).
    """

    shard: "int | None" = None


class ShardQuarantinedError(StorageError):
    """An operation touched a shard that is quarantined after a hard fault.

    Raised *before* any state is mutated, so failing fast is atomic; reopen
    the shard (or recover the environment) to re-admit it.
    """

    shard: "int | None" = None


#: Error types that mark a shard's storage as untrustworthy: the router
#: quarantines the owning shard when one of these carries a shard tag.
HARD_FAULT_ERRORS = (RetryExhaustedError, DiskFullError, ChecksumError, CommitError)


def shard_of_error(error: BaseException) -> "int | None":
    """The failure-domain (shard index) tag of an error, when present."""
    shard = getattr(error, "shard", None)
    return shard if isinstance(shard, int) else None


# ---------------------------------------------------------------------------
# Execution layer
# ---------------------------------------------------------------------------


class ExecutorError(ReproError):
    """Base class for shard-executor failures.

    Carries an optional ``shard`` attribute when the pool can attribute the
    failure to a specific shard (quarantine attribution).
    """

    shard: "int | None" = None


class ExecutorClosedError(ExecutorError):
    """A task was submitted to an executor that is closed or whose worker died."""


class ShardTimeoutError(ExecutorError, TimeoutError):
    """Awaiting a shard task exceeded its deadline.

    Also a builtin :class:`TimeoutError`, so callers using the standard idiom
    keep working.
    """


# ---------------------------------------------------------------------------
# Relational layer
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(RelationalError):
    """A schema definition is invalid or a row does not match its schema."""


class ConstraintError(RelationalError):
    """A primary-key or not-null constraint was violated."""


class UnknownTableError(RelationalError):
    """A referenced table does not exist in the database."""


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in the table schema."""


class ViewError(RelationalError):
    """A materialised-view definition or refresh failed."""


class FunctionError(RelationalError):
    """A scalar (SQL-bodied) function failed to evaluate."""


# ---------------------------------------------------------------------------
# Text layer
# ---------------------------------------------------------------------------


class TextError(ReproError):
    """Base class for text-processing failures."""


class DocumentNotFoundError(TextError):
    """A document id is unknown to the document store."""


class TokenizationError(TextError):
    """A document could not be tokenised."""


# ---------------------------------------------------------------------------
# Core / index layer
# ---------------------------------------------------------------------------


class IndexError_(ReproError):
    """Base class for inverted-index failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as :data:`InvertedIndexError` for readability.
    """


InvertedIndexError = IndexError_


class UnknownMethodError(InvertedIndexError):
    """An index method name is not registered."""


class QueryError(InvertedIndexError):
    """A keyword query is malformed (e.g. empty keyword list, k <= 0)."""


class ScoreSpecError(ReproError):
    """An SVR score specification is invalid."""


class WorkloadError(ReproError):
    """A workload/data generator was configured with invalid parameters."""


class BenchmarkError(ReproError):
    """An experiment definition or run failed."""


class ObservabilityError(ReproError):
    """An observability component (histogram, registry, exporter) was misused."""
