"""Exception hierarchy for the SVR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around calls into
the library.  Sub-hierarchies mirror the package layout: storage errors,
relational errors, text errors and index/query errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageError(StorageError):
    """A page could not be read, written or decoded."""


class PageNotFoundError(PageError):
    """A page id does not exist on the simulated disk."""


class BufferPoolError(StorageError):
    """The buffer pool was used incorrectly (e.g. invalid capacity)."""


class KeyNotFoundError(StorageError):
    """A key lookup in a B+-tree or key-value store found nothing."""


class DuplicateKeyError(StorageError):
    """An insert would violate a unique-key constraint."""


class StoreClosedError(StorageError):
    """An operation was attempted on a closed store or environment."""


# ---------------------------------------------------------------------------
# Relational layer
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(RelationalError):
    """A schema definition is invalid or a row does not match its schema."""


class ConstraintError(RelationalError):
    """A primary-key or not-null constraint was violated."""


class UnknownTableError(RelationalError):
    """A referenced table does not exist in the database."""


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in the table schema."""


class ViewError(RelationalError):
    """A materialised-view definition or refresh failed."""


class FunctionError(RelationalError):
    """A scalar (SQL-bodied) function failed to evaluate."""


# ---------------------------------------------------------------------------
# Text layer
# ---------------------------------------------------------------------------


class TextError(ReproError):
    """Base class for text-processing failures."""


class DocumentNotFoundError(TextError):
    """A document id is unknown to the document store."""


class TokenizationError(TextError):
    """A document could not be tokenised."""


# ---------------------------------------------------------------------------
# Core / index layer
# ---------------------------------------------------------------------------


class IndexError_(ReproError):
    """Base class for inverted-index failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as :data:`InvertedIndexError` for readability.
    """


InvertedIndexError = IndexError_


class UnknownMethodError(InvertedIndexError):
    """An index method name is not registered."""


class QueryError(InvertedIndexError):
    """A keyword query is malformed (e.g. empty keyword list, k <= 0)."""


class ScoreSpecError(ReproError):
    """An SVR score specification is invalid."""


class WorkloadError(ReproError):
    """A workload/data generator was configured with invalid parameters."""


class BenchmarkError(ReproError):
    """An experiment definition or run failed."""
