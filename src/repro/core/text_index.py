"""The SVR-aware text management component.

:class:`SVRTextIndex` is the "extender/cartridge/data blade" box of Figure 2
extended for SVR: it owns the analysis pipeline, the forward index, the term
dictionary and one of the inverted-list methods, and exposes document-level
operations (add, insert, delete, content update, score update) plus top-k
keyword search.  It works directly with raw text; everything below it works
with analysed terms.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import QueryError, StorageError
from repro.core.index_router import IndexRouter, threads_from_environ
from repro.core.indexes.base import InvertedIndex, QueryResponse
from repro.core.indexes.registry import create_index
from repro.storage.environment import StorageEnvironment
from repro.storage.heap_file import HeapFile
from repro.storage.kvstore import KVStore
from repro.storage.sharding import ShardedEnvironment, ShardedHeapFile, ShardedKVStore, ShardLoad
from repro.text.analyzer import Analyzer
from repro.text.dictionary import TermDictionary
from repro.text.documents import DocumentStore
from repro.text.termscore import TermScorer

#: Attribute types excluded from the durability blob: stores are restored from
#: the storage catalog, not pickled through the application state.
_STORE_TYPES = (KVStore, HeapFile, ShardedKVStore, ShardedHeapFile)


def _capture_index_state(index: InvertedIndex) -> dict[str, Any]:
    """The method object's picklable, non-storage attributes.

    Everything an index method keeps outside the storage engine — segment
    handle maps, chunk maps, thresholds, update statistics, the finalized
    flag — rides in the commit record's application blob and is restored
    with ``setattr`` after the method is re-instantiated over the recovered
    stores.
    """
    return {
        key: value
        for key, value in vars(index).items()
        # ``list_cache`` and ``_plan_cache`` are ephemeral by design: a
        # recovered index starts with a cold hot-term cache (its entries may
        # predate the recovery point) and rebuilds its per-term scan plans.
        if key not in ("env", "documents", "list_cache", "_plan_cache")
        and not isinstance(value, _STORE_TYPES)
    }


class SVRTextIndex:
    """A text index over one text column, ranked by SVR (and optionally term) scores.

    Parameters
    ----------
    method:
        Name of the inverted-list method (see
        :func:`repro.core.indexes.registry.available_methods`).
    env:
        Storage environment; a private one is created when omitted.
    analyzer:
        Analysis pipeline; a lowercasing, stopword-free analyzer by default.
    cache_pages:
        Buffer-pool capacity used when a private environment is created.
    page_size:
        Page size (bytes) used when a private environment is created.  The
        benchmark harness shrinks it together with the corpus so that long
        inverted lists still span many pages, as they do at the paper's scale.
    shards:
        Number of term-space partitions when a private environment is created
        (ignored when ``env`` is passed).  ``1`` keeps the paper's
        single-environment engine; larger counts build a
        :class:`~repro.storage.sharding.ShardedEnvironment` whose total cache
        budget is still ``cache_pages``.
    threads:
        Worker threads for the concurrent execution subsystem (see
        :mod:`repro.exec`).  ``1`` — the serial engine, byte-for-byte.  More
        threads run queries concurrently (per-term scans fan out to the
        single-writer shard executors) and apply batched update windows as
        combined per-shard sub-batches.  Defaults to the ``REPRO_THREADS``
        environment variable (or 1); when the default comes from the
        environment the router runs in deterministic-accounting mode so
        existing I/O fingerprints hold.  ``threads > 1`` with ``shards = 1``
        still builds a (fingerprint-identical) single-shard
        ``ShardedEnvironment`` so the execution layer has store facades to
        work through.
    deterministic:
        Force (or disable) the deterministic-accounting mode explicitly; see
        :class:`~repro.core.index_router.IndexRouter`.
    path:
        Optional directory for a durable index: pages live in one file-backed
        environment (or one per shard) with a write-ahead log, and
        :meth:`commit`/:meth:`checkpoint`/:meth:`close` provide the durability
        boundaries.  Use :meth:`open` to recover an existing directory — the
        constructor refuses one that already holds an index.
    method_options:
        Extra keyword arguments forwarded to the index method's constructor
        (``chunk_ratio``, ``threshold_ratio``, ``term_weight``, ``fancy_size`` ...).
    """

    def __init__(self, method: str = "chunk",
                 env: "StorageEnvironment | ShardedEnvironment | None" = None,
                 analyzer: Analyzer | None = None, name: str = "svr",
                 cache_pages: int = 4096, page_size: int = 4096,
                 shards: int = 1, threads: int | None = None,
                 deterministic: bool | None = None, path: str | None = None,
                 **method_options: Any) -> None:
        if threads is None:
            threads = threads_from_environ()
            if deterministic is None and threads > 1:
                # The env-var route exists to rerun existing (fingerprint-
                # asserting) workloads through the concurrent plumbing.
                deterministic = True
        threads = max(1, int(threads))
        if deterministic is None:
            deterministic = False
        if env is None:
            if path is not None:
                from repro.storage.persistence import is_environment_dir
                import os

                if os.path.isdir(path) and is_environment_dir(path):
                    raise StorageError(
                        f"{path!r} already holds a persistent index; "
                        "use SVRTextIndex.open() to recover it"
                    )
            if shards <= 1 and threads <= 1:
                env = StorageEnvironment(
                    cache_pages=cache_pages, page_size=page_size, path=path
                )
            else:
                # threads > 1 needs the facade layer even at one shard; the
                # single-shard sharded environment is fingerprint-identical
                # to the plain one (pinned by the shard-invariance suite).
                env = ShardedEnvironment(
                    shard_count=max(1, shards), cache_pages=cache_pages,
                    page_size=page_size, path=path,
                )
        elif path is not None:
            raise StorageError("pass either env= or path=, not both")
        self.env = env
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.documents = DocumentStore()
        self.dictionary = TermDictionary()
        self.term_scorer = TermScorer(self.documents, self.dictionary)
        self._method_options = dict(method_options)
        self._name = name
        self.index: InvertedIndex = create_index(
            method, self.env, self.documents, name=name, **method_options
        )
        self.router = IndexRouter(self.index, threads=threads,
                                  deterministic=deterministic)
        self._obs_server = self._maybe_serve_observability()

    # -- durability ---------------------------------------------------------------

    @classmethod
    def open(cls, path: str, cache_pages: int | None = None,
             threads: int | None = None,
             deterministic: bool | None = None) -> "SVRTextIndex":
        """Recover a durable index to its last committed batch boundary.

        Replays each environment's write-ahead log onto its paged file,
        restores the stores from the storage catalog and the text-layer state
        (documents, dictionary, analyzer, method bookkeeping) from the
        application blob committed with that batch.  Contents and top-k
        answers equal exactly the state at the last :meth:`commit` (or
        :meth:`checkpoint`/:meth:`close`) — uncommitted work is gone.
        """
        from repro.storage.persistence import open_any_environment

        if threads is None:
            threads = threads_from_environ()
            if deterministic is None and threads > 1:
                deterministic = True
        if deterministic is None:
            deterministic = False
        env = open_any_environment(path, cache_pages=cache_pages)
        blob = env.recovered_app_state
        if not isinstance(blob, dict) or blob.get("kind") != "svr-text-index":
            raise StorageError(
                f"{path!r} holds no SVRTextIndex application state; "
                "was the environment committed through the index facade?"
            )
        self = cls.__new__(cls)
        self.env = env
        self.analyzer = blob["analyzer"]
        self.documents = blob["documents"]
        self.dictionary = blob["dictionary"]
        self.term_scorer = TermScorer(self.documents, self.dictionary)
        self._method_options = dict(blob["options"])
        self._name = blob["name"]
        self.index = create_index(
            blob["method"], env, self.documents, name=blob["name"],
            **blob["options"]
        )
        for key, value in blob["index_state"].items():
            setattr(self.index, key, value)
        self.router = IndexRouter(self.index, threads=threads,
                                  deterministic=deterministic)
        self._obs_server = self._maybe_serve_observability()
        return self

    @property
    def durable(self) -> bool:
        """Whether the index persists to files."""
        return getattr(self.env, "durable", False)

    def _app_blob(self) -> dict[str, Any]:
        return {
            "kind": "svr-text-index",
            "version": 1,
            "method": self.index.method_name,
            "options": self._method_options,
            "name": self._name,
            "analyzer": self.analyzer,
            "documents": self.documents,
            "dictionary": self.dictionary,
            "index_state": _capture_index_state(self.index),
        }

    def commit(self) -> int:
        """Group-commit everything since the last durability boundary.

        On a memory-backed index this only flushes the buffer pool (charged
        identically on every backend, keeping I/O fingerprints comparable).
        Quarantined shards are skipped (a *degraded* commit): they fall
        behind the commit point and catch up after :meth:`reopen_shard`.
        Returns the committed batch id.
        """
        with self.router.exclusive():
            app = self._app_blob() if self.durable else None
            skip = self.router.quarantined_shards()
            if skip and isinstance(self.env, ShardedEnvironment):
                return self.env.commit(app_state=app, skip=skip)
            return self.env.commit(app_state=app)

    def checkpoint(self) -> int:
        """Commit, then fold the write-ahead log into the paged file(s).

        Quarantined shards are skipped, exactly as in :meth:`commit`.
        """
        with self.router.exclusive():
            app = self._app_blob() if self.durable else None
            skip = self.router.quarantined_shards()
            if skip and isinstance(self.env, ShardedEnvironment):
                return self.env.checkpoint(app_state=app, skip=skip)
            return self.env.checkpoint(app_state=app)

    def close(self) -> None:
        """Checkpoint (when durable) and release all file handles, idempotently.

        Also joins the concurrent execution subsystem's worker threads (a
        no-op on the serial engine); the executor pool drains before the
        environment closes, so no shard task can outlive its storage.
        Quarantined shards are crash-closed rather than checkpointed — their
        in-memory state is untrustworthy, and their durable state must stay
        at the last commit they participated in.
        """
        self._stop_observability_server()
        self.router.shutdown()
        if (self.durable and not self.env.closed
                and isinstance(self.env, ShardedEnvironment)):
            for shard in self.router.quarantined_shards():
                self.env.shards[shard].crash()
        app = self._app_blob() if self.durable and not self.env.closed else None
        self.env.close(app_state=app)

    def crash(self) -> None:
        """Simulate a crash: drop file handles, committing nothing.

        Everything since the last :meth:`commit` is lost; :meth:`open`
        recovers the committed prefix.
        """
        self._stop_observability_server()
        self.router.shutdown()
        self.env.crash()

    def __enter__(self) -> "SVRTextIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.durable:
            self.crash()
        else:
            self.close()

    # -- convenience properties ---------------------------------------------------

    @property
    def method(self) -> str:
        """Name of the underlying index method."""
        return self.router.method_name

    @property
    def shard_count(self) -> int:
        """Number of storage shards backing the term space (1 = classic engine)."""
        return self.router.shard_count

    @property
    def threads(self) -> int:
        """Worker threads of the execution subsystem (1 = serial engine)."""
        return self.router.threads

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard buffer-pool load and skew (see :class:`ShardLoad`)."""
        return self.router.shard_load()

    # -- fault injection & failure domains ------------------------------------------

    def inject_faults(self, plan: Any) -> None:
        """Attach a :class:`~repro.storage.faults.FaultPlan` to the storage."""
        self.env.inject_faults(plan)

    def clear_faults(self) -> None:
        """Detach all fault injectors."""
        self.env.clear_faults()

    def fault_stats(self) -> Any:
        """Aggregated injector statistics (``None`` when nothing is attached)."""
        return self.env.fault_stats()

    def scrub(self) -> Any:
        """Checksum-verify data at rest (see ``StorageEnvironment.scrub``)."""
        return self.env.scrub()

    # -- observability ---------------------------------------------------------------

    def _maybe_serve_observability(self):
        """Start the live monitoring endpoint when ``REPRO_OBS_HTTP_PORT`` asks.

        Returns the server handle (stopped by :meth:`close`/:meth:`crash`)
        or ``None`` — the default — when the variable is unset.
        """
        from repro.obs.http import http_port_from_environ

        port = http_port_from_environ()
        if port is None:
            return None
        from repro.obs.http import serve_observability

        return serve_observability(self, port=port)

    def _stop_observability_server(self) -> None:
        if getattr(self, "_obs_server", None) is not None:
            self._obs_server.close()
            self._obs_server = None

    def serve_observability(self, port: int = 0,
                            host: str = "127.0.0.1"):
        """Start (and return) a live monitoring endpoint for this engine.

        See :mod:`repro.obs.http` for the routes.  The returned handle's
        ``close()`` stops the listener; an endpoint started here is also
        stopped by :meth:`close`/:meth:`crash` if still attached.
        """
        from repro.obs.http import serve_observability

        self._stop_observability_server()
        self._obs_server = serve_observability(self, port=port, host=host)
        return self._obs_server

    def observability(self) -> dict:
        """One structured snapshot of the whole engine's observable state.

        Metrics registry, per-shard lifetime I/O, list-cache occupancy, WAL
        and fault counters, shard health, recent events and slow queries —
        everything the :mod:`repro.obs.dump` CLI renders.  Reading it
        performs no storage accesses (counter reads only).
        """
        from repro.obs.snapshot import observability_snapshot

        return observability_snapshot(self)

    @property
    def degraded(self) -> bool:
        """Whether quarantined shards are making answers partial."""
        return self.router.degraded

    def shard_health(self) -> list:
        """Per-shard quarantine status (see :class:`~repro.core.index_router.ShardHealth`)."""
        return self.router.shard_health()

    def quarantined_shards(self) -> tuple[int, ...]:
        """Indices of quarantined shards, ascending."""
        return self.router.quarantined_shards()

    def reopen_shard(self, shard: int) -> None:
        """Recover a quarantined shard from checkpoint + WAL and re-admit it."""
        self.router.reopen_shard(shard)

    @property
    def finalized(self) -> bool:
        """Whether the bulk build has been finalized."""
        return self.router.finalized

    def document_count(self) -> int:
        """Number of live documents."""
        return self.router.document_count()

    def current_score(self, doc_id: int) -> float | None:
        """Latest SVR score of a document (``None`` when unknown or deleted)."""
        return self.router.current_score(doc_id)

    def current_scores(self, doc_ids: "Iterable[int]") -> dict[int, float]:
        """Latest scores for several documents (one lock round trip when
        concurrent); unknown and deleted documents are omitted."""
        return self.router.current_scores(doc_ids)

    # -- build ----------------------------------------------------------------------

    def add_document(self, doc_id: int, text: str, score: float) -> None:
        """Stage a document (raw text) with its initial SVR score."""
        self.add_document_terms(doc_id, self.analyzer.analyze(text), score)

    def add_document_terms(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        """Stage a pre-analysed document (term sequence) with its initial SVR score.

        The synthetic workloads generate term sequences directly; this entry
        point skips the tokenisation pass they do not need.
        """
        self.documents.add_terms(doc_id, terms)
        self.dictionary.add_document_terms(self.documents.get(doc_id).distinct_terms)
        self.router.add_document(doc_id, score)

    def finalize(self) -> None:
        """Build the long inverted lists; required before updates and queries."""
        self.router.finalize()

    # -- updates ----------------------------------------------------------------------

    def update_score(self, doc_id: int, new_score: float) -> None:
        """Record a new SVR score for a document."""
        self.router.update_score(doc_id, new_score)

    def apply_score_updates(self, updates: "Iterable[tuple[int, float]]") -> int:
        """Apply a window of ``(doc_id, new_score)`` updates as one batch.

        Semantically identical to calling :meth:`update_score` per pair in
        order, but the underlying index groups the write work per term and
        applies it through bulk B+-tree passes (see
        :meth:`repro.core.indexes.base.InvertedIndex.apply_batch`).  Returns
        the number of updates applied.
        """
        return self.router.apply_batch(updates)

    def insert_document(self, doc_id: int, text: str, score: float) -> None:
        """Insert a new document after the index has been built."""
        self.insert_document_terms(doc_id, self.analyzer.analyze(text), score)

    def insert_document_terms(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        """Insert a pre-analysed document after the index has been built."""
        self.router.insert_document(doc_id, terms, score)
        self.dictionary.add_document_terms(self.documents.get(doc_id).distinct_terms)

    def delete_document(self, doc_id: int) -> None:
        """Delete a document (it stops appearing in query results immediately)."""
        old_terms = self.documents.get(doc_id).distinct_terms
        self.router.delete_document(doc_id)
        self.dictionary.remove_document_terms(old_terms)

    def update_content(self, doc_id: int, new_text: str) -> None:
        """Replace a document's text content."""
        old_terms = self.documents.get(doc_id).distinct_terms
        new_terms = self.analyzer.analyze(new_text)
        self.router.update_content(doc_id, new_terms)
        self.dictionary.update_document_terms(old_terms, self.documents.get(doc_id).distinct_terms)

    # -- queries -----------------------------------------------------------------------

    def search(self, query: str | Iterable[str], k: int = 10,
               conjunctive: bool = True) -> QueryResponse:
        """Top-k keyword search ranked by the latest scores.

        ``query`` may be a raw string (analysed with the same pipeline as the
        documents) or an iterable of keywords.
        """
        if isinstance(query, str):
            keywords = self.analyzer.normalize_query_terms([query])
        else:
            keywords = self.analyzer.normalize_query_terms(query)
        if not keywords:
            raise QueryError("the query contains no indexable keywords")
        return self.router.query(keywords, k=k, conjunctive=conjunctive)

    def explain(self, query: str | Iterable[str], k: int = 10,
                conjunctive: bool = True, analyze: bool = False) -> dict:
        """EXPLAIN (or EXPLAIN ANALYZE) a query without — or with — running it.

        Mirrors :meth:`search` exactly on the input side (same analyzer
        normalization, same validation errors).  ``analyze=False`` describes
        the plan from planner state and the accounting-free peek path only —
        zero accounted storage accesses.  ``analyze=True`` executes the query
        through the identical :meth:`IndexRouter.query` path and grafts the
        actuals (scanned vs estimated postings, skip decisions with their
        heap-threshold floors, per-shard latency and I/O splits) onto the
        plan; the embedded results are bit-identical to :meth:`search`.
        See :mod:`repro.obs.explain`.
        """
        if isinstance(query, str):
            keywords = self.analyzer.normalize_query_terms([query])
        else:
            keywords = self.analyzer.normalize_query_terms(query)
        if not keywords:
            raise QueryError("the query contains no indexable keywords")
        from repro.obs.explain import explain_query

        return explain_query(self, keywords, k=k, conjunctive=conjunctive,
                             analyze=analyze)

    def tfidf_score(self, query: str | Iterable[str], doc_id: int) -> float:
        """Traditional TF-IDF score of a document for a query (the paper's baseline)."""
        if isinstance(query, str):
            keywords = self.analyzer.normalize_query_terms([query])
        else:
            keywords = self.analyzer.normalize_query_terms(query)
        return self.term_scorer.query_tfidf(keywords, doc_id)

    # -- measurement hooks ------------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        """Serialized size of the long inverted lists (Table 1)."""
        return self.router.long_list_size_bytes()

    def drop_long_list_cache(self) -> None:
        """Evict long-list pages to start the next query from a cold cache (§5.2)."""
        self.router.drop_long_list_cache()
