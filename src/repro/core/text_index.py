"""The SVR-aware text management component.

:class:`SVRTextIndex` is the "extender/cartridge/data blade" box of Figure 2
extended for SVR: it owns the analysis pipeline, the forward index, the term
dictionary and one of the inverted-list methods, and exposes document-level
operations (add, insert, delete, content update, score update) plus top-k
keyword search.  It works directly with raw text; everything below it works
with analysed terms.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import QueryError
from repro.core.index_router import IndexRouter
from repro.core.indexes.base import InvertedIndex, QueryResponse
from repro.core.indexes.registry import create_index
from repro.storage.environment import StorageEnvironment
from repro.storage.sharding import ShardedEnvironment, ShardLoad
from repro.text.analyzer import Analyzer
from repro.text.dictionary import TermDictionary
from repro.text.documents import DocumentStore
from repro.text.termscore import TermScorer


class SVRTextIndex:
    """A text index over one text column, ranked by SVR (and optionally term) scores.

    Parameters
    ----------
    method:
        Name of the inverted-list method (see
        :func:`repro.core.indexes.registry.available_methods`).
    env:
        Storage environment; a private one is created when omitted.
    analyzer:
        Analysis pipeline; a lowercasing, stopword-free analyzer by default.
    cache_pages:
        Buffer-pool capacity used when a private environment is created.
    page_size:
        Page size (bytes) used when a private environment is created.  The
        benchmark harness shrinks it together with the corpus so that long
        inverted lists still span many pages, as they do at the paper's scale.
    shards:
        Number of term-space partitions when a private environment is created
        (ignored when ``env`` is passed).  ``1`` keeps the paper's
        single-environment engine; larger counts build a
        :class:`~repro.storage.sharding.ShardedEnvironment` whose total cache
        budget is still ``cache_pages``.
    method_options:
        Extra keyword arguments forwarded to the index method's constructor
        (``chunk_ratio``, ``threshold_ratio``, ``term_weight``, ``fancy_size`` ...).
    """

    def __init__(self, method: str = "chunk",
                 env: "StorageEnvironment | ShardedEnvironment | None" = None,
                 analyzer: Analyzer | None = None, name: str = "svr",
                 cache_pages: int = 4096, page_size: int = 4096,
                 shards: int = 1, **method_options: Any) -> None:
        if env is None:
            if shards <= 1:
                env = StorageEnvironment(cache_pages=cache_pages, page_size=page_size)
            else:
                env = ShardedEnvironment(
                    shard_count=shards, cache_pages=cache_pages, page_size=page_size
                )
        self.env = env
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.documents = DocumentStore()
        self.dictionary = TermDictionary()
        self.term_scorer = TermScorer(self.documents, self.dictionary)
        self.index: InvertedIndex = create_index(
            method, self.env, self.documents, name=name, **method_options
        )
        self.router = IndexRouter(self.index)

    # -- convenience properties ---------------------------------------------------

    @property
    def method(self) -> str:
        """Name of the underlying index method."""
        return self.router.method_name

    @property
    def shard_count(self) -> int:
        """Number of storage shards backing the term space (1 = classic engine)."""
        return self.router.shard_count

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard buffer-pool load and skew (see :class:`ShardLoad`)."""
        return self.router.shard_load()

    @property
    def finalized(self) -> bool:
        """Whether the bulk build has been finalized."""
        return self.router.finalized

    def document_count(self) -> int:
        """Number of live documents."""
        return self.router.document_count()

    def current_score(self, doc_id: int) -> float | None:
        """Latest SVR score of a document (``None`` when unknown or deleted)."""
        return self.router.current_score(doc_id)

    # -- build ----------------------------------------------------------------------

    def add_document(self, doc_id: int, text: str, score: float) -> None:
        """Stage a document (raw text) with its initial SVR score."""
        self.add_document_terms(doc_id, self.analyzer.analyze(text), score)

    def add_document_terms(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        """Stage a pre-analysed document (term sequence) with its initial SVR score.

        The synthetic workloads generate term sequences directly; this entry
        point skips the tokenisation pass they do not need.
        """
        self.documents.add_terms(doc_id, terms)
        self.dictionary.add_document_terms(self.documents.get(doc_id).distinct_terms)
        self.router.add_document(doc_id, score)

    def finalize(self) -> None:
        """Build the long inverted lists; required before updates and queries."""
        self.router.finalize()

    # -- updates ----------------------------------------------------------------------

    def update_score(self, doc_id: int, new_score: float) -> None:
        """Record a new SVR score for a document."""
        self.router.update_score(doc_id, new_score)

    def apply_score_updates(self, updates: "Iterable[tuple[int, float]]") -> int:
        """Apply a window of ``(doc_id, new_score)`` updates as one batch.

        Semantically identical to calling :meth:`update_score` per pair in
        order, but the underlying index groups the write work per term and
        applies it through bulk B+-tree passes (see
        :meth:`repro.core.indexes.base.InvertedIndex.apply_batch`).  Returns
        the number of updates applied.
        """
        return self.router.apply_batch(updates)

    def insert_document(self, doc_id: int, text: str, score: float) -> None:
        """Insert a new document after the index has been built."""
        self.insert_document_terms(doc_id, self.analyzer.analyze(text), score)

    def insert_document_terms(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        """Insert a pre-analysed document after the index has been built."""
        self.router.insert_document(doc_id, terms, score)
        self.dictionary.add_document_terms(self.documents.get(doc_id).distinct_terms)

    def delete_document(self, doc_id: int) -> None:
        """Delete a document (it stops appearing in query results immediately)."""
        old_terms = self.documents.get(doc_id).distinct_terms
        self.router.delete_document(doc_id)
        self.dictionary.remove_document_terms(old_terms)

    def update_content(self, doc_id: int, new_text: str) -> None:
        """Replace a document's text content."""
        old_terms = self.documents.get(doc_id).distinct_terms
        new_terms = self.analyzer.analyze(new_text)
        self.router.update_content(doc_id, new_terms)
        self.dictionary.update_document_terms(old_terms, self.documents.get(doc_id).distinct_terms)

    # -- queries -----------------------------------------------------------------------

    def search(self, query: str | Iterable[str], k: int = 10,
               conjunctive: bool = True) -> QueryResponse:
        """Top-k keyword search ranked by the latest scores.

        ``query`` may be a raw string (analysed with the same pipeline as the
        documents) or an iterable of keywords.
        """
        if isinstance(query, str):
            keywords = self.analyzer.normalize_query_terms([query])
        else:
            keywords = self.analyzer.normalize_query_terms(query)
        if not keywords:
            raise QueryError("the query contains no indexable keywords")
        return self.router.query(keywords, k=k, conjunctive=conjunctive)

    def tfidf_score(self, query: str | Iterable[str], doc_id: int) -> float:
        """Traditional TF-IDF score of a document for a query (the paper's baseline)."""
        if isinstance(query, str):
            keywords = self.analyzer.normalize_query_terms([query])
        else:
            keywords = self.analyzer.normalize_query_terms(query)
        return self.term_scorer.query_tfidf(keywords, doc_id)

    # -- measurement hooks ------------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        """Serialized size of the long inverted lists (Table 1)."""
        return self.router.long_list_size_bytes()

    def drop_long_list_cache(self) -> None:
        """Evict long-list pages to start the next query from a cold cache (§5.2)."""
        self.router.drop_long_list_cache()
