"""Posting representations and binary codecs for long inverted lists.

Long inverted lists are immutable binary objects read a page at a time (§5.2),
so their byte layout determines both Table 1 (index sizes) and the number of
pages a query scan touches.  This module provides:

* varint and zig-zag integer encoding helpers,
* the ID-ordered codec used by the ID / ID-TermScore methods (delta-encoded
  document ids, optional per-posting term score),
* the score-ordered codec used by the Score-Threshold method (document id plus
  full document score per posting, no delta compression — reproducing the
  paper's observation that Score-Threshold lists are several times larger), and
* the chunked codec used by the Chunk / Chunk-TermScore methods (chunk id
  stored once per chunk, document ids delta-encoded within the chunk).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import InvertedIndexError

# ---------------------------------------------------------------------------
# Varint helpers
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise InvertedIndexError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise InvertedIndexError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


# ---------------------------------------------------------------------------
# Posting dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Posting:
    """A single long-list posting: a document id and an optional term score."""

    doc_id: int
    term_score: float = 0.0


@dataclass(frozen=True)
class ScoredPosting:
    """A Score-Threshold long-list posting: document id plus its (stale) SVR score."""

    doc_id: int
    score: float
    term_score: float = 0.0


@dataclass(frozen=True)
class ChunkRun:
    """One chunk's worth of postings in a chunked long list.

    Attributes
    ----------
    chunk_id:
        The chunk id (higher ids correspond to higher original scores).
    postings:
        Postings within the chunk, in increasing document-id order.
    """

    chunk_id: int
    postings: tuple[Posting, ...]


# ---------------------------------------------------------------------------
# ID-ordered codec (ID, ID-TermScore)
# ---------------------------------------------------------------------------


def encode_id_postings(postings: Sequence[Posting], with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by increasing document id.

    Document ids are delta-encoded varints; term scores, when requested, are
    stored as 4-byte floats per posting (this is what makes the TermScore
    variants roughly 3x larger, matching Table 1's ID vs ID-TermScore ratio).
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        out += encode_varint(posting.doc_id - previous)
        previous = posting.doc_id
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def decode_id_postings(data: bytes) -> list[Posting]:
    """Decode a byte string produced by :func:`encode_id_postings`."""
    return list(iter_id_postings(data))


def iter_id_postings(data: bytes) -> Iterator[Posting]:
    """Stream-decode ID-ordered postings."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    doc_id = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        doc_id += delta
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield Posting(doc_id=doc_id, term_score=term_score)


# ---------------------------------------------------------------------------
# Score-ordered codec (Score-Threshold)
# ---------------------------------------------------------------------------


def encode_scored_postings(postings: Sequence[ScoredPosting],
                           with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by decreasing score.

    Each posting stores an 8-byte score and a 4-byte document id; no delta
    compression is possible because the ids are not sorted.  This reproduces
    the Score-Threshold method's space overhead relative to the ID method.
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
        out += struct.pack("<dI", posting.score, posting.doc_id)
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_scored_postings(data: bytes) -> Iterator[ScoredPosting]:
    """Stream-decode score-ordered postings (decreasing score order)."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(count):
        score, doc_id = struct.unpack_from("<dI", data, offset)
        offset += 12
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)


def decode_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Decode a byte string produced by :func:`encode_scored_postings`."""
    return list(iter_scored_postings(data))


# ---------------------------------------------------------------------------
# Chunked codec (Chunk, Chunk-TermScore)
# ---------------------------------------------------------------------------


def encode_chunk_runs(runs: Sequence[ChunkRun], with_term_scores: bool = False) -> bytes:
    """Encode chunk runs in decreasing chunk-id order.

    The chunk id is stored once per run (the Chunk method's "small additional
    overhead for storing the chunk ID once for each chunk"), followed by the
    run length and delta-encoded document ids.
    """
    out = bytearray()
    out += encode_varint(len(runs))
    out.append(1 if with_term_scores else 0)
    previous_chunk = None
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        out += encode_varint(run.chunk_id)
        out += encode_varint(len(run.postings))
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            out += encode_varint(posting.doc_id - previous_doc)
            previous_doc = posting.doc_id
            if with_term_scores:
                out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_chunk_runs(data: bytes) -> Iterator[ChunkRun]:
    """Stream-decode chunk runs in decreasing chunk-id order."""
    if not data:
        return
    run_count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(run_count):
        chunk_id, offset = decode_varint(data, offset)
        posting_count, offset = decode_varint(data, offset)
        postings = []
        doc_id = 0
        for _ in range(posting_count):
            delta, offset = decode_varint(data, offset)
            doc_id += delta
            term_score = 0.0
            if with_term_scores:
                term_score = struct.unpack_from("<f", data, offset)[0]
                offset += 4
            postings.append(Posting(doc_id=doc_id, term_score=term_score))
        yield ChunkRun(chunk_id=chunk_id, postings=tuple(postings))


def decode_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Decode a byte string produced by :func:`encode_chunk_runs`."""
    return list(iter_chunk_runs(data))


# ---------------------------------------------------------------------------
# Lazy, page-at-a-time decoding
# ---------------------------------------------------------------------------


class LazyBytesReader:
    """Sequential byte reader over a page iterator.

    Query processing reads long inverted lists one page at a time and stops as
    soon as the early-termination conditions are met; pages after the stopping
    point must never be fetched or they would distort the I/O accounting.  This
    reader pulls pages from the underlying iterator only when the decoder
    actually needs more bytes.
    """

    def __init__(self, pages: Iterator[bytes]) -> None:
        self._pages = pages
        self._buffer = b""
        self._position = 0

    def _ensure(self, count: int) -> bool:
        while len(self._buffer) - self._position < count:
            try:
                fragment = next(self._pages)
            except StopIteration:
                return False
            self._buffer = self._buffer[self._position:] + fragment
            self._position = 0
        return True

    @property
    def exhausted(self) -> bool:
        """Whether no more bytes can be read."""
        if self._position < len(self._buffer):
            return False
        return not self._ensure(1)

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` bytes (raises on truncation)."""
        if not self._ensure(count):
            raise InvertedIndexError("truncated posting list")
        start = self._position
        self._position += count
        return self._buffer[start:self._position]

    def read_varint(self) -> int:
        """Read one LEB128 varint."""
        result = 0
        shift = 0
        while True:
            byte = self.read_bytes(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def read_struct(self, fmt: str) -> tuple:
        """Read and unpack one fixed-size struct."""
        return struct.unpack(fmt, self.read_bytes(struct.calcsize(fmt)))


def iter_id_postings_lazy(reader: LazyBytesReader) -> Iterator[Posting]:
    """Stream ID-ordered postings from a lazy reader (pages fetched on demand)."""
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    doc_id = 0
    for _ in range(count):
        doc_id += reader.read_varint()
        term_score = 0.0
        if with_term_scores:
            term_score = reader.read_struct("<f")[0]
        yield Posting(doc_id=doc_id, term_score=term_score)


def iter_scored_postings_lazy(reader: LazyBytesReader) -> Iterator[ScoredPosting]:
    """Stream score-ordered postings from a lazy reader."""
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    for _ in range(count):
        score, doc_id = reader.read_struct("<dI")
        term_score = 0.0
        if with_term_scores:
            term_score = reader.read_struct("<f")[0]
        yield ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)


def iter_chunk_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, Posting]]:
    """Stream ``(chunk_id, posting)`` pairs from a lazily read chunked list.

    Runs are yielded in decreasing chunk-id order and postings within a run in
    increasing document-id order, exactly as stored.
    """
    if reader.exhausted:
        return
    run_count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    for _ in range(run_count):
        chunk_id = reader.read_varint()
        posting_count = reader.read_varint()
        doc_id = 0
        for _ in range(posting_count):
            doc_id += reader.read_varint()
            term_score = 0.0
            if with_term_scores:
                term_score = reader.read_struct("<f")[0]
            yield chunk_id, Posting(doc_id=doc_id, term_score=term_score)


# ---------------------------------------------------------------------------
# Helpers shared by the index builders
# ---------------------------------------------------------------------------


def build_chunk_runs(doc_chunks: Iterable[tuple[int, int, float]]) -> list[ChunkRun]:
    """Group ``(doc_id, chunk_id, term_score)`` triples into sorted chunk runs.

    Runs are ordered by decreasing chunk id; postings within a run by
    increasing document id — the on-disk order the Chunk method requires.
    """
    by_chunk: dict[int, list[Posting]] = {}
    for doc_id, chunk_id, term_score in doc_chunks:
        by_chunk.setdefault(chunk_id, []).append(Posting(doc_id=doc_id, term_score=term_score))
    runs = []
    for chunk_id in sorted(by_chunk, reverse=True):
        postings = tuple(sorted(by_chunk[chunk_id], key=lambda posting: posting.doc_id))
        runs.append(ChunkRun(chunk_id=chunk_id, postings=postings))
    return runs
