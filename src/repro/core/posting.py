"""Posting representations and binary codecs for long inverted lists.

Long inverted lists are immutable binary objects read a page at a time (§5.2),
so their byte layout determines both Table 1 (index sizes) and the number of
pages a query scan touches.  This module provides:

* varint and zig-zag integer encoding helpers,
* the ID-ordered codec used by the ID / ID-TermScore methods (delta-encoded
  document ids, optional per-posting term score),
* the score-ordered codec used by the Score-Threshold method (document id plus
  full document score per posting, no delta compression — reproducing the
  paper's observation that Score-Threshold lists are several times larger), and
* the chunked codec used by the Chunk / Chunk-TermScore methods (chunk id
  stored once per chunk, document ids delta-encoded within the chunk).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import InvertedIndexError

# ---------------------------------------------------------------------------
# Varint helpers
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise InvertedIndexError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise InvertedIndexError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


# ---------------------------------------------------------------------------
# Posting dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Posting:
    """A single long-list posting: a document id and an optional term score."""

    doc_id: int
    term_score: float = 0.0


@dataclass(frozen=True)
class ScoredPosting:
    """A Score-Threshold long-list posting: document id plus its (stale) SVR score."""

    doc_id: int
    score: float
    term_score: float = 0.0


@dataclass(frozen=True)
class ChunkRun:
    """One chunk's worth of postings in a chunked long list.

    Attributes
    ----------
    chunk_id:
        The chunk id (higher ids correspond to higher original scores).
    postings:
        Postings within the chunk, in increasing document-id order.
    """

    chunk_id: int
    postings: tuple[Posting, ...]


# ---------------------------------------------------------------------------
# ID-ordered codec (ID, ID-TermScore)
# ---------------------------------------------------------------------------


def encode_id_postings(postings: Sequence[Posting], with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by increasing document id.

    Document ids are delta-encoded varints; term scores, when requested, are
    stored as 4-byte floats per posting (this is what makes the TermScore
    variants roughly 3x larger, matching Table 1's ID vs ID-TermScore ratio).
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        out += encode_varint(posting.doc_id - previous)
        previous = posting.doc_id
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def decode_id_postings(data: bytes) -> list[Posting]:
    """Decode a byte string produced by :func:`encode_id_postings`."""
    return list(iter_id_postings(data))


def iter_id_postings(data: bytes) -> Iterator[Posting]:
    """Stream-decode ID-ordered postings."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    doc_id = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        doc_id += delta
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield Posting(doc_id=doc_id, term_score=term_score)


# ---------------------------------------------------------------------------
# Score-ordered codec (Score-Threshold)
# ---------------------------------------------------------------------------


def encode_scored_postings(postings: Sequence[ScoredPosting],
                           with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by decreasing score.

    Each posting stores an 8-byte score and a 4-byte document id; no delta
    compression is possible because the ids are not sorted.  This reproduces
    the Score-Threshold method's space overhead relative to the ID method.
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
        out += struct.pack("<dI", posting.score, posting.doc_id)
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_scored_postings(data: bytes) -> Iterator[ScoredPosting]:
    """Stream-decode score-ordered postings (decreasing score order)."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(count):
        score, doc_id = struct.unpack_from("<dI", data, offset)
        offset += 12
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)


def decode_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Decode a byte string produced by :func:`encode_scored_postings`."""
    return list(iter_scored_postings(data))


# ---------------------------------------------------------------------------
# Chunked codec (Chunk, Chunk-TermScore)
# ---------------------------------------------------------------------------


def encode_chunk_runs(runs: Sequence[ChunkRun], with_term_scores: bool = False) -> bytes:
    """Encode chunk runs in decreasing chunk-id order.

    The chunk id is stored once per run (the Chunk method's "small additional
    overhead for storing the chunk ID once for each chunk"), followed by the
    run length and delta-encoded document ids.
    """
    out = bytearray()
    out += encode_varint(len(runs))
    out.append(1 if with_term_scores else 0)
    previous_chunk = None
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        out += encode_varint(run.chunk_id)
        out += encode_varint(len(run.postings))
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            out += encode_varint(posting.doc_id - previous_doc)
            previous_doc = posting.doc_id
            if with_term_scores:
                out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_chunk_runs(data: bytes) -> Iterator[ChunkRun]:
    """Stream-decode chunk runs in decreasing chunk-id order."""
    if not data:
        return
    run_count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(run_count):
        chunk_id, offset = decode_varint(data, offset)
        posting_count, offset = decode_varint(data, offset)
        postings = []
        doc_id = 0
        for _ in range(posting_count):
            delta, offset = decode_varint(data, offset)
            doc_id += delta
            term_score = 0.0
            if with_term_scores:
                term_score = struct.unpack_from("<f", data, offset)[0]
                offset += 4
            postings.append(Posting(doc_id=doc_id, term_score=term_score))
        yield ChunkRun(chunk_id=chunk_id, postings=tuple(postings))


def decode_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Decode a byte string produced by :func:`encode_chunk_runs`."""
    return list(iter_chunk_runs(data))


# ---------------------------------------------------------------------------
# Lazy, page-at-a-time decoding
# ---------------------------------------------------------------------------

_FLOAT = struct.Struct("<f")
_SCORED = struct.Struct("<dI")
_SCORED_TS = struct.Struct("<dIf")


class LazyBytesReader:
    """Sequential byte reader over a page iterator.

    Query processing reads long inverted lists one page at a time and stops as
    soon as the early-termination conditions are met; pages after the stopping
    point must never be fetched or they would distort the I/O accounting.  This
    reader pulls pages from the underlying iterator only when the decoder
    actually needs more bytes.

    The reader keeps the current page fragment as-is and serves reads straight
    out of it (the previous implementation re-concatenated a rolling buffer —
    ``buffer[pos:] + fragment`` — on every page fetch, copying bytes it had
    already copied before).  Batch decoders in this module reach into
    ``_buf``/``_pos`` directly to decode whole runs of postings from the
    buffered fragment without per-byte method calls; they never trigger a page
    fetch the byte-at-a-time path would not have triggered at the same point.
    """

    __slots__ = ("_pages", "_buf", "_pos")

    def __init__(self, pages: Iterator[bytes]) -> None:
        self._pages = pages
        self._buf = b""
        self._pos = 0

    def _advance(self) -> bool:
        """Step to the next non-empty page fragment; ``False`` at end of list."""
        for fragment in self._pages:
            self._buf = fragment
            self._pos = 0
            if fragment:
                return True
        return False

    @property
    def exhausted(self) -> bool:
        """Whether no more bytes can be read."""
        if self._pos < len(self._buf):
            return False
        return not self._advance()

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` bytes (raises on truncation)."""
        buf = self._buf
        pos = self._pos
        end = pos + count
        if end <= len(buf):
            self._pos = end
            return buf[pos:end]
        parts = []
        needed = count
        while True:
            available = len(buf) - pos
            if available:
                take = available if available < needed else needed
                parts.append(buf[pos:pos + take])
                pos += take
                needed -= take
            if not needed:
                break
            if not self._advance():
                self._pos = pos
                raise InvertedIndexError("truncated posting list")
            buf = self._buf
            pos = 0
        self._buf = buf
        self._pos = pos
        return b"".join(parts)

    def read_varint(self) -> int:
        """Read one LEB128 varint."""
        buf = self._buf
        pos = self._pos
        size = len(buf)
        result = 0
        shift = 0
        while True:
            if pos >= size:
                if not self._advance():
                    raise InvertedIndexError("truncated posting list")
                buf = self._buf
                pos = 0
                size = len(buf)
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._buf = buf
                self._pos = pos
                return result
            shift += 7

    def read_struct(self, fmt: str) -> tuple:
        """Read and unpack one fixed-size struct."""
        size = struct.calcsize(fmt)
        buf = self._buf
        pos = self._pos
        if len(buf) - pos >= size:
            self._pos = pos + size
            return struct.unpack_from(fmt, buf, pos)
        return struct.unpack(fmt, self.read_bytes(size))


def _decode_delta_run(reader: LazyBytesReader, doc_id: int, remaining: int,
                      with_term_scores: bool, tag: int | None) -> tuple[list, int, int]:
    """Batch-decode delta-encoded postings wholly contained in the buffered fragment.

    Returns ``(batch, doc_id, remaining)`` where ``batch`` holds
    ``(doc_id, term_score)`` tuples — or ``(tag, doc_id, term_score)`` when a
    ``tag`` (the chunk id) is given.  Decoding stops at the fragment edge: a
    posting that might straddle it is left for the caller's byte-at-a-time
    fallback, so no page is ever fetched earlier than the scalar decoder would
    have fetched it.
    """
    buf = reader._buf
    pos = reader._pos
    size = len(buf)
    # A delta varint realistically spans <= 10 bytes (2**70); postings whose
    # bytes could reach past the fragment edge take the fallback path instead.
    safe = size - 14 if with_term_scores else size - 10
    unpack_from = _FLOAT.unpack_from
    batch: list = []
    append = batch.append
    while remaining and pos <= safe:
        entry = pos
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            doc_id += byte
        else:
            delta = byte & 0x7F
            shift = 7
            while True:
                if pos >= size:
                    pos = -1
                    break
                byte = buf[pos]
                pos += 1
                delta |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            if pos < 0 or (with_term_scores and pos + 4 > size):
                # Varint longer than the safety margin assumed; re-decode this
                # posting through the reader, which handles fragment crossing.
                pos = entry
                break
            doc_id += delta
        if with_term_scores:
            term_score = unpack_from(buf, pos)[0]
            pos += 4
        else:
            term_score = 0.0
        if tag is None:
            append((doc_id, term_score))
        else:
            append((tag, doc_id, term_score))
        remaining -= 1
    reader._pos = pos
    return batch, doc_id, remaining


def iter_id_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float]]:
    """Stream ID-ordered postings as ``(doc_id, term_score)`` pairs.

    Pages are fetched on demand only; postings are batch-decoded per buffered
    page fragment (see :func:`_decode_delta_run`), which is what makes long
    scans cheap without changing when each page is read.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    doc_id = 0
    remaining = count
    while remaining:
        batch, doc_id, remaining = _decode_delta_run(
            reader, doc_id, remaining, with_term_scores, tag=None
        )
        if batch:
            yield from batch
        if remaining:
            # One posting at the fragment edge, decoded byte-at-a-time (this
            # is the only path that may pull the next page).
            doc_id += reader.read_varint()
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, term_score)


def iter_scored_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float, float]]:
    """Stream score-ordered postings as ``(doc_id, score, term_score)`` tuples.

    Records are fixed-width, so whole runs are decoded with
    ``Struct.iter_unpack`` over a zero-copy view of the buffered fragment.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    record = _SCORED_TS if with_term_scores else _SCORED
    width = record.size
    remaining = count
    while remaining:
        buf = reader._buf
        pos = reader._pos
        available = (len(buf) - pos) // width
        if available:
            take = available if available < remaining else remaining
            end = pos + take * width
            reader._pos = end
            remaining -= take
            if with_term_scores:
                for score, doc_id, term_score in record.iter_unpack(
                    memoryview(buf)[pos:end]
                ):
                    yield (doc_id, score, term_score)
            else:
                for score, doc_id in record.iter_unpack(memoryview(buf)[pos:end]):
                    yield (doc_id, score, 0.0)
        if remaining and len(reader._buf) - reader._pos < width:
            # One record straddling the fragment edge (or the next fetch).
            score, doc_id = reader.read_struct("<dI")
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, score, term_score)


def iter_chunk_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, int, float]]:
    """Stream ``(chunk_id, doc_id, term_score)`` triples from a chunked list.

    Runs are yielded in decreasing chunk-id order and postings within a run in
    increasing document-id order, exactly as stored.
    """
    if reader.exhausted:
        return
    run_count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    for _ in range(run_count):
        chunk_id = reader.read_varint()
        posting_count = reader.read_varint()
        doc_id = 0
        remaining = posting_count
        while remaining:
            batch, doc_id, remaining = _decode_delta_run(
                reader, doc_id, remaining, with_term_scores, tag=chunk_id
            )
            if batch:
                yield from batch
            if remaining:
                doc_id += reader.read_varint()
                term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
                remaining -= 1
                yield (chunk_id, doc_id, term_score)


# ---------------------------------------------------------------------------
# Helpers shared by the index builders
# ---------------------------------------------------------------------------


def build_rekey_operations(
    changes: Iterable[tuple[int, float, float]],
    terms_of: "Callable[[int], Iterable[str]]",
) -> tuple[list[tuple[str, float, int]], list[tuple[str, float, int]]]:
    """Turn coalesced score changes into sorted clustered-list re-key batches.

    ``changes`` yields ``(doc_id, old_score, new_score)`` triples — one per
    document, already coalesced from first-seen old score to final new score.
    ``terms_of`` maps a document id to its distinct terms (``Content(id)``).
    Returns ``(deletes, inserts)``: the old ``(term, -old_score, doc_id)`` keys
    to remove from a score-clustered list and the new ``(term, -new_score,
    doc_id)`` keys to add, each sorted so a bulk B+-tree pass can consume the
    run without re-descending per key.  Documents whose score did not change
    produce no operations (their postings are already keyed correctly).
    """
    deletes: list[tuple[str, float, int]] = []
    inserts: list[tuple[str, float, int]] = []
    for doc_id, old_score, new_score in changes:
        if old_score == new_score:
            continue
        for term in terms_of(doc_id):
            deletes.append((term, -old_score, doc_id))
            inserts.append((term, -new_score, doc_id))
    deletes.sort()
    inserts.sort()
    return deletes, inserts


def build_chunk_runs(doc_chunks: Iterable[tuple[int, int, float]]) -> list[ChunkRun]:
    """Group ``(doc_id, chunk_id, term_score)`` triples into sorted chunk runs.

    Runs are ordered by decreasing chunk id; postings within a run by
    increasing document id — the on-disk order the Chunk method requires.
    """
    by_chunk: dict[int, list[Posting]] = {}
    for doc_id, chunk_id, term_score in doc_chunks:
        by_chunk.setdefault(chunk_id, []).append(Posting(doc_id=doc_id, term_score=term_score))
    runs = []
    for chunk_id in sorted(by_chunk, reverse=True):
        postings = tuple(sorted(by_chunk[chunk_id], key=lambda posting: posting.doc_id))
        runs.append(ChunkRun(chunk_id=chunk_id, postings=postings))
    return runs
