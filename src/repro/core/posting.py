"""Posting representations and binary codecs for long inverted lists.

Long inverted lists are immutable binary objects read a page at a time (§5.2),
so their byte layout determines both Table 1 (index sizes) and the number of
pages a query scan touches.  This module provides:

* varint and zig-zag integer encoding helpers,
* the ID-ordered codec used by the ID / ID-TermScore methods (delta-encoded
  document ids, optional per-posting term score),
* the score-ordered codec used by the Score-Threshold method (document id plus
  full document score per posting, no delta compression — reproducing the
  paper's observation that Score-Threshold lists are several times larger), and
* the chunked codec used by the Chunk / Chunk-TermScore methods (chunk id
  stored once per chunk, document ids delta-encoded within the chunk), and
* the **blocked** variants of all three codecs: fixed-span blocks carrying a
  ``(count, last doc id, max-score bound)`` directory entry plus a CRC over
  delta+varbyte payloads, decoded lazily one block at a time so a scan that
  stops early — or skips whole blocks whose bound cannot make the top-k —
  never fetches the remaining pages.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ChecksumError, InvertedIndexError

# ---------------------------------------------------------------------------
# Varint helpers
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise InvertedIndexError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise InvertedIndexError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


# ---------------------------------------------------------------------------
# Posting dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Posting:
    """A single long-list posting: a document id and an optional term score."""

    doc_id: int
    term_score: float = 0.0


@dataclass(frozen=True)
class ScoredPosting:
    """A Score-Threshold long-list posting: document id plus its (stale) SVR score."""

    doc_id: int
    score: float
    term_score: float = 0.0


@dataclass(frozen=True)
class ChunkRun:
    """One chunk's worth of postings in a chunked long list.

    Attributes
    ----------
    chunk_id:
        The chunk id (higher ids correspond to higher original scores).
    postings:
        Postings within the chunk, in increasing document-id order.
    """

    chunk_id: int
    postings: tuple[Posting, ...]


# ---------------------------------------------------------------------------
# ID-ordered codec (ID, ID-TermScore)
# ---------------------------------------------------------------------------


def encode_id_postings(postings: Sequence[Posting], with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by increasing document id.

    Document ids are delta-encoded varints; term scores, when requested, are
    stored as 4-byte floats per posting (this is what makes the TermScore
    variants roughly 3x larger, matching Table 1's ID vs ID-TermScore ratio).
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        out += encode_varint(posting.doc_id - previous)
        previous = posting.doc_id
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def decode_id_postings(data: bytes) -> list[Posting]:
    """Decode a byte string produced by :func:`encode_id_postings`."""
    return list(iter_id_postings(data))


def iter_id_postings(data: bytes) -> Iterator[Posting]:
    """Stream-decode ID-ordered postings."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    doc_id = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        doc_id += delta
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield Posting(doc_id=doc_id, term_score=term_score)


# ---------------------------------------------------------------------------
# Score-ordered codec (Score-Threshold)
# ---------------------------------------------------------------------------


def encode_scored_postings(postings: Sequence[ScoredPosting],
                           with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by decreasing score.

    Each posting stores an 8-byte score and a 4-byte document id; no delta
    compression is possible because the ids are not sorted.  This reproduces
    the Score-Threshold method's space overhead relative to the ID method.
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
        out += struct.pack("<dI", posting.score, posting.doc_id)
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_scored_postings(data: bytes) -> Iterator[ScoredPosting]:
    """Stream-decode score-ordered postings (decreasing score order)."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(count):
        score, doc_id = struct.unpack_from("<dI", data, offset)
        offset += 12
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)


def decode_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Decode a byte string produced by :func:`encode_scored_postings`."""
    return list(iter_scored_postings(data))


# ---------------------------------------------------------------------------
# Chunked codec (Chunk, Chunk-TermScore)
# ---------------------------------------------------------------------------


def encode_chunk_runs(runs: Sequence[ChunkRun], with_term_scores: bool = False) -> bytes:
    """Encode chunk runs in decreasing chunk-id order.

    The chunk id is stored once per run (the Chunk method's "small additional
    overhead for storing the chunk ID once for each chunk"), followed by the
    run length and delta-encoded document ids.
    """
    out = bytearray()
    out += encode_varint(len(runs))
    out.append(1 if with_term_scores else 0)
    previous_chunk = None
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        out += encode_varint(run.chunk_id)
        out += encode_varint(len(run.postings))
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            out += encode_varint(posting.doc_id - previous_doc)
            previous_doc = posting.doc_id
            if with_term_scores:
                out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_chunk_runs(data: bytes) -> Iterator[ChunkRun]:
    """Stream-decode chunk runs in decreasing chunk-id order."""
    if not data:
        return
    run_count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(run_count):
        chunk_id, offset = decode_varint(data, offset)
        posting_count, offset = decode_varint(data, offset)
        postings = []
        doc_id = 0
        for _ in range(posting_count):
            delta, offset = decode_varint(data, offset)
            doc_id += delta
            term_score = 0.0
            if with_term_scores:
                term_score = struct.unpack_from("<f", data, offset)[0]
                offset += 4
            postings.append(Posting(doc_id=doc_id, term_score=term_score))
        yield ChunkRun(chunk_id=chunk_id, postings=tuple(postings))


def decode_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Decode a byte string produced by :func:`encode_chunk_runs`."""
    return list(iter_chunk_runs(data))


# ---------------------------------------------------------------------------
# Lazy, page-at-a-time decoding
# ---------------------------------------------------------------------------

_FLOAT = struct.Struct("<f")
_SCORED = struct.Struct("<dI")
_SCORED_TS = struct.Struct("<dIf")


class LazyBytesReader:
    """Sequential byte reader over a page iterator.

    Query processing reads long inverted lists one page at a time and stops as
    soon as the early-termination conditions are met; pages after the stopping
    point must never be fetched or they would distort the I/O accounting.  This
    reader pulls pages from the underlying iterator only when the decoder
    actually needs more bytes.

    The reader keeps the current page fragment as-is and serves reads straight
    out of it (the previous implementation re-concatenated a rolling buffer —
    ``buffer[pos:] + fragment`` — on every page fetch, copying bytes it had
    already copied before).  Batch decoders in this module reach into
    ``_buf``/``_pos`` directly to decode whole runs of postings from the
    buffered fragment without per-byte method calls; they never trigger a page
    fetch the byte-at-a-time path would not have triggered at the same point.
    """

    __slots__ = ("_pages", "_buf", "_pos")

    def __init__(self, pages: Iterator[bytes]) -> None:
        self._pages = pages
        self._buf = b""
        self._pos = 0

    def _advance(self) -> bool:
        """Step to the next non-empty page fragment; ``False`` at end of list."""
        for fragment in self._pages:
            self._buf = fragment
            self._pos = 0
            if fragment:
                return True
        return False

    @property
    def exhausted(self) -> bool:
        """Whether no more bytes can be read."""
        if self._pos < len(self._buf):
            return False
        return not self._advance()

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` bytes (raises on truncation)."""
        buf = self._buf
        pos = self._pos
        end = pos + count
        if end <= len(buf):
            self._pos = end
            return buf[pos:end]
        parts = []
        needed = count
        while True:
            available = len(buf) - pos
            if available:
                take = available if available < needed else needed
                parts.append(buf[pos:pos + take])
                pos += take
                needed -= take
            if not needed:
                break
            if not self._advance():
                self._pos = pos
                raise InvertedIndexError("truncated posting list")
            buf = self._buf
            pos = 0
        self._buf = buf
        self._pos = pos
        return b"".join(parts)

    def read_varint(self) -> int:
        """Read one LEB128 varint."""
        buf = self._buf
        pos = self._pos
        size = len(buf)
        result = 0
        shift = 0
        while True:
            if pos >= size:
                if not self._advance():
                    raise InvertedIndexError("truncated posting list")
                buf = self._buf
                pos = 0
                size = len(buf)
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._buf = buf
                self._pos = pos
                return result
            shift += 7

    def read_struct(self, fmt: str) -> tuple:
        """Read and unpack one fixed-size struct."""
        size = struct.calcsize(fmt)
        buf = self._buf
        pos = self._pos
        if len(buf) - pos >= size:
            self._pos = pos + size
            return struct.unpack_from(fmt, buf, pos)
        return struct.unpack(fmt, self.read_bytes(size))


def _decode_delta_run(reader: LazyBytesReader, doc_id: int, remaining: int,
                      with_term_scores: bool, tag: int | None) -> tuple[list, int, int]:
    """Batch-decode delta-encoded postings wholly contained in the buffered fragment.

    Returns ``(batch, doc_id, remaining)`` where ``batch`` holds
    ``(doc_id, term_score)`` tuples — or ``(tag, doc_id, term_score)`` when a
    ``tag`` (the chunk id) is given.  Decoding stops at the fragment edge: a
    posting that might straddle it is left for the caller's byte-at-a-time
    fallback, so no page is ever fetched earlier than the scalar decoder would
    have fetched it.
    """
    buf = reader._buf
    pos = reader._pos
    size = len(buf)
    # A delta varint realistically spans <= 10 bytes (2**70); postings whose
    # bytes could reach past the fragment edge take the fallback path instead.
    safe = size - 14 if with_term_scores else size - 10
    unpack_from = _FLOAT.unpack_from
    batch: list = []
    append = batch.append
    while remaining and pos <= safe:
        entry = pos
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            doc_id += byte
        else:
            delta = byte & 0x7F
            shift = 7
            while True:
                if pos >= size:
                    pos = -1
                    break
                byte = buf[pos]
                pos += 1
                delta |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            if pos < 0 or (with_term_scores and pos + 4 > size):
                # Varint longer than the safety margin assumed; re-decode this
                # posting through the reader, which handles fragment crossing.
                pos = entry
                break
            doc_id += delta
        if with_term_scores:
            term_score = unpack_from(buf, pos)[0]
            pos += 4
        else:
            term_score = 0.0
        if tag is None:
            append((doc_id, term_score))
        else:
            append((tag, doc_id, term_score))
        remaining -= 1
    reader._pos = pos
    return batch, doc_id, remaining


def iter_id_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float]]:
    """Stream ID-ordered postings as ``(doc_id, term_score)`` pairs.

    Pages are fetched on demand only; postings are batch-decoded per buffered
    page fragment (see :func:`_decode_delta_run`), which is what makes long
    scans cheap without changing when each page is read.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    doc_id = 0
    remaining = count
    while remaining:
        batch, doc_id, remaining = _decode_delta_run(
            reader, doc_id, remaining, with_term_scores, tag=None
        )
        if batch:
            yield from batch
        if remaining:
            # One posting at the fragment edge, decoded byte-at-a-time (this
            # is the only path that may pull the next page).
            doc_id += reader.read_varint()
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, term_score)


def iter_scored_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float, float]]:
    """Stream score-ordered postings as ``(doc_id, score, term_score)`` tuples.

    Records are fixed-width, so whole runs are decoded with
    ``Struct.iter_unpack`` over a zero-copy view of the buffered fragment.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    record = _SCORED_TS if with_term_scores else _SCORED
    width = record.size
    remaining = count
    while remaining:
        buf = reader._buf
        pos = reader._pos
        available = (len(buf) - pos) // width
        if available:
            take = available if available < remaining else remaining
            end = pos + take * width
            reader._pos = end
            remaining -= take
            if with_term_scores:
                for score, doc_id, term_score in record.iter_unpack(
                    memoryview(buf)[pos:end]
                ):
                    yield (doc_id, score, term_score)
            else:
                for score, doc_id in record.iter_unpack(memoryview(buf)[pos:end]):
                    yield (doc_id, score, 0.0)
        if remaining and len(reader._buf) - reader._pos < width:
            # One record straddling the fragment edge (or the next fetch).
            score, doc_id = reader.read_struct("<dI")
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, score, term_score)


def iter_chunk_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, int, float]]:
    """Stream ``(chunk_id, doc_id, term_score)`` triples from a chunked list.

    Runs are yielded in decreasing chunk-id order and postings within a run in
    increasing document-id order, exactly as stored.
    """
    if reader.exhausted:
        return
    run_count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    for _ in range(run_count):
        chunk_id = reader.read_varint()
        posting_count = reader.read_varint()
        doc_id = 0
        remaining = posting_count
        while remaining:
            batch, doc_id, remaining = _decode_delta_run(
                reader, doc_id, remaining, with_term_scores, tag=chunk_id
            )
            if batch:
                yield from batch
            if remaining:
                doc_id += reader.read_varint()
                term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
                remaining -= 1
                yield (chunk_id, doc_id, term_score)


# ---------------------------------------------------------------------------
# Blocked codecs (fixed-span blocks with skip metadata)
# ---------------------------------------------------------------------------

#: First byte of every blocked payload; doubles as a cheap sanity check that a
#: payload routed to the blocked decoders actually came from a blocked encoder.
BLOCKED_MAGIC = 0xB7
BLOCKED_VERSION = 1

#: Kind tags stored in the blocked header.
BLOCK_KIND_ID = 0
BLOCK_KIND_SCORED = 1
BLOCK_KIND_CHUNK = 2

#: Postings per block.  128 keeps a block's payload well under one 4 KiB page
#: (a delta varint plus optional 4-byte term score is <= 14 bytes) so block
#: skipping works at sub-page granularity, while the directory stays ~1% of
#: the payload for long lists.
DEFAULT_BLOCK_SPAN = 128

_BOUND = struct.Struct("<d")


def blocked_postings_enabled() -> bool:
    """Process-wide default for the blocked long-list codec.

    On unless ``REPRO_BLOCKED_POSTINGS=0`` — the fidelity off-switch that
    reproduces the seed's legacy payloads (and their fig7/table1 I/O
    fingerprints) exactly.
    """
    return os.environ.get("REPRO_BLOCKED_POSTINGS", "1") != "0"


@dataclass(frozen=True)
class BlockInfo:
    """Directory entry of one block in a blocked long-list payload.

    Attributes
    ----------
    count:
        Number of postings in the block (always >= 1).
    last_doc_id:
        Document id of the block's final posting (skip/seek metadata).
    bound:
        Kind-specific max-score metadata: the largest term score in the block
        (id kind), the largest stored document score (scored kind — the first
        record, lists are score-descending) or the largest chunk id (chunk
        kind).  Block-max pruning compares this against the result heap's
        published threshold.
    length:
        Payload length in bytes.
    crc:
        CRC32 of the payload bytes.
    """

    count: int
    last_doc_id: int
    bound: float
    length: int
    crc: int


@dataclass(frozen=True)
class BlockDirectory:
    """Parsed header + directory of a blocked payload."""

    kind: int
    with_term_scores: bool
    total: int
    blocks: tuple[BlockInfo, ...]


def _encode_blocked(kind: int, with_term_scores: bool, total: int,
                    blocks: "list[tuple[int, int, float, bytes]]") -> bytes:
    """Assemble the blocked wire format.

    ``blocks`` holds ``(count, last_doc_id, bound, payload)`` per block.  The
    layout is: a 4-byte header (magic, version, kind, flags), varint total and
    block counts, the varint-length + CRC32-protected block directory, then
    the block payloads back to back.  Both the directory and each payload
    carry a CRC so bit-rot anywhere in the segment surfaces as a typed
    :class:`~repro.errors.ChecksumError` on *both* storage backends (the file
    backend's per-page checksum catches it one layer earlier).
    """
    directory = bytearray()
    for count, last_doc_id, bound, payload in blocks:
        directory += encode_varint(count)
        directory += encode_varint(last_doc_id)
        directory += _BOUND.pack(bound)
        directory += encode_varint(len(payload))
        directory += encode_varint(zlib.crc32(payload))
    out = bytearray()
    out.append(BLOCKED_MAGIC)
    out.append(BLOCKED_VERSION)
    out.append(kind)
    out.append(1 if with_term_scores else 0)
    out += encode_varint(total)
    out += encode_varint(len(blocks))
    out += encode_varint(len(directory))
    out += encode_varint(zlib.crc32(bytes(directory)))
    out += directory
    for _count, _last, _bound, payload in blocks:
        out += payload
    return bytes(out)


def _check_block_span(block_span: int) -> None:
    if block_span < 1:
        raise InvertedIndexError(f"block_span must be positive, got {block_span}")


def encode_blocked_id_postings(postings: Sequence[Posting],
                               with_term_scores: bool = False,
                               block_span: int = DEFAULT_BLOCK_SPAN) -> bytes:
    """Blocked variant of :func:`encode_id_postings`.

    Each block is self-contained: its first document id is stored absolute so
    a block decodes without its predecessors (and torn tails are detected per
    block).  The block bound is the largest term score in the block.
    """
    _check_block_span(block_span)
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        previous = posting.doc_id
    blocks: list[tuple[int, int, float, bytes]] = []
    for start in range(0, len(postings), block_span):
        span = postings[start:start + block_span]
        body = bytearray()
        previous = 0
        bound = 0.0
        for posting in span:
            body += encode_varint(posting.doc_id - previous)
            previous = posting.doc_id
            if with_term_scores:
                body += _FLOAT.pack(posting.term_score)
                if posting.term_score > bound:
                    bound = posting.term_score
        blocks.append((len(span), span[-1].doc_id, bound, bytes(body)))
    return _encode_blocked(BLOCK_KIND_ID, with_term_scores, len(postings), blocks)


def encode_blocked_scored_postings(postings: Sequence[ScoredPosting],
                                   with_term_scores: bool = False,
                                   block_span: int = DEFAULT_BLOCK_SPAN) -> bytes:
    """Blocked variant of :func:`encode_scored_postings`.

    Records keep the fixed ``<dI>`` layout; the block bound is the stored
    score of the block's first record (lists are score-descending, so that is
    the block maximum — what ``thresholdValueOf`` bounds at query time).
    """
    _check_block_span(block_span)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
    record = _SCORED_TS if with_term_scores else _SCORED
    blocks: list[tuple[int, int, float, bytes]] = []
    for start in range(0, len(postings), block_span):
        span = postings[start:start + block_span]
        if with_term_scores:
            body = b"".join(
                record.pack(posting.score, posting.doc_id, posting.term_score)
                for posting in span
            )
        else:
            body = b"".join(record.pack(posting.score, posting.doc_id) for posting in span)
        blocks.append((len(span), span[-1].doc_id, span[0].score, body))
    return _encode_blocked(BLOCK_KIND_SCORED, with_term_scores, len(postings), blocks)


def encode_blocked_chunk_runs(runs: Sequence[ChunkRun],
                              with_term_scores: bool = False,
                              block_span: int = DEFAULT_BLOCK_SPAN) -> bytes:
    """Blocked variant of :func:`encode_chunk_runs`.

    Runs are flattened into the same (decreasing chunk, increasing doc id)
    posting order and re-grouped into fixed-span blocks; a run that straddles
    a block boundary restarts as a fresh fragment (chunk id, count, absolute
    first doc id) so every block decodes independently.  The block bound is
    the block's largest chunk id — its first fragment's.
    """
    _check_block_span(block_span)
    flat: list[tuple[int, int, float]] = []
    previous_chunk = None
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            previous_doc = posting.doc_id
            flat.append((run.chunk_id, posting.doc_id, posting.term_score))
    blocks: list[tuple[int, int, float, bytes]] = []
    total = len(flat)
    for start in range(0, total, block_span):
        span = flat[start:start + block_span]
        body = bytearray()
        index = 0
        while index < len(span):
            chunk_id = span[index][0]
            end = index
            while end < len(span) and span[end][0] == chunk_id:
                end += 1
            body += encode_varint(chunk_id)
            body += encode_varint(end - index)
            previous_doc = 0
            for _chunk, doc_id, term_score in span[index:end]:
                body += encode_varint(doc_id - previous_doc)
                previous_doc = doc_id
                if with_term_scores:
                    body += _FLOAT.pack(term_score)
            index = end
        blocks.append((len(span), span[-1][1], float(span[0][0]), bytes(body)))
    return _encode_blocked(BLOCK_KIND_CHUNK, with_term_scores, total, blocks)


def _read_blocked_header(reader: LazyBytesReader, expected_kind: int) -> BlockDirectory:
    """Parse the blocked header + directory through ``reader`` (CRC-verified)."""
    head = reader.read_bytes(4)
    if head[0] != BLOCKED_MAGIC:
        raise ChecksumError(
            f"blocked posting list: bad magic byte 0x{head[0]:02x}"
        )
    if head[1] != BLOCKED_VERSION:
        raise InvertedIndexError(
            f"blocked posting list: unsupported version {head[1]}"
        )
    if head[2] != expected_kind:
        raise InvertedIndexError(
            f"blocked posting list: kind {head[2]} where {expected_kind} was expected"
        )
    if head[3] > 1:
        raise ChecksumError(f"blocked posting list: bad flags byte 0x{head[3]:02x}")
    with_term_scores = bool(head[3] & 1)
    total = reader.read_varint()
    block_count = reader.read_varint()
    directory_length = reader.read_varint()
    directory_crc = reader.read_varint()
    blob = reader.read_bytes(directory_length)
    if zlib.crc32(blob) != directory_crc:
        raise ChecksumError("blocked posting list: directory checksum mismatch")
    blocks: list[BlockInfo] = []
    offset = 0
    for _ in range(block_count):
        count, offset = decode_varint(blob, offset)
        last_doc_id, offset = decode_varint(blob, offset)
        if offset + 8 > len(blob):
            raise ChecksumError("blocked posting list: truncated directory entry")
        bound = _BOUND.unpack_from(blob, offset)[0]
        offset += 8
        length, offset = decode_varint(blob, offset)
        crc, offset = decode_varint(blob, offset)
        blocks.append(BlockInfo(count=count, last_doc_id=last_doc_id, bound=bound,
                                length=length, crc=crc))
    if offset != len(blob):
        raise ChecksumError("blocked posting list: directory length mismatch")
    if sum(block.count for block in blocks) != total:
        raise ChecksumError("blocked posting list: posting count mismatch")
    if any(block.count == 0 for block in blocks):
        raise ChecksumError("blocked posting list: empty block")
    return BlockDirectory(kind=head[2], with_term_scores=with_term_scores,
                          total=total, blocks=tuple(blocks))


def read_block_directory(data: bytes) -> BlockDirectory:
    """Parse a blocked payload's header + directory from bytes (tests, benches)."""
    return _read_blocked_header(LazyBytesReader(iter((data,))), _sniff_kind(data))


def _sniff_kind(data: bytes) -> int:
    if len(data) < 3:
        raise InvertedIndexError("blocked posting list: payload too short")
    return data[2]


def _read_block_payload(reader: LazyBytesReader, block: BlockInfo) -> bytes:
    payload = reader.read_bytes(block.length)
    if zlib.crc32(payload) != block.crc:
        raise ChecksumError("blocked posting list: block checksum mismatch")
    return payload


def _decode_id_block(payload: bytes, block: BlockInfo,
                     with_term_scores: bool) -> "list[tuple[int, float]]":
    out: list[tuple[int, float]] = []
    append = out.append
    offset = 0
    doc_id = 0
    size = len(payload)
    for _ in range(block.count):
        delta, offset = decode_varint(payload, offset)
        doc_id += delta
        if with_term_scores:
            if offset + 4 > size:
                raise ChecksumError("blocked posting list: truncated block")
            append((doc_id, _FLOAT.unpack_from(payload, offset)[0]))
            offset += 4
        else:
            append((doc_id, 0.0))
    if offset != size or doc_id != block.last_doc_id:
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_scored_block(payload: bytes, block: BlockInfo,
                         with_term_scores: bool) -> "list[tuple[int, float, float]]":
    record = _SCORED_TS if with_term_scores else _SCORED
    if len(payload) != block.count * record.size:
        raise ChecksumError("blocked posting list: block contents do not match header")
    if with_term_scores:
        out = [(doc_id, score, term_score)
               for score, doc_id, term_score in record.iter_unpack(payload)]
    else:
        out = [(doc_id, score, 0.0) for score, doc_id in record.iter_unpack(payload)]
    if out[-1][0] != block.last_doc_id or out[0][1] != block.bound:
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_chunk_block(payload: bytes, block: BlockInfo,
                        with_term_scores: bool) -> "list[tuple[int, int, float]]":
    out: list[tuple[int, int, float]] = []
    append = out.append
    offset = 0
    size = len(payload)
    remaining = block.count
    previous_chunk = None
    while remaining:
        chunk_id, offset = decode_varint(payload, offset)
        fragment_count, offset = decode_varint(payload, offset)
        if fragment_count == 0 or fragment_count > remaining:
            raise ChecksumError("blocked posting list: bad chunk fragment length")
        if previous_chunk is not None and chunk_id >= previous_chunk:
            raise ChecksumError("blocked posting list: chunk fragments out of order")
        previous_chunk = chunk_id
        doc_id = 0
        for _ in range(fragment_count):
            delta, offset = decode_varint(payload, offset)
            doc_id += delta
            if with_term_scores:
                if offset + 4 > size:
                    raise ChecksumError("blocked posting list: truncated block")
                append((chunk_id, doc_id, _FLOAT.unpack_from(payload, offset)[0]))
                offset += 4
            else:
                append((chunk_id, doc_id, 0.0))
        remaining -= fragment_count
    if offset != size or out[-1][1] != block.last_doc_id or out[0][0] != int(block.bound):
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _iter_blocked_lazy(reader: LazyBytesReader, kind: int, decode_block,
                       prune=None, on_skip=None) -> Iterator:
    """Shared blocked scan loop: decode block-at-a-time, stop at a pruned block.

    ``prune(block)`` — when given — is consulted *before* the block's payload
    bytes are read; because every blocked list is rank-ordered, a block whose
    bound cannot beat the threshold means no later block can either, so the
    scan ends there and the remaining pages are never fetched.  ``on_skip``
    receives the number of blocks skipped that way (stats accounting).
    """
    if reader.exhausted:
        return
    directory = _read_blocked_header(reader, kind)
    with_term_scores = directory.with_term_scores
    blocks = directory.blocks
    for index, block in enumerate(blocks):
        if prune is not None and prune(block):
            if on_skip is not None:
                on_skip(len(blocks) - index)
            return
        yield from decode_block(_read_block_payload(reader, block), block,
                                with_term_scores)


def iter_blocked_id_postings_lazy(reader: LazyBytesReader, prune=None,
                                  on_skip=None) -> Iterator[tuple[int, float]]:
    """Blocked counterpart of :func:`iter_id_postings_lazy` (same tuples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_ID, _decode_id_block,
                              prune=prune, on_skip=on_skip)


def iter_blocked_scored_postings_lazy(reader: LazyBytesReader, prune=None,
                                      on_skip=None) -> Iterator[tuple[int, float, float]]:
    """Blocked counterpart of :func:`iter_scored_postings_lazy` (same tuples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_SCORED, _decode_scored_block,
                              prune=prune, on_skip=on_skip)


def iter_blocked_chunk_postings_lazy(reader: LazyBytesReader, prune=None,
                                     on_skip=None) -> Iterator[tuple[int, int, float]]:
    """Blocked counterpart of :func:`iter_chunk_postings_lazy` (same triples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_CHUNK, _decode_chunk_block,
                              prune=prune, on_skip=on_skip)


def decode_blocked_id_postings(data: bytes) -> list[Posting]:
    """Eagerly decode a payload produced by :func:`encode_blocked_id_postings`."""
    reader = LazyBytesReader(iter((data,)))
    return [
        Posting(doc_id=doc_id, term_score=term_score)
        for doc_id, term_score in iter_blocked_id_postings_lazy(reader)
    ]


def decode_blocked_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Eagerly decode a payload produced by :func:`encode_blocked_scored_postings`."""
    reader = LazyBytesReader(iter((data,)))
    return [
        ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)
        for doc_id, score, term_score in iter_blocked_scored_postings_lazy(reader)
    ]


def decode_blocked_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Eagerly decode a payload produced by :func:`encode_blocked_chunk_runs`.

    Fragments of one chunk split across block boundaries are re-joined, so the
    result compares equal to the runs given to the encoder.
    """
    reader = LazyBytesReader(iter((data,)))
    runs: list[ChunkRun] = []
    current_chunk: int | None = None
    postings: list[Posting] = []
    for chunk_id, doc_id, term_score in iter_blocked_chunk_postings_lazy(reader):
        if chunk_id != current_chunk:
            if current_chunk is not None:
                runs.append(ChunkRun(chunk_id=current_chunk, postings=tuple(postings)))
            current_chunk = chunk_id
            postings = []
        postings.append(Posting(doc_id=doc_id, term_score=term_score))
    if current_chunk is not None:
        runs.append(ChunkRun(chunk_id=current_chunk, postings=tuple(postings)))
    return runs


# ---------------------------------------------------------------------------
# Helpers shared by the index builders
# ---------------------------------------------------------------------------


def build_rekey_operations(
    changes: Iterable[tuple[int, float, float]],
    terms_of: "Callable[[int], Iterable[str]]",
) -> tuple[list[tuple[str, float, int]], list[tuple[str, float, int]]]:
    """Turn coalesced score changes into sorted clustered-list re-key batches.

    ``changes`` yields ``(doc_id, old_score, new_score)`` triples — one per
    document, already coalesced from first-seen old score to final new score.
    ``terms_of`` maps a document id to its distinct terms (``Content(id)``).
    Returns ``(deletes, inserts)``: the old ``(term, -old_score, doc_id)`` keys
    to remove from a score-clustered list and the new ``(term, -new_score,
    doc_id)`` keys to add, each sorted so a bulk B+-tree pass can consume the
    run without re-descending per key.  Documents whose score did not change
    produce no operations (their postings are already keyed correctly).
    """
    deletes: list[tuple[str, float, int]] = []
    inserts: list[tuple[str, float, int]] = []
    for doc_id, old_score, new_score in changes:
        if old_score == new_score:
            continue
        for term in terms_of(doc_id):
            deletes.append((term, -old_score, doc_id))
            inserts.append((term, -new_score, doc_id))
    deletes.sort()
    inserts.sort()
    return deletes, inserts


def build_chunk_runs(doc_chunks: Iterable[tuple[int, int, float]]) -> list[ChunkRun]:
    """Group ``(doc_id, chunk_id, term_score)`` triples into sorted chunk runs.

    Runs are ordered by decreasing chunk id; postings within a run by
    increasing document id — the on-disk order the Chunk method requires.
    """
    by_chunk: dict[int, list[Posting]] = {}
    for doc_id, chunk_id, term_score in doc_chunks:
        by_chunk.setdefault(chunk_id, []).append(Posting(doc_id=doc_id, term_score=term_score))
    runs = []
    for chunk_id in sorted(by_chunk, reverse=True):
        postings = tuple(sorted(by_chunk[chunk_id], key=lambda posting: posting.doc_id))
        runs.append(ChunkRun(chunk_id=chunk_id, postings=postings))
    return runs
