"""Posting representations and binary codecs for long inverted lists.

Long inverted lists are immutable binary objects read a page at a time (§5.2),
so their byte layout determines both Table 1 (index sizes) and the number of
pages a query scan touches.  This module provides:

* varint and zig-zag integer encoding helpers,
* the ID-ordered codec used by the ID / ID-TermScore methods (delta-encoded
  document ids, optional per-posting term score),
* the score-ordered codec used by the Score-Threshold method (document id plus
  full document score per posting, no delta compression — reproducing the
  paper's observation that Score-Threshold lists are several times larger), and
* the chunked codec used by the Chunk / Chunk-TermScore methods (chunk id
  stored once per chunk, document ids delta-encoded within the chunk), and
* the **blocked** variants of all three codecs: fixed-span blocks carrying a
  ``(count, last doc id, max-score bound)`` directory entry plus a CRC over
  delta+varbyte payloads, decoded lazily one block at a time so a scan that
  stops early — or skips whole blocks whose bound cannot make the top-k —
  never fetches the remaining pages.
"""

from __future__ import annotations

import os
import struct
import zlib
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate, repeat
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ChecksumError, InvertedIndexError

# ---------------------------------------------------------------------------
# Varint helpers
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise InvertedIndexError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise InvertedIndexError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


# ---------------------------------------------------------------------------
# Posting dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Posting:
    """A single long-list posting: a document id and an optional term score."""

    doc_id: int
    term_score: float = 0.0


@dataclass(frozen=True)
class ScoredPosting:
    """A Score-Threshold long-list posting: document id plus its (stale) SVR score."""

    doc_id: int
    score: float
    term_score: float = 0.0


@dataclass(frozen=True)
class ChunkRun:
    """One chunk's worth of postings in a chunked long list.

    Attributes
    ----------
    chunk_id:
        The chunk id (higher ids correspond to higher original scores).
    postings:
        Postings within the chunk, in increasing document-id order.
    """

    chunk_id: int
    postings: tuple[Posting, ...]


# ---------------------------------------------------------------------------
# ID-ordered codec (ID, ID-TermScore)
# ---------------------------------------------------------------------------


def encode_id_postings(postings: Sequence[Posting], with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by increasing document id.

    Document ids are delta-encoded varints; term scores, when requested, are
    stored as 4-byte floats per posting (this is what makes the TermScore
    variants roughly 3x larger, matching Table 1's ID vs ID-TermScore ratio).
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        out += encode_varint(posting.doc_id - previous)
        previous = posting.doc_id
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def decode_id_postings(data: bytes) -> list[Posting]:
    """Decode a byte string produced by :func:`encode_id_postings`."""
    return list(iter_id_postings(data))


def iter_id_postings(data: bytes) -> Iterator[Posting]:
    """Stream-decode ID-ordered postings."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    doc_id = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        doc_id += delta
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield Posting(doc_id=doc_id, term_score=term_score)


# ---------------------------------------------------------------------------
# Score-ordered codec (Score-Threshold)
# ---------------------------------------------------------------------------


def encode_scored_postings(postings: Sequence[ScoredPosting],
                           with_term_scores: bool = False) -> bytes:
    """Encode postings sorted by decreasing score.

    Each posting stores an 8-byte score and a 4-byte document id; no delta
    compression is possible because the ids are not sorted.  This reproduces
    the Score-Threshold method's space overhead relative to the ID method.
    """
    out = bytearray()
    out += encode_varint(len(postings))
    out.append(1 if with_term_scores else 0)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
        out += struct.pack("<dI", posting.score, posting.doc_id)
        if with_term_scores:
            out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_scored_postings(data: bytes) -> Iterator[ScoredPosting]:
    """Stream-decode score-ordered postings (decreasing score order)."""
    if not data:
        return
    count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(count):
        score, doc_id = struct.unpack_from("<dI", data, offset)
        offset += 12
        term_score = 0.0
        if with_term_scores:
            term_score = struct.unpack_from("<f", data, offset)[0]
            offset += 4
        yield ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)


def decode_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Decode a byte string produced by :func:`encode_scored_postings`."""
    return list(iter_scored_postings(data))


# ---------------------------------------------------------------------------
# Chunked codec (Chunk, Chunk-TermScore)
# ---------------------------------------------------------------------------


def encode_chunk_runs(runs: Sequence[ChunkRun], with_term_scores: bool = False) -> bytes:
    """Encode chunk runs in decreasing chunk-id order.

    The chunk id is stored once per run (the Chunk method's "small additional
    overhead for storing the chunk ID once for each chunk"), followed by the
    run length and delta-encoded document ids.
    """
    out = bytearray()
    out += encode_varint(len(runs))
    out.append(1 if with_term_scores else 0)
    previous_chunk = None
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        out += encode_varint(run.chunk_id)
        out += encode_varint(len(run.postings))
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            out += encode_varint(posting.doc_id - previous_doc)
            previous_doc = posting.doc_id
            if with_term_scores:
                out += struct.pack("<f", posting.term_score)
    return bytes(out)


def iter_chunk_runs(data: bytes) -> Iterator[ChunkRun]:
    """Stream-decode chunk runs in decreasing chunk-id order."""
    if not data:
        return
    run_count, offset = decode_varint(data, 0)
    if offset >= len(data):
        raise InvertedIndexError("truncated posting list header")
    with_term_scores = bool(data[offset])
    offset += 1
    for _ in range(run_count):
        chunk_id, offset = decode_varint(data, offset)
        posting_count, offset = decode_varint(data, offset)
        postings = []
        doc_id = 0
        for _ in range(posting_count):
            delta, offset = decode_varint(data, offset)
            doc_id += delta
            term_score = 0.0
            if with_term_scores:
                term_score = struct.unpack_from("<f", data, offset)[0]
                offset += 4
            postings.append(Posting(doc_id=doc_id, term_score=term_score))
        yield ChunkRun(chunk_id=chunk_id, postings=tuple(postings))


def decode_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Decode a byte string produced by :func:`encode_chunk_runs`."""
    return list(iter_chunk_runs(data))


# ---------------------------------------------------------------------------
# Lazy, page-at-a-time decoding
# ---------------------------------------------------------------------------

_FLOAT = struct.Struct("<f")
_SCORED = struct.Struct("<dI")
_SCORED_TS = struct.Struct("<dIf")


class LazyBytesReader:
    """Sequential byte reader over a page iterator.

    Query processing reads long inverted lists one page at a time and stops as
    soon as the early-termination conditions are met; pages after the stopping
    point must never be fetched or they would distort the I/O accounting.  This
    reader pulls pages from the underlying iterator only when the decoder
    actually needs more bytes.

    The reader keeps the current page fragment as-is and serves reads straight
    out of it (the previous implementation re-concatenated a rolling buffer —
    ``buffer[pos:] + fragment`` — on every page fetch, copying bytes it had
    already copied before).  Batch decoders in this module reach into
    ``_buf``/``_pos`` directly to decode whole runs of postings from the
    buffered fragment without per-byte method calls; they never trigger a page
    fetch the byte-at-a-time path would not have triggered at the same point.
    """

    __slots__ = ("_pages", "_buf", "_pos")

    def __init__(self, pages: Iterator[bytes]) -> None:
        self._pages = pages
        self._buf = b""
        self._pos = 0

    def _advance(self) -> bool:
        """Step to the next non-empty page fragment; ``False`` at end of list."""
        for fragment in self._pages:
            self._buf = fragment
            self._pos = 0
            if fragment:
                return True
        return False

    @property
    def exhausted(self) -> bool:
        """Whether no more bytes can be read."""
        if self._pos < len(self._buf):
            return False
        return not self._advance()

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` bytes (raises on truncation)."""
        buf = self._buf
        pos = self._pos
        end = pos + count
        if end <= len(buf):
            self._pos = end
            return buf[pos:end]
        parts = []
        needed = count
        while True:
            available = len(buf) - pos
            if available:
                take = available if available < needed else needed
                parts.append(buf[pos:pos + take])
                pos += take
                needed -= take
            if not needed:
                break
            if not self._advance():
                self._pos = pos
                raise InvertedIndexError("truncated posting list")
            buf = self._buf
            pos = 0
        self._buf = buf
        self._pos = pos
        return b"".join(parts)

    def read_varint(self) -> int:
        """Read one LEB128 varint."""
        buf = self._buf
        pos = self._pos
        size = len(buf)
        result = 0
        shift = 0
        while True:
            if pos >= size:
                if not self._advance():
                    raise InvertedIndexError("truncated posting list")
                buf = self._buf
                pos = 0
                size = len(buf)
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._buf = buf
                self._pos = pos
                return result
            shift += 7

    def read_struct(self, fmt: str) -> tuple:
        """Read and unpack one fixed-size struct."""
        size = struct.calcsize(fmt)
        buf = self._buf
        pos = self._pos
        if len(buf) - pos >= size:
            self._pos = pos + size
            return struct.unpack_from(fmt, buf, pos)
        return struct.unpack(fmt, self.read_bytes(size))


def _decode_delta_run(reader: LazyBytesReader, doc_id: int, remaining: int,
                      with_term_scores: bool, tag: int | None) -> tuple[list, int, int]:
    """Batch-decode delta-encoded postings wholly contained in the buffered fragment.

    Returns ``(batch, doc_id, remaining)`` where ``batch`` holds
    ``(doc_id, term_score)`` tuples — or ``(tag, doc_id, term_score)`` when a
    ``tag`` (the chunk id) is given.  Decoding stops at the fragment edge: a
    posting that might straddle it is left for the caller's byte-at-a-time
    fallback, so no page is ever fetched earlier than the scalar decoder would
    have fetched it.
    """
    buf = reader._buf
    pos = reader._pos
    size = len(buf)
    # A delta varint realistically spans <= 10 bytes (2**70); postings whose
    # bytes could reach past the fragment edge take the fallback path instead.
    safe = size - 14 if with_term_scores else size - 10
    unpack_from = _FLOAT.unpack_from
    batch: list = []
    append = batch.append
    while remaining and pos <= safe:
        entry = pos
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            doc_id += byte
        else:
            delta = byte & 0x7F
            shift = 7
            while True:
                if pos >= size:
                    pos = -1
                    break
                byte = buf[pos]
                pos += 1
                delta |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            if pos < 0 or (with_term_scores and pos + 4 > size):
                # Varint longer than the safety margin assumed; re-decode this
                # posting through the reader, which handles fragment crossing.
                pos = entry
                break
            doc_id += delta
        if with_term_scores:
            term_score = unpack_from(buf, pos)[0]
            pos += 4
        else:
            term_score = 0.0
        if tag is None:
            append((doc_id, term_score))
        else:
            append((tag, doc_id, term_score))
        remaining -= 1
    reader._pos = pos
    return batch, doc_id, remaining


def iter_id_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float]]:
    """Stream ID-ordered postings as ``(doc_id, term_score)`` pairs.

    Pages are fetched on demand only; postings are batch-decoded per buffered
    page fragment (see :func:`_decode_delta_run`), which is what makes long
    scans cheap without changing when each page is read.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    doc_id = 0
    remaining = count
    while remaining:
        batch, doc_id, remaining = _decode_delta_run(
            reader, doc_id, remaining, with_term_scores, tag=None
        )
        if batch:
            yield from batch
        if remaining:
            # One posting at the fragment edge, decoded byte-at-a-time (this
            # is the only path that may pull the next page).
            doc_id += reader.read_varint()
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, term_score)


def iter_scored_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, float, float]]:
    """Stream score-ordered postings as ``(doc_id, score, term_score)`` tuples.

    Records are fixed-width, so whole runs are decoded with
    ``Struct.iter_unpack`` over a zero-copy view of the buffered fragment.
    """
    if reader.exhausted:
        return
    count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    record = _SCORED_TS if with_term_scores else _SCORED
    width = record.size
    remaining = count
    while remaining:
        buf = reader._buf
        pos = reader._pos
        available = (len(buf) - pos) // width
        if available:
            take = available if available < remaining else remaining
            end = pos + take * width
            reader._pos = end
            remaining -= take
            if with_term_scores:
                for score, doc_id, term_score in record.iter_unpack(
                    memoryview(buf)[pos:end]
                ):
                    yield (doc_id, score, term_score)
            else:
                for score, doc_id in record.iter_unpack(memoryview(buf)[pos:end]):
                    yield (doc_id, score, 0.0)
        if remaining and len(reader._buf) - reader._pos < width:
            # One record straddling the fragment edge (or the next fetch).
            score, doc_id = reader.read_struct("<dI")
            term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
            remaining -= 1
            yield (doc_id, score, term_score)


def iter_chunk_postings_lazy(reader: LazyBytesReader) -> Iterator[tuple[int, int, float]]:
    """Stream ``(chunk_id, doc_id, term_score)`` triples from a chunked list.

    Runs are yielded in decreasing chunk-id order and postings within a run in
    increasing document-id order, exactly as stored.
    """
    if reader.exhausted:
        return
    run_count = reader.read_varint()
    with_term_scores = bool(reader.read_bytes(1)[0])
    for _ in range(run_count):
        chunk_id = reader.read_varint()
        posting_count = reader.read_varint()
        doc_id = 0
        remaining = posting_count
        while remaining:
            batch, doc_id, remaining = _decode_delta_run(
                reader, doc_id, remaining, with_term_scores, tag=chunk_id
            )
            if batch:
                yield from batch
            if remaining:
                doc_id += reader.read_varint()
                term_score = reader.read_struct("<f")[0] if with_term_scores else 0.0
                remaining -= 1
                yield (chunk_id, doc_id, term_score)


# ---------------------------------------------------------------------------
# Blocked codecs (fixed-span blocks with skip metadata)
# ---------------------------------------------------------------------------

#: First byte of every blocked payload; doubles as a cheap sanity check that a
#: payload routed to the blocked decoders actually came from a blocked encoder.
BLOCKED_MAGIC = 0xB7
BLOCKED_VERSION = 1

#: Kind tags stored in the blocked header.
BLOCK_KIND_ID = 0
BLOCK_KIND_SCORED = 1
BLOCK_KIND_CHUNK = 2

#: Postings per block.  128 keeps a block's payload well under one 4 KiB page
#: (a delta varint plus optional 4-byte term score is <= 14 bytes) so block
#: skipping works at sub-page granularity, while the directory stays ~1% of
#: the payload for long lists.
DEFAULT_BLOCK_SPAN = 128

_BOUND = struct.Struct("<d")


def blocked_postings_enabled() -> bool:
    """Process-wide default for the blocked long-list codec.

    On unless ``REPRO_BLOCKED_POSTINGS=0`` — the fidelity off-switch that
    reproduces the seed's legacy payloads (and their fig7/table1 I/O
    fingerprints) exactly.
    """
    return os.environ.get("REPRO_BLOCKED_POSTINGS", "1") != "0"


#: Block payload codecs.  ``varbyte`` is the PR 7 layout (delta varints, one
#: interleaved ``<f`` term score per posting); ``groupvarint`` packs four
#: deltas behind one control byte and moves term scores to a trailing float
#: region so a block decodes with a handful of bulk ``struct`` calls.
BLOCK_CODEC_VARBYTE = "varbyte"
BLOCK_CODEC_GROUPVARINT = "groupvarint"

#: Header flag bit that carries the codec id.  Readers that predate the
#: group-varint codec reject any flags byte above 1 with a ``ChecksumError``,
#: so a payload written with the new codec can never be silently misdecoded
#: by an old binary — the flag bit *is* the negotiation.
_FLAG_TERM_SCORES = 1
_FLAG_GROUPVARINT = 2


def block_codec_from_environ() -> str:
    """Process-wide default block payload codec (``REPRO_BLOCK_CODEC``).

    ``varbyte`` (the default) reproduces the PR 7 payloads bit-for-bit;
    ``groupvarint`` opts new encodes into the fast-decode layout.  Reads are
    always self-describing (the codec id travels in the header flags), so the
    flag only affects what *new* lists are written with.
    """
    value = os.environ.get("REPRO_BLOCK_CODEC", BLOCK_CODEC_VARBYTE).strip().lower()
    if value not in (BLOCK_CODEC_VARBYTE, BLOCK_CODEC_GROUPVARINT):
        raise InvertedIndexError(
            f"REPRO_BLOCK_CODEC: unknown block codec {value!r} "
            f"(expected {BLOCK_CODEC_VARBYTE!r} or {BLOCK_CODEC_GROUPVARINT!r})"
        )
    return value


def block_seeking_enabled() -> bool:
    """Process-wide default for directory-directed block seeking.

    Off unless ``REPRO_BLOCK_SEEKING=1``.  Seeking preserves top-k results
    but changes which pages a conjunctive scan touches, so it stays opt-in:
    the fig7/fig10 experiments run conjunctive queries and their I/O
    fingerprints are pinned to the sequential scan.
    """
    return os.environ.get("REPRO_BLOCK_SEEKING", "0") == "1"


# Group-varint: each control byte describes four deltas with 2-bit length
# codes mapping to {1, 2, 4} bytes (code 3 is reserved).  A 3-byte-wide
# delta pays one pad byte — a price worth paying for struct-decodable
# groups.  A stream stores ceil(count / 4) control bytes up front, then the
# value bytes back to back; the split layout lets the decoder concatenate
# the per-group struct formats (cached per control region — real lists
# repeat a handful of delta-width patterns) and unpack an entire block's
# deltas with a single bulk struct call.  Deltas >= 2**32 cannot be
# represented; encoders fall back to the varbyte codec for the whole list
# in that case (the header's codec id makes the fallback self-describing).
_GV_WIDTHS = (1, 2, 4)
_GV_FORMATS = ("B", "H", "I")
_GV_LIMIT = 1 << 32


def _gv_group_tables() -> "list[list[tuple[str, int] | None]]":
    """``tables[n][ctrl]``: format chars + byte width of an ``n``-value group.

    ``None`` marks an invalid control byte (a reserved length code, or
    non-zero bits beyond a tail group's values), which decoders surface as a
    :class:`~repro.errors.ChecksumError`.
    """
    tables: list[list[tuple[str, int] | None]] = [[]]
    for values in range(1, 5):
        table: list[tuple[str, int] | None] = [None] * 256
        for ctrl in range(4 ** values):
            codes = [(ctrl >> (2 * index)) & 3 for index in range(values)]
            if any(code == 3 for code in codes):
                continue
            fmt = "".join(_GV_FORMATS[code] for code in codes)
            table[ctrl] = (fmt, sum(_GV_WIDTHS[code] for code in codes))
        tables.append(table)
    return tables


_GV_GROUPS = _gv_group_tables()

#: (control region, count) -> (combined Struct, payload width) for whole-stream
#: bulk unpacking.  Real workloads repeat a handful of width patterns, so this
#: stays tiny; the cap is a backstop against adversarial byte diversity.
_GV_STREAM_CACHE: "dict[tuple[bytes, int], tuple[struct.Struct, int]]" = {}
_GV_STREAM_CACHE_MAX = 65536


def _encode_group_varint(values: Sequence[int]) -> bytes:
    """Encode non-negative ints < 2**32 as a group-varint stream."""
    ctrl_region = bytearray()
    data = bytearray()
    for start in range(0, len(values), 4):
        group = values[start:start + 4]
        ctrl = 0
        for index, value in enumerate(group):
            code = 0 if value < 0x100 else (1 if value < 0x10000 else 2)
            ctrl |= code << (2 * index)
            data += value.to_bytes(_GV_WIDTHS[code], "little")
        ctrl_region.append(ctrl)
    return bytes(ctrl_region + data)


def _gv_stream_struct(ctrl: bytes, count: int) -> "tuple[struct.Struct, int]":
    """Combined Struct + data width for one control region (cached)."""
    key = (ctrl, count)
    entry = _GV_STREAM_CACHE.get(key)
    if entry is not None:
        return entry
    tail = count & 3
    full = _GV_GROUPS[4]
    parts: list[str] = []
    width = 0
    for byte in ctrl[:-1] if tail else ctrl:
        group = full[byte]
        if group is None:
            raise ChecksumError("blocked posting list: bad group-varint control byte")
        parts.append(group[0])
        width += group[1]
    if tail:
        group = _GV_GROUPS[tail][ctrl[-1]]
        if group is None:
            raise ChecksumError("blocked posting list: bad group-varint control byte")
        parts.append(group[0])
        width += group[1]
    packed = struct.Struct("<" + "".join(parts))
    if len(_GV_STREAM_CACHE) >= _GV_STREAM_CACHE_MAX:
        _GV_STREAM_CACHE.clear()
    _GV_STREAM_CACHE[key] = (packed, width)
    return packed, width


def _decode_group_varint(payload: bytes, offset: int,
                         count: int) -> "tuple[tuple[int, ...], int]":
    """Decode ``count`` group-varint values; return ``(values, next_offset)``."""
    n_ctrl = (count + 3) >> 2
    size = len(payload)
    if offset + n_ctrl > size:
        raise ChecksumError("blocked posting list: truncated block")
    ctrl = payload[offset:offset + n_ctrl]
    offset += n_ctrl
    packed, width = _gv_stream_struct(ctrl, count)
    if offset + width > size:
        raise ChecksumError("blocked posting list: truncated block")
    return packed.unpack_from(payload, offset), offset + width


@dataclass(frozen=True)
class BlockInfo:
    """Directory entry of one block in a blocked long-list payload.

    Attributes
    ----------
    count:
        Number of postings in the block (always >= 1).
    last_doc_id:
        Document id of the block's final posting (skip/seek metadata).
    bound:
        Kind-specific max-score metadata: the largest term score in the block
        (id kind), the largest stored document score (scored kind — the first
        record, lists are score-descending) or the largest chunk id (chunk
        kind).  Block-max pruning compares this against the result heap's
        published threshold.
    length:
        Payload length in bytes.
    crc:
        CRC32 of the payload bytes.
    """

    count: int
    last_doc_id: int
    bound: float
    length: int
    crc: int


@dataclass(frozen=True)
class BlockDirectory:
    """Parsed header + directory of a blocked payload.

    ``header_length`` is the byte length of the header + directory region;
    block ``index``'s payload starts at ``header_length`` plus the lengths of
    the blocks before it — what the block-seek path uses to reopen a segment
    scan at an arbitrary block without touching the pages in between.
    """

    kind: int
    with_term_scores: bool
    total: int
    blocks: tuple[BlockInfo, ...]
    codec: str = BLOCK_CODEC_VARBYTE
    header_length: int = 0


def _encode_blocked(kind: int, with_term_scores: bool, total: int,
                    blocks: "list[tuple[int, int, float, bytes]]",
                    codec: str = BLOCK_CODEC_VARBYTE) -> bytes:
    """Assemble the blocked wire format.

    ``blocks`` holds ``(count, last_doc_id, bound, payload)`` per block.  The
    layout is: a 4-byte header (magic, version, kind, flags), varint total and
    block counts, the varint-length + CRC32-protected block directory, then
    the block payloads back to back.  Both the directory and each payload
    carry a CRC so bit-rot anywhere in the segment surfaces as a typed
    :class:`~repro.errors.ChecksumError` on *both* storage backends (the file
    backend's per-page checksum catches it one layer earlier).
    """
    directory = bytearray()
    for count, last_doc_id, bound, payload in blocks:
        directory += encode_varint(count)
        directory += encode_varint(last_doc_id)
        directory += _BOUND.pack(bound)
        directory += encode_varint(len(payload))
        directory += encode_varint(zlib.crc32(payload))
    flags = _FLAG_TERM_SCORES if with_term_scores else 0
    if codec == BLOCK_CODEC_GROUPVARINT:
        flags |= _FLAG_GROUPVARINT
    out = bytearray()
    out.append(BLOCKED_MAGIC)
    out.append(BLOCKED_VERSION)
    out.append(kind)
    out.append(flags)
    out += encode_varint(total)
    out += encode_varint(len(blocks))
    out += encode_varint(len(directory))
    out += encode_varint(zlib.crc32(bytes(directory)))
    out += directory
    for _count, _last, _bound, payload in blocks:
        out += payload
    return bytes(out)


def _check_block_span(block_span: int) -> None:
    if block_span < 1:
        raise InvertedIndexError(f"block_span must be positive, got {block_span}")


def encode_blocked_id_postings(postings: Sequence[Posting],
                               with_term_scores: bool = False,
                               block_span: int = DEFAULT_BLOCK_SPAN,
                               codec: "str | None" = None) -> bytes:
    """Blocked variant of :func:`encode_id_postings`.

    Each block is self-contained: its first document id is stored absolute so
    a block decodes without its predecessors (and torn tails are detected per
    block).  The block bound is the largest term score in the block.

    Under the group-varint codec a block's payload is the group-varint delta
    region followed by one trailing ``<{count}f`` term-score region (instead
    of interleaving), so both regions decode with bulk struct calls.
    """
    _check_block_span(block_span)
    if codec is None:
        codec = block_codec_from_environ()
    previous = 0
    for posting in postings:
        if posting.doc_id < previous:
            raise InvertedIndexError("ID-ordered postings must be sorted by doc id")
        previous = posting.doc_id
    if codec == BLOCK_CODEC_GROUPVARINT and postings and postings[-1].doc_id >= _GV_LIMIT:
        codec = BLOCK_CODEC_VARBYTE  # deltas can exceed the 4-byte group width
    groupvarint = codec == BLOCK_CODEC_GROUPVARINT
    blocks: list[tuple[int, int, float, bytes]] = []
    for start in range(0, len(postings), block_span):
        span = postings[start:start + block_span]
        bound = 0.0
        if groupvarint:
            deltas = []
            previous = 0
            for posting in span:
                deltas.append(posting.doc_id - previous)
                previous = posting.doc_id
            body = bytearray(_encode_group_varint(deltas))
            if with_term_scores:
                scores = [posting.term_score for posting in span]
                body += struct.pack(f"<{len(span)}f", *scores)
                bound = max(0.0, max(scores))
        else:
            body = bytearray()
            previous = 0
            for posting in span:
                body += encode_varint(posting.doc_id - previous)
                previous = posting.doc_id
                if with_term_scores:
                    body += _FLOAT.pack(posting.term_score)
                    if posting.term_score > bound:
                        bound = posting.term_score
        blocks.append((len(span), span[-1].doc_id, bound, bytes(body)))
    return _encode_blocked(BLOCK_KIND_ID, with_term_scores, len(postings), blocks,
                           codec=codec)


def encode_blocked_scored_postings(postings: Sequence[ScoredPosting],
                                   with_term_scores: bool = False,
                                   block_span: int = DEFAULT_BLOCK_SPAN,
                                   codec: "str | None" = None) -> bytes:
    """Blocked variant of :func:`encode_scored_postings`.

    Records keep the fixed ``<dI>`` layout; the block bound is the stored
    score of the block's first record (lists are score-descending, so that is
    the block maximum — what ``thresholdValueOf`` bounds at query time).

    ``codec`` is accepted for signature parity but scored payloads are
    already fixed-width struct records — there is nothing for group-varint to
    improve, so the header always carries the varbyte codec id and the
    payload bytes are identical under either setting.
    """
    del codec
    _check_block_span(block_span)
    previous_score = None
    for posting in postings:
        if previous_score is not None and posting.score > previous_score:
            raise InvertedIndexError("scored postings must be sorted by decreasing score")
        previous_score = posting.score
    record = _SCORED_TS if with_term_scores else _SCORED
    blocks: list[tuple[int, int, float, bytes]] = []
    for start in range(0, len(postings), block_span):
        span = postings[start:start + block_span]
        if with_term_scores:
            body = b"".join(
                record.pack(posting.score, posting.doc_id, posting.term_score)
                for posting in span
            )
        else:
            body = b"".join(record.pack(posting.score, posting.doc_id) for posting in span)
        blocks.append((len(span), span[-1].doc_id, span[0].score, body))
    return _encode_blocked(BLOCK_KIND_SCORED, with_term_scores, len(postings), blocks)


def encode_blocked_chunk_runs(runs: Sequence[ChunkRun],
                              with_term_scores: bool = False,
                              block_span: int = DEFAULT_BLOCK_SPAN,
                              codec: "str | None" = None) -> bytes:
    """Blocked variant of :func:`encode_chunk_runs`.

    Runs are flattened into the same (decreasing chunk, increasing doc id)
    posting order and re-grouped into fixed-span blocks; a run that straddles
    a block boundary restarts as a fresh fragment (chunk id, count, absolute
    first doc id) so every block decodes independently.  The block bound is
    the block's largest chunk id — its first fragment's.

    Under the group-varint codec a block's payload is: a varint fragment
    count, the per-fragment ``(chunk id, count)`` varint pairs, one
    group-varint stream of all the block's doc-id deltas (the delta chain
    restarting at every fragment), then the trailing ``<{count}f`` term-score
    region when term scores are carried.
    """
    _check_block_span(block_span)
    if codec is None:
        codec = block_codec_from_environ()
    flat: list[tuple[int, int, float]] = []
    previous_chunk = None
    max_doc_id = 0
    for run in runs:
        if previous_chunk is not None and run.chunk_id >= previous_chunk:
            raise InvertedIndexError("chunk runs must be sorted by decreasing chunk id")
        previous_chunk = run.chunk_id
        previous_doc = 0
        for posting in run.postings:
            if posting.doc_id < previous_doc:
                raise InvertedIndexError(
                    "postings within a chunk must be sorted by increasing doc id"
                )
            previous_doc = posting.doc_id
            flat.append((run.chunk_id, posting.doc_id, posting.term_score))
        if previous_doc > max_doc_id:
            max_doc_id = previous_doc
    if codec == BLOCK_CODEC_GROUPVARINT and max_doc_id >= _GV_LIMIT:
        codec = BLOCK_CODEC_VARBYTE  # deltas can exceed the 4-byte group width
    groupvarint = codec == BLOCK_CODEC_GROUPVARINT
    blocks: list[tuple[int, int, float, bytes]] = []
    total = len(flat)
    for start in range(0, total, block_span):
        span = flat[start:start + block_span]
        fragments: list[tuple[int, int]] = []
        index = 0
        while index < len(span):
            chunk_id = span[index][0]
            end = index
            while end < len(span) and span[end][0] == chunk_id:
                end += 1
            fragments.append((chunk_id, end - index))
            index = end
        body = bytearray()
        if groupvarint:
            deltas: list[int] = []
            position = 0
            body += encode_varint(len(fragments))
            for chunk_id, count in fragments:
                body += encode_varint(chunk_id)
                body += encode_varint(count)
                previous_doc = 0
                for _chunk, doc_id, _term_score in span[position:position + count]:
                    deltas.append(doc_id - previous_doc)
                    previous_doc = doc_id
                position += count
            body += _encode_group_varint(deltas)
            if with_term_scores:
                body += struct.pack(f"<{len(span)}f",
                                    *[term_score for _chunk, _doc, term_score in span])
        else:
            position = 0
            for chunk_id, count in fragments:
                body += encode_varint(chunk_id)
                body += encode_varint(count)
                previous_doc = 0
                for _chunk, doc_id, term_score in span[position:position + count]:
                    body += encode_varint(doc_id - previous_doc)
                    previous_doc = doc_id
                    if with_term_scores:
                        body += _FLOAT.pack(term_score)
                position += count
        blocks.append((len(span), span[-1][1], float(span[0][0]), bytes(body)))
    return _encode_blocked(BLOCK_KIND_CHUNK, with_term_scores, total, blocks,
                           codec=codec)


def _read_blocked_header(reader: LazyBytesReader, expected_kind: int,
                         head: "bytes | None" = None) -> BlockDirectory:
    """Parse the blocked header + directory through ``reader`` (CRC-verified)."""
    if head is None:
        head = reader.read_bytes(4)
    if head[0] != BLOCKED_MAGIC:
        raise ChecksumError(
            f"blocked posting list: bad magic byte 0x{head[0]:02x}"
        )
    if head[1] != BLOCKED_VERSION:
        raise InvertedIndexError(
            f"blocked posting list: unsupported version {head[1]}"
        )
    if head[2] != expected_kind:
        raise InvertedIndexError(
            f"blocked posting list: kind {head[2]} where {expected_kind} was expected"
        )
    if head[3] > (_FLAG_TERM_SCORES | _FLAG_GROUPVARINT):
        raise ChecksumError(f"blocked posting list: bad flags byte 0x{head[3]:02x}")
    with_term_scores = bool(head[3] & _FLAG_TERM_SCORES)
    codec = (BLOCK_CODEC_GROUPVARINT if head[3] & _FLAG_GROUPVARINT
             else BLOCK_CODEC_VARBYTE)
    total = reader.read_varint()
    block_count = reader.read_varint()
    directory_length = reader.read_varint()
    directory_crc = reader.read_varint()
    header_length = (4 + _varint_length(total) + _varint_length(block_count)
                     + _varint_length(directory_length)
                     + _varint_length(directory_crc) + directory_length)
    blob = reader.read_bytes(directory_length)
    if zlib.crc32(blob) != directory_crc:
        raise ChecksumError("blocked posting list: directory checksum mismatch")
    blocks: list[BlockInfo] = []
    offset = 0
    for _ in range(block_count):
        count, offset = decode_varint(blob, offset)
        last_doc_id, offset = decode_varint(blob, offset)
        if offset + 8 > len(blob):
            raise ChecksumError("blocked posting list: truncated directory entry")
        bound = _BOUND.unpack_from(blob, offset)[0]
        offset += 8
        length, offset = decode_varint(blob, offset)
        crc, offset = decode_varint(blob, offset)
        blocks.append(BlockInfo(count=count, last_doc_id=last_doc_id, bound=bound,
                                length=length, crc=crc))
    if offset != len(blob):
        raise ChecksumError("blocked posting list: directory length mismatch")
    if sum(block.count for block in blocks) != total:
        raise ChecksumError("blocked posting list: posting count mismatch")
    if any(block.count == 0 for block in blocks):
        raise ChecksumError("blocked posting list: empty block")
    return BlockDirectory(kind=head[2], with_term_scores=with_term_scores,
                          total=total, blocks=tuple(blocks), codec=codec,
                          header_length=header_length)


def _varint_length(value: int) -> int:
    """Encoded byte length of ``value`` as a LEB128 varint."""
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def read_blocked_total(reader: LazyBytesReader) -> "int | None":
    """Read only the posting count from a blocked payload's header.

    Serves the planner's list-length estimates straight from the directory
    header: four fixed bytes plus one varint, so the answer always comes out
    of the segment's first page.  Returns ``None`` when the payload is not in
    the blocked format (legacy flat encodings carry no self-describing count).
    """
    if reader.exhausted:
        return 0
    head = reader.read_bytes(4)
    if head[0] != BLOCKED_MAGIC or head[1] != BLOCKED_VERSION:
        return None
    return reader.read_varint()


def peek_blocked_directory(reader: LazyBytesReader) -> "BlockDirectory | None":
    """Parse a blocked payload's header + directory, tolerating legacy payloads.

    The EXPLAIN planner's peek: returns ``None`` when the payload is empty or
    not in the blocked format (legacy flat encodings), and otherwise the
    CRC-verified :class:`BlockDirectory` with the kind sniffed from the
    header, so callers need no method-specific expectation.  A payload that
    *claims* to be blocked but is corrupt still raises, like any read.
    """
    if reader.exhausted:
        return None
    try:
        head = reader.read_bytes(4)
    except InvertedIndexError:
        return None  # shorter than any blocked header: a legacy payload
    if head[0] != BLOCKED_MAGIC or head[1] != BLOCKED_VERSION:
        return None
    if head[2] not in (BLOCK_KIND_ID, BLOCK_KIND_SCORED, BLOCK_KIND_CHUNK):
        return None
    return _read_blocked_header(reader, head[2], head=head)


def read_block_directory(data: bytes) -> BlockDirectory:
    """Parse a blocked payload's header + directory from bytes (tests, benches)."""
    return _read_blocked_header(LazyBytesReader(iter((data,))), _sniff_kind(data))


def _sniff_kind(data: bytes) -> int:
    if len(data) < 3:
        raise InvertedIndexError("blocked posting list: payload too short")
    return data[2]


def _read_block_payload(reader: LazyBytesReader, block: BlockInfo) -> bytes:
    payload = reader.read_bytes(block.length)
    if zlib.crc32(payload) != block.crc:
        raise ChecksumError("blocked posting list: block checksum mismatch")
    return payload


def _decode_id_block(payload: bytes, block: BlockInfo,
                     with_term_scores: bool) -> "list[tuple[int, float]]":
    out: list[tuple[int, float]] = []
    append = out.append
    offset = 0
    doc_id = 0
    size = len(payload)
    for _ in range(block.count):
        delta, offset = decode_varint(payload, offset)
        doc_id += delta
        if with_term_scores:
            if offset + 4 > size:
                raise ChecksumError("blocked posting list: truncated block")
            append((doc_id, _FLOAT.unpack_from(payload, offset)[0]))
            offset += 4
        else:
            append((doc_id, 0.0))
    if offset != size or doc_id != block.last_doc_id:
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_scored_block(payload: bytes, block: BlockInfo,
                         with_term_scores: bool) -> "list[tuple[int, float, float]]":
    record = _SCORED_TS if with_term_scores else _SCORED
    if len(payload) != block.count * record.size:
        raise ChecksumError("blocked posting list: block contents do not match header")
    if with_term_scores:
        out = [(doc_id, score, term_score)
               for score, doc_id, term_score in record.iter_unpack(payload)]
    else:
        out = [(doc_id, score, 0.0) for score, doc_id in record.iter_unpack(payload)]
    if out[-1][0] != block.last_doc_id or out[0][1] != block.bound:
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_chunk_block(payload: bytes, block: BlockInfo,
                        with_term_scores: bool) -> "list[tuple[int, int, float]]":
    out: list[tuple[int, int, float]] = []
    append = out.append
    offset = 0
    size = len(payload)
    remaining = block.count
    previous_chunk = None
    while remaining:
        chunk_id, offset = decode_varint(payload, offset)
        fragment_count, offset = decode_varint(payload, offset)
        if fragment_count == 0 or fragment_count > remaining:
            raise ChecksumError("blocked posting list: bad chunk fragment length")
        if previous_chunk is not None and chunk_id >= previous_chunk:
            raise ChecksumError("blocked posting list: chunk fragments out of order")
        previous_chunk = chunk_id
        doc_id = 0
        for _ in range(fragment_count):
            delta, offset = decode_varint(payload, offset)
            doc_id += delta
            if with_term_scores:
                if offset + 4 > size:
                    raise ChecksumError("blocked posting list: truncated block")
                append((chunk_id, doc_id, _FLOAT.unpack_from(payload, offset)[0]))
                offset += 4
            else:
                append((chunk_id, doc_id, 0.0))
        remaining -= fragment_count
    if offset != size or out[-1][1] != block.last_doc_id or out[0][0] != int(block.bound):
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_id_block_gv(payload: bytes, block: BlockInfo,
                        with_term_scores: bool) -> "list[tuple[int, float]]":
    """Group-varint counterpart of :func:`_decode_id_block` (same tuples)."""
    count = block.count
    deltas, offset = _decode_group_varint(payload, 0, count)
    doc_ids = list(accumulate(deltas))
    if with_term_scores:
        if offset + 4 * count != len(payload):
            raise ChecksumError("blocked posting list: block contents do not match header")
        scores = struct.unpack_from(f"<{count}f", payload, offset)
        out = list(zip(doc_ids, scores))
    else:
        if offset != len(payload):
            raise ChecksumError("blocked posting list: block contents do not match header")
        out = list(zip(doc_ids, repeat(0.0)))
    if doc_ids[-1] != block.last_doc_id:
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


def _decode_chunk_block_gv(payload: bytes, block: BlockInfo,
                           with_term_scores: bool) -> "list[tuple[int, int, float]]":
    """Group-varint counterpart of :func:`_decode_chunk_block` (same triples)."""
    fragment_count, offset = decode_varint(payload, 0)
    fragments: list[tuple[int, int]] = []
    remaining = block.count
    previous_chunk = None
    for _ in range(fragment_count):
        chunk_id, offset = decode_varint(payload, offset)
        count, offset = decode_varint(payload, offset)
        if count == 0 or count > remaining:
            raise ChecksumError("blocked posting list: bad chunk fragment length")
        if previous_chunk is not None and chunk_id >= previous_chunk:
            raise ChecksumError("blocked posting list: chunk fragments out of order")
        previous_chunk = chunk_id
        fragments.append((chunk_id, count))
        remaining -= count
    if remaining:
        raise ChecksumError("blocked posting list: bad chunk fragment length")
    deltas, offset = _decode_group_varint(payload, offset, block.count)
    if with_term_scores:
        if offset + 4 * block.count != len(payload):
            raise ChecksumError("blocked posting list: block contents do not match header")
        scores = struct.unpack_from(f"<{block.count}f", payload, offset)
    else:
        if offset != len(payload):
            raise ChecksumError("blocked posting list: block contents do not match header")
        scores = None
    out: list[tuple[int, int, float]] = []
    extend = out.extend
    position = 0
    for chunk_id, count in fragments:
        doc_ids = accumulate(deltas[position:position + count])
        if scores is not None:
            extend(zip(repeat(chunk_id), doc_ids, scores[position:position + count]))
        else:
            extend(zip(repeat(chunk_id), doc_ids, repeat(0.0)))
        position += count
    if out[-1][1] != block.last_doc_id or out[0][0] != int(block.bound):
        raise ChecksumError("blocked posting list: block contents do not match header")
    return out


#: Per-(kind, codec) block decoders.  The scored kind's records are already
#: fixed-width structs, so both codec ids share one decoder.
_BLOCK_DECODERS = {
    (BLOCK_KIND_ID, BLOCK_CODEC_VARBYTE): _decode_id_block,
    (BLOCK_KIND_ID, BLOCK_CODEC_GROUPVARINT): _decode_id_block_gv,
    (BLOCK_KIND_SCORED, BLOCK_CODEC_VARBYTE): _decode_scored_block,
    (BLOCK_KIND_SCORED, BLOCK_CODEC_GROUPVARINT): _decode_scored_block,
    (BLOCK_KIND_CHUNK, BLOCK_CODEC_VARBYTE): _decode_chunk_block,
    (BLOCK_KIND_CHUNK, BLOCK_CODEC_GROUPVARINT): _decode_chunk_block_gv,
}


def _iter_blocked_lazy(reader: LazyBytesReader, kind: int,
                       prune=None, on_skip=None) -> Iterator:
    """Shared blocked scan loop: decode block-at-a-time, stop at a pruned block.

    ``prune(block)`` — when given — is consulted *before* the block's payload
    bytes are read; because every blocked list is rank-ordered, a block whose
    bound cannot beat the threshold means no later block can either, so the
    scan ends there and the remaining pages are never fetched.  ``on_skip``
    receives the number of blocks skipped that way plus the pruned
    :class:`BlockInfo` itself (stats accounting and EXPLAIN ANALYZE's
    skip-decision reporting — the block carries the bound the floor beat).
    """
    if reader.exhausted:
        return
    directory = _read_blocked_header(reader, kind)
    decode_block = _BLOCK_DECODERS[(kind, directory.codec)]
    with_term_scores = directory.with_term_scores
    blocks = directory.blocks
    for index, block in enumerate(blocks):
        if prune is not None and prune(block):
            if on_skip is not None:
                on_skip(len(blocks) - index, block)
            return
        yield from decode_block(_read_block_payload(reader, block), block,
                                with_term_scores)


def iter_blocked_id_postings_lazy(reader: LazyBytesReader, prune=None,
                                  on_skip=None) -> Iterator[tuple[int, float]]:
    """Blocked counterpart of :func:`iter_id_postings_lazy` (same tuples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_ID,
                              prune=prune, on_skip=on_skip)


def iter_blocked_scored_postings_lazy(reader: LazyBytesReader, prune=None,
                                      on_skip=None) -> Iterator[tuple[int, float, float]]:
    """Blocked counterpart of :func:`iter_scored_postings_lazy` (same tuples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_SCORED,
                              prune=prune, on_skip=on_skip)


def iter_blocked_chunk_postings_lazy(reader: LazyBytesReader, prune=None,
                                     on_skip=None) -> Iterator[tuple[int, int, float]]:
    """Blocked counterpart of :func:`iter_chunk_postings_lazy` (same triples)."""
    return _iter_blocked_lazy(reader, BLOCK_KIND_CHUNK,
                              prune=prune, on_skip=on_skip)


class BlockedIDSeeker:
    """Seekable cursor over a blocked id-kind list: ``next_geq`` via the directory.

    A DAAT conjunctive merge advances each term's cursor to the candidate
    document id rather than scanning every posting.  The directory's
    ``last_doc_id`` entries locate the first block that can contain a target
    (binary search); a jump past one or more blocks reopens the page stream at
    the target block's byte offset, so the pages under the skipped blocks are
    never fetched.

    ``open_pages(start_byte)`` must return a fresh page-fragment iterator
    positioned at that byte of the segment (``HeapFile.iter_pages``).
    ``on_skip`` — when given — receives the number of whole blocks jumped
    over plus ``None`` (a seek jump prunes against a document-id target, not
    a score bound), mirroring the pruning path's accounting.

    ``head`` is the current ``(doc_id, term_score)`` posting, ``None`` once
    the list is exhausted.  Targets must be non-decreasing across calls —
    the cursor only ever moves forward.
    """

    __slots__ = ("head", "_open_pages", "_on_skip", "_blocks", "_last_doc_ids",
                 "_offsets", "_decode", "_with_term_scores", "_reader",
                 "_reader_block", "_block", "_buffer", "_docs", "_pos", "total")

    def __init__(self, open_pages, on_skip=None) -> None:
        self._open_pages = open_pages
        self._on_skip = on_skip
        self._buffer: "list[tuple[int, float]]" = []
        self._docs: list[int] = []
        self._pos = 0
        self._block = -1
        self.head: "tuple[int, float] | None" = None
        reader = LazyBytesReader(open_pages(0))
        if reader.exhausted:
            self._blocks = ()
            self._last_doc_ids: list[int] = []
            self._offsets: list[int] = []
            self.total = 0
            return
        directory = _read_blocked_header(reader, BLOCK_KIND_ID)
        self._decode = _BLOCK_DECODERS[(BLOCK_KIND_ID, directory.codec)]
        self._with_term_scores = directory.with_term_scores
        self._blocks = directory.blocks
        self._last_doc_ids = [block.last_doc_id for block in directory.blocks]
        offsets = [directory.header_length]
        for block in directory.blocks[:-1]:
            offsets.append(offsets[-1] + block.length)
        self._offsets = offsets
        self.total = directory.total
        self._reader = reader
        self._reader_block = 0
        if self._blocks:
            self._load_block(0)
            self.head = self._buffer[0]

    def advance(self) -> "tuple[int, float] | None":
        """Step to the next posting in id order; returns the new ``head``."""
        if self.head is None:
            return None
        pos = self._pos + 1
        if pos < len(self._buffer):
            self._pos = pos
            self.head = self._buffer[pos]
            return self.head
        index = self._block + 1
        if index >= len(self._blocks):
            self._exhaust()
            return None
        self._load_block(index)
        self.head = self._buffer[0]
        return self.head

    def next_geq(self, target: int) -> "tuple[int, float] | None":
        """Advance to the first posting with ``doc_id >= target``."""
        head = self.head
        if head is None or head[0] >= target:
            return head
        docs = self._docs
        if docs[-1] >= target:
            pos = bisect_left(docs, target, self._pos + 1)
            self._pos = pos
            self.head = self._buffer[pos]
            return self.head
        index = bisect_left(self._last_doc_ids, target, self._block + 1)
        if index >= len(self._blocks):
            self._exhaust()
            return None
        self._load_block(index)
        pos = bisect_left(self._docs, target)
        self._pos = pos
        self.head = self._buffer[pos]
        return self.head

    def _load_block(self, index: int) -> None:
        if index != self._reader_block:
            if index > self._reader_block and self._on_skip is not None:
                self._on_skip(index - self._reader_block, None)
            self._reader = LazyBytesReader(self._open_pages(self._offsets[index]))
        block = self._blocks[index]
        payload = _read_block_payload(self._reader, block)
        self._buffer = self._decode(payload, block, self._with_term_scores)
        self._docs = [posting[0] for posting in self._buffer]
        self._pos = 0
        self._block = index
        self._reader_block = index + 1

    def _exhaust(self) -> None:
        self.head = None
        self._buffer = []
        self._docs = []
        self._block = len(self._blocks)


def decode_blocked_id_postings(data: bytes) -> list[Posting]:
    """Eagerly decode a payload produced by :func:`encode_blocked_id_postings`."""
    reader = LazyBytesReader(iter((data,)))
    return [
        Posting(doc_id=doc_id, term_score=term_score)
        for doc_id, term_score in iter_blocked_id_postings_lazy(reader)
    ]


def decode_blocked_scored_postings(data: bytes) -> list[ScoredPosting]:
    """Eagerly decode a payload produced by :func:`encode_blocked_scored_postings`."""
    reader = LazyBytesReader(iter((data,)))
    return [
        ScoredPosting(doc_id=doc_id, score=score, term_score=term_score)
        for doc_id, score, term_score in iter_blocked_scored_postings_lazy(reader)
    ]


def decode_blocked_chunk_runs(data: bytes) -> list[ChunkRun]:
    """Eagerly decode a payload produced by :func:`encode_blocked_chunk_runs`.

    Fragments of one chunk split across block boundaries are re-joined, so the
    result compares equal to the runs given to the encoder.
    """
    reader = LazyBytesReader(iter((data,)))
    runs: list[ChunkRun] = []
    current_chunk: int | None = None
    postings: list[Posting] = []
    for chunk_id, doc_id, term_score in iter_blocked_chunk_postings_lazy(reader):
        if chunk_id != current_chunk:
            if current_chunk is not None:
                runs.append(ChunkRun(chunk_id=current_chunk, postings=tuple(postings)))
            current_chunk = chunk_id
            postings = []
        postings.append(Posting(doc_id=doc_id, term_score=term_score))
    if current_chunk is not None:
        runs.append(ChunkRun(chunk_id=current_chunk, postings=tuple(postings)))
    return runs


# ---------------------------------------------------------------------------
# Helpers shared by the index builders
# ---------------------------------------------------------------------------


def build_rekey_operations(
    changes: Iterable[tuple[int, float, float]],
    terms_of: "Callable[[int], Iterable[str]]",
) -> tuple[list[tuple[str, float, int]], list[tuple[str, float, int]]]:
    """Turn coalesced score changes into sorted clustered-list re-key batches.

    ``changes`` yields ``(doc_id, old_score, new_score)`` triples — one per
    document, already coalesced from first-seen old score to final new score.
    ``terms_of`` maps a document id to its distinct terms (``Content(id)``).
    Returns ``(deletes, inserts)``: the old ``(term, -old_score, doc_id)`` keys
    to remove from a score-clustered list and the new ``(term, -new_score,
    doc_id)`` keys to add, each sorted so a bulk B+-tree pass can consume the
    run without re-descending per key.  Documents whose score did not change
    produce no operations (their postings are already keyed correctly).
    """
    deletes: list[tuple[str, float, int]] = []
    inserts: list[tuple[str, float, int]] = []
    for doc_id, old_score, new_score in changes:
        if old_score == new_score:
            continue
        for term in terms_of(doc_id):
            deletes.append((term, -old_score, doc_id))
            inserts.append((term, -new_score, doc_id))
    deletes.sort()
    inserts.sort()
    return deletes, inserts


def build_chunk_runs(doc_chunks: Iterable[tuple[int, int, float]]) -> list[ChunkRun]:
    """Group ``(doc_id, chunk_id, term_score)`` triples into sorted chunk runs.

    Runs are ordered by decreasing chunk id; postings within a run by
    increasing document id — the on-disk order the Chunk method requires.
    """
    by_chunk: dict[int, list[Posting]] = {}
    for doc_id, chunk_id, term_score in doc_chunks:
        by_chunk.setdefault(chunk_id, []).append(Posting(doc_id=doc_id, term_score=term_score))
    runs = []
    for chunk_id in sorted(by_chunk, reverse=True):
        postings = tuple(sorted(by_chunk[chunk_id], key=lambda posting: posting.doc_id))
        runs.append(ChunkRun(chunk_id=chunk_id, postings=postings))
    return runs
