"""The unified front door over a (possibly term-partitioned) index.

:class:`IndexRouter` hides the sharding layer behind the exact
:class:`~repro.core.indexes.base.InvertedIndex` operational API: callers
insert/delete/update documents, apply batched score updates and run top-k
queries without knowing how many :class:`StorageEnvironment` instances back
the term space.  On top of the delegated API it exposes the shard-level
observability the experiments need — the term→shard resolver, per-shard I/O
snapshots/deltas, and the lifetime load/skew report.

The router adds no storage behaviour of its own: every keyed operation is
routed inside the store facades (:mod:`repro.storage.sharding`), so a router
over a single-shard (or plain) environment is fingerprint-identical to the
classic engine.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.indexes.base import InvertedIndex, QueryResponse, UpdateStats
from repro.core.indexes.registry import create_index
from repro.storage.environment import IOSnapshot, StorageEnvironment
from repro.storage.sharding import (
    ShardedEnvironment,
    ShardLoad,
    shard_load,
    shard_of_term,
)
from repro.text.documents import DocumentStore


class IndexRouter:
    """Route the ``InvertedIndex`` API over N term-partitioned environments.

    Wraps an existing index (``IndexRouter(index)``); use :meth:`build` to
    construct the environment, document store and index method in one call.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index
        self.env = index.env

    @classmethod
    def build(cls, method: str, shard_count: int = 1,
              documents: DocumentStore | None = None, name: str = "svr",
              cache_pages: int = 4096, page_size: int = 4096,
              env: "StorageEnvironment | ShardedEnvironment | None" = None,
              **options: Any) -> "IndexRouter":
        """Create a sharded environment plus an index method routed over it."""
        if env is None:
            env = ShardedEnvironment(
                shard_count=shard_count, cache_pages=cache_pages, page_size=page_size
            )
        if documents is None:
            documents = DocumentStore()
        return cls(create_index(method, env, documents, name=name, **options))

    # -- shard observability -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of term-space partitions (1 for a plain environment)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_count
        return 1

    def shard_of_term(self, term: str) -> int:
        """The shard owning a term's inverted lists."""
        return shard_of_term(term, self.shard_count)

    def shard_snapshots(self) -> list[IOSnapshot]:
        """Per-shard I/O snapshots (a single-element list for a plain env)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_snapshots()
        return [self.env.snapshot()]

    def shard_deltas(self, earlier: list[IOSnapshot]):
        """Per-shard deltas since :meth:`shard_snapshots`."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_deltas(earlier)
        if len(earlier) != 1:
            raise ValueError(f"expected 1 shard snapshot, got {len(earlier)}")
        return [self.env.delta_since(earlier[0])]

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard buffer-pool load and the max/mean skew."""
        return shard_load(self.env)

    # -- delegated InvertedIndex API ----------------------------------------------

    @property
    def method_name(self) -> str:
        return self.index.method_name

    @property
    def documents(self) -> DocumentStore:
        return self.index.documents

    @property
    def update_stats(self) -> UpdateStats:
        return self.index.update_stats

    @property
    def finalized(self) -> bool:
        return self.index.finalized

    def add_document(self, doc_id: int, score: float,
                     terms: Iterable[str] | None = None) -> None:
        self.index.add_document(doc_id, score, terms=terms)

    def finalize(self) -> None:
        self.index.finalize()

    def current_score(self, doc_id: int) -> float | None:
        return self.index.current_score(doc_id)

    def document_count(self) -> int:
        return self.index.document_count()

    def update_score(self, doc_id: int, new_score: float) -> None:
        self.index.update_score(doc_id, new_score)

    def apply_batch(self, updates: Iterable[tuple[int, float]]) -> int:
        return self.index.apply_batch(updates)

    def insert_document(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        self.index.insert_document(doc_id, terms, score)

    def delete_document(self, doc_id: int) -> None:
        self.index.delete_document(doc_id)

    def update_content(self, doc_id: int, new_terms: Iterable[str]) -> None:
        self.index.update_content(doc_id, new_terms)

    def query(self, keywords: Iterable[str], k: int,
              conjunctive: bool = True) -> QueryResponse:
        return self.index.query(keywords, k=k, conjunctive=conjunctive)

    def long_list_size_bytes(self) -> int:
        return self.index.long_list_size_bytes()

    def short_list_size_bytes(self) -> int:
        return self.index.short_list_size_bytes()

    def drop_long_list_cache(self) -> None:
        self.index.drop_long_list_cache()
