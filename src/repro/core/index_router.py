"""The unified front door over a (possibly term-partitioned) index.

:class:`IndexRouter` hides the sharding layer behind the exact
:class:`~repro.core.indexes.base.InvertedIndex` operational API: callers
insert/delete/update documents, apply batched score updates and run top-k
queries without knowing how many :class:`StorageEnvironment` instances back
the term space.  On top of the delegated API it exposes the shard-level
observability the experiments need — the term→shard resolver, per-shard I/O
snapshots/deltas, and the lifetime load/skew report.

With ``threads=1`` (the default) the router adds no storage behaviour of its
own: every keyed operation is routed inside the store facades
(:mod:`repro.storage.sharding`), so a router over a single-shard (or plain)
environment is fingerprint-identical to the classic engine.

With ``threads > 1`` the router becomes the concurrent execution subsystem's
coordinator (see :mod:`repro.exec` and ARCHITECTURE.md "Concurrent
execution"):

* **Parallel query fan-out** — a query takes a per-shard epoch snapshot,
  scatters its per-term top-k scans to the owning shard executors through
  block-prefetching stream pumps, and gathers the partial results through the
  k-way merge into the method's existing result heap.  Queries run
  concurrently with each other under a shared lock.
* **Single-writer updates with window combining** — anything that mutates
  index state runs under the writer lock; batched update windows that queue
  while a writer (or readers) hold the lock are drained *together* and
  applied as one combined batch, whose per-shard sub-batches execute
  concurrently across the shard executors.  Combining is semantically exact:
  ``apply_batch`` is defined to equal sequential application, so
  concatenating windows in ticket order preserves contents and top-k.
* **Deterministic accounting mode** — ``deterministic=True`` keeps the worker
  pool (bulk writes still fan out across shards, which is accounting-exact
  because every shard's operation sequence is unchanged and aggregate
  counters are per-category sums) but serializes whole operations and skips
  the query pumps, making every I/O fingerprint identical to the serial
  engine for *any* thread count.  ``REPRO_THREADS`` runs the tier-1 suite in
  this mode.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import nullcontext
from typing import Any, Iterable

from repro.core.indexes.base import InvertedIndex, QueryResponse, QueryStats, UpdateStats
from repro.core.indexes.registry import create_index
from repro.exec import ExecutorPool, ReadWriteLock, pump_plans
from repro.exec.fanout import DEFAULT_BLOCK_SIZE, INITIAL_BLOCK_SIZE
from repro.storage.environment import IOSnapshot, StorageEnvironment
from repro.storage.sharding import (
    ShardedEnvironment,
    ShardLoad,
    shard_load,
    shard_of_term,
)
from repro.text.documents import DocumentStore


def threads_from_environ() -> int:
    """Worker-thread default from ``REPRO_THREADS`` (1 when unset/invalid).

    The CI threaded leg sets ``REPRO_THREADS=4`` to rerun the tier-1 suite
    through the concurrent router; indexes built through that default run in
    deterministic-accounting mode so every fingerprint assertion still holds.
    """
    raw = os.environ.get("REPRO_THREADS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


class _UpdateTicket:
    """One caller's update window waiting in the write-combining queue."""

    __slots__ = ("updates", "applied", "error", "event")

    def __init__(self, updates: list) -> None:
        self.updates = updates
        self.applied = 0
        self.error: BaseException | None = None
        self.event = threading.Event()

    def resolve(self) -> int:
        if self.error is not None:
            raise self.error
        return self.applied


class IndexRouter:
    """Route the ``InvertedIndex`` API over N term-partitioned environments.

    Wraps an existing index (``IndexRouter(index)``); use :meth:`build` to
    construct the environment, document store and index method in one call.

    Parameters
    ----------
    index:
        The wrapped index method.
    threads:
        Worker-thread budget for the concurrent execution subsystem.  ``1``
        (the default) creates no threads and no locks — the serial engine.
    deterministic:
        Serialize operations and skip the query pumps so I/O accounting is
        fingerprint-identical to the serial engine at any thread count.
        Defaults to ``False``; forced ``True`` when the environment is not
        sharded (the parallel fan-out needs the facade layer's latches).
    block_size:
        Postings per stream-pump block in the parallel query fan-out.
    combine_window_s:
        Group-commit gather interval: how long the leading update window of
        a drain parks so concurrent clients can enqueue theirs (see
        :meth:`_apply_batch_combined`).  The pause is paid once per *drain*
        (a lone client pays it per window — the same latency-for-throughput
        trade as a fixed fsync group-commit interval); zero disables
        gathering entirely.
    """

    def __init__(self, index: InvertedIndex, threads: int = 1,
                 deterministic: bool = False,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_block: int = INITIAL_BLOCK_SIZE,
                 combine_window_s: float = 0.001) -> None:
        self.index = index
        self.env = index.env
        self.threads = max(1, int(threads))
        self.block_size = block_size
        self.initial_block = initial_block
        self.combine_window_s = max(0.0, combine_window_s)
        self._pool: ExecutorPool | None = None
        self._lock: ReadWriteLock | None = None
        self._pending: "deque[_UpdateTicket]" = deque()
        self._pending_lock = threading.Lock()
        self.combined_windows = 0
        if self.threads > 1 and not isinstance(self.env, ShardedEnvironment):
            # Without the facade layer there are no per-shard latches to
            # protect concurrent readers; run serialized instead of unsafely.
            deterministic = True
        self.deterministic = bool(deterministic)
        if self.threads > 1:
            self._pool = ExecutorPool(self.shard_count, threads=self.threads)
            self._lock = ReadWriteLock()
            if isinstance(self.env, ShardedEnvironment) and not self.deterministic:
                # Deterministic mode serializes whole operations, so the
                # facades need no latches — and must not get them, because
                # latched range scans trade laziness for isolation and an
                # eagerly drained prefix scan would charge I/O past the
                # serial engine's early-termination point.
                self.env.attach_execution(self._pool)

    @classmethod
    def build(cls, method: str, shard_count: int = 1,
              documents: DocumentStore | None = None, name: str = "svr",
              cache_pages: int = 4096, page_size: int = 4096,
              env: "StorageEnvironment | ShardedEnvironment | None" = None,
              threads: int = 1, deterministic: bool = False,
              **options: Any) -> "IndexRouter":
        """Create a sharded environment plus an index method routed over it."""
        if env is None:
            env = ShardedEnvironment(
                shard_count=shard_count, cache_pages=cache_pages, page_size=page_size
            )
        if documents is None:
            documents = DocumentStore()
        return cls(create_index(method, env, documents, name=name, **options),
                   threads=threads, deterministic=deterministic)

    # -- concurrency plumbing ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether queries fan out and update windows combine across threads."""
        return (self._pool is not None and self._pool.parallel
                and not self.deterministic)

    def _read_ctx(self):
        """Shared-mode context for queries and point reads."""
        if self._lock is None:
            return nullcontext()
        if self.deterministic:
            # Deterministic accounting: reads also change buffer-pool state
            # (LRU order, evictions), so even queries run one at a time.
            return self._lock.write_locked()
        return self._lock.read_locked()

    def _write_ctx(self):
        """Exclusive-mode context for anything that mutates index state."""
        if self._lock is None:
            return nullcontext()
        return self._lock.write_locked()

    def exclusive(self):
        """Writer-exclusive context for maintenance work (commit, checkpoint).

        The storage facades flush buffer pools during these operations, so
        they must not overlap queries or update windows.  A plain no-op
        context on the serial engine.
        """
        return self._write_ctx()

    def shutdown(self) -> None:
        """Stop the executor pool (idempotent; a no-op on the serial engine)."""
        if self._pool is not None:
            self._pool.close()

    # -- shard observability -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of term-space partitions (1 for a plain environment)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_count
        return 1

    def shard_of_term(self, term: str) -> int:
        """The shard owning a term's inverted lists."""
        return shard_of_term(term, self.shard_count)

    def shard_snapshots(self) -> list[IOSnapshot]:
        """Per-shard I/O snapshots (a single-element list for a plain env)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_snapshots()
        return [self.env.snapshot()]

    def shard_deltas(self, earlier: list[IOSnapshot]):
        """Per-shard deltas since :meth:`shard_snapshots`."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_deltas(earlier)
        if len(earlier) != 1:
            raise ValueError(f"expected 1 shard snapshot, got {len(earlier)}")
        return [self.env.delta_since(earlier[0])]

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard buffer-pool load and the max/mean skew."""
        return shard_load(self.env)

    # -- delegated InvertedIndex API ----------------------------------------------

    @property
    def method_name(self) -> str:
        return self.index.method_name

    @property
    def documents(self) -> DocumentStore:
        return self.index.documents

    @property
    def update_stats(self) -> UpdateStats:
        return self.index.update_stats

    @property
    def finalized(self) -> bool:
        return self.index.finalized

    def add_document(self, doc_id: int, score: float,
                     terms: Iterable[str] | None = None) -> None:
        with self._write_ctx():
            self.index.add_document(doc_id, score, terms=terms)

    def finalize(self) -> None:
        with self._write_ctx():
            self.index.finalize()

    def current_score(self, doc_id: int) -> float | None:
        with self._read_ctx():
            return self.index.current_score(doc_id)

    def current_scores(self, doc_ids: Iterable[int]) -> dict[int, float]:
        """Latest scores of several documents under one lock acquisition.

        The service drivers resolve every update window against current
        scores; doing it per document would pay one reader-lock round trip
        per lookup under the concurrent engine, so the bulk form exists for
        them.  Unknown or deleted documents are absent from the result.
        """
        with self._read_ctx():
            scores: dict[int, float] = {}
            for doc_id in doc_ids:
                score = self.index.current_score(doc_id)
                if score is not None:
                    scores[doc_id] = score
            return scores

    def document_count(self) -> int:
        with self._read_ctx():
            return self.index.document_count()

    def update_score(self, doc_id: int, new_score: float) -> None:
        with self._write_ctx():
            self.index.update_score(doc_id, new_score)

    def apply_batch(self, updates: Iterable[tuple[int, float]]) -> int:
        if not self.parallel:
            with self._write_ctx():
                return self.index.apply_batch(updates)
        return self._apply_batch_combined(list(updates))

    def insert_document(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        with self._write_ctx():
            self.index.insert_document(doc_id, terms, score)

    def delete_document(self, doc_id: int) -> None:
        with self._write_ctx():
            self.index.delete_document(doc_id)

    def update_content(self, doc_id: int, new_terms: Iterable[str]) -> None:
        with self._write_ctx():
            self.index.update_content(doc_id, new_terms)

    def query(self, keywords: Iterable[str], k: int,
              conjunctive: bool = True) -> QueryResponse:
        if not self.parallel:
            with self._read_ctx():
                return self.index.query(keywords, k=k, conjunctive=conjunctive)
        return self._query_fanout(keywords, k, conjunctive)

    def long_list_size_bytes(self) -> int:
        with self._read_ctx():
            return self.index.long_list_size_bytes()

    def short_list_size_bytes(self) -> int:
        with self._read_ctx():
            return self.index.short_list_size_bytes()

    def drop_long_list_cache(self) -> None:
        # Evicting mutates every shard's pool; treat it as a write.
        with self._write_ctx():
            self.index.drop_long_list_cache()

    # -- parallel query fan-out ----------------------------------------------------

    def _query_fanout(self, keywords: Iterable[str], k: int,
                      conjunctive: bool) -> QueryResponse:
        """Scatter per-term scans to the shard executors, gather into the heap.

        The per-shard epoch snapshot taken at admission attributes the I/O the
        query's scans perform on each shard; under concurrent traffic the
        attribution is approximate (another query's blocks may land inside the
        window), which is the documented accounting contract of the parallel
        mode — contents and top-k results remain exact.
        """
        assert self._lock is not None and self._pool is not None
        with self._lock.read_locked():
            terms = self.index.prepare_query(keywords, k)
            stats = QueryStats()
            per_term = [QueryStats() for _ in terms]
            epoch = self.shard_snapshots()
            plans = self.index._term_scan_plans(terms, lambda index: per_term[index])
            latches = getattr(self.env, "shard_latches", None)
            pumps = pump_plans(
                self._pool,
                [(self.shard_of_term(routing_term), plan)
                 for routing_term, plan in plans],
                latches=latches,
                block_size=self.block_size,
                initial_block=self.initial_block,
            )
            try:
                results = self.index._merge_term_streams(
                    [pump.stream() for pump in pumps], terms, k, conjunctive, stats
                )
            finally:
                for pump in pumps:
                    pump.close()
            for scan_stats in per_term:
                stats.postings_scanned += scan_stats.postings_scanned
                stats.chunks_scanned += scan_stats.chunks_scanned
            deltas = self.shard_deltas(epoch)
            stats.pages_read = sum(delta.page_reads for delta in deltas)
            stats.page_writes = sum(delta.page_writes for delta in deltas)
            stats.pool_hits = sum(delta.pool_hits for delta in deltas)
            stats.estimated_io_ms = sum(delta.cost_ms() for delta in deltas)
            return QueryResponse(results=tuple(results), stats=stats)

    # -- combined update windows -----------------------------------------------------

    def _apply_batch_combined(self, updates: list) -> int:
        """Queue the window, let whoever holds the writer lock drain the queue.

        Windows that pile up while queries (or an earlier window) hold the
        lock are concatenated *in queue order* and applied as one batch —
        cross-client group application, the single-writer mailbox's analogue
        of group commit.  Each per-shard sub-batch of the combined window then
        executes concurrently on its shard executor via the store facades.

        Group-commit pacing, leader elected by queue position: the client
        whose window starts an empty queue becomes the *leader* and parks for
        the gather interval — its core time goes to whoever has work, and
        queries keep answering the whole time.  Clients whose windows arrive
        during that interval are *followers*: they park on their ticket
        without any deadline of their own (plus a generous safety timeout)
        because the leader is guaranteed to scoop their windows up.  One
        drain then applies everything queued as a single batch whose sorted
        per-shard sub-batches descend the trees once per leaf run instead of
        once per window — the same trade fsync group commit makes, paying at
        most one gather interval of latency per *drain* rather than per
        window.  ``combine_window_s=0`` disables the pause (every window
        drains immediately, still scooping whatever queued meanwhile).
        """
        assert self._lock is not None
        ticket = _UpdateTicket(updates)
        with self._pending_lock:
            self._pending.append(ticket)
            leader = len(self._pending) == 1
        if leader:
            if self.combine_window_s > 0.0 and ticket.event.wait(self.combine_window_s):
                return ticket.resolve()
        elif ticket.event.wait(max(1.0, 100.0 * self.combine_window_s)):
            return ticket.resolve()
        self._lock.acquire_write()
        try:
            if ticket.event.is_set():
                return ticket.resolve()
            with self._pending_lock:
                drained = []
                while self._pending:
                    drained.append(self._pending.popleft())
            self._drain_windows(drained)
        finally:
            self._lock.release_write()
        return ticket.resolve()

    def _drain_windows(self, drained: "list[_UpdateTicket]") -> None:
        combined: list = []
        for waiting in drained:
            combined.extend(waiting.updates)
        try:
            applied = self.index.apply_batch(combined)
        except BaseException:
            # A bad update in one window must not fail its neighbours:
            # fall back to per-window application so each ticket gets its
            # own outcome, exactly as uncombined execution would.
            for waiting in drained:
                try:
                    waiting.applied = self.index.apply_batch(waiting.updates)
                except BaseException as exc:
                    waiting.error = exc
                waiting.event.set()
            return
        del applied  # == len(combined); per-ticket counts are the windows' own
        if len(drained) > 1:
            self.combined_windows += len(drained) - 1
        for waiting in drained:
            waiting.applied = len(waiting.updates)
            waiting.event.set()
