"""The unified front door over a (possibly term-partitioned) index.

:class:`IndexRouter` hides the sharding layer behind the exact
:class:`~repro.core.indexes.base.InvertedIndex` operational API: callers
insert/delete/update documents, apply batched score updates and run top-k
queries without knowing how many :class:`StorageEnvironment` instances back
the term space.  On top of the delegated API it exposes the shard-level
observability the experiments need — the term→shard resolver, per-shard I/O
snapshots/deltas, and the lifetime load/skew report.

With ``threads=1`` (the default) the router adds no storage behaviour of its
own: every keyed operation is routed inside the store facades
(:mod:`repro.storage.sharding`), so a router over a single-shard (or plain)
environment is fingerprint-identical to the classic engine.

With ``threads > 1`` the router becomes the concurrent execution subsystem's
coordinator (see :mod:`repro.exec` and ARCHITECTURE.md "Concurrent
execution"):

* **Parallel query fan-out** — a query takes a per-shard epoch snapshot,
  scatters its per-term top-k scans to the owning shard executors through
  block-prefetching stream pumps, and gathers the partial results through the
  k-way merge into the method's existing result heap.  Queries run
  concurrently with each other under a shared lock.
* **Single-writer updates with window combining** — anything that mutates
  index state runs under the writer lock; batched update windows that queue
  while a writer (or readers) hold the lock are drained *together* and
  applied as one combined batch, whose per-shard sub-batches execute
  concurrently across the shard executors.  Combining is semantically exact:
  ``apply_batch`` is defined to equal sequential application, so
  concatenating windows in ticket order preserves contents and top-k.
* **Deterministic accounting mode** — ``deterministic=True`` keeps the worker
  pool (bulk writes still fan out across shards, which is accounting-exact
  because every shard's operation sequence is unchanged and aggregate
  counters are per-category sums) but serializes whole operations and skips
  the query pumps, making every I/O fingerprint identical to the serial
  engine for *any* thread count.  ``REPRO_THREADS`` runs the tier-1 suite in
  this mode.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.indexes.base import (
    InvertedIndex,
    QueryResponse,
    QueryStats,
    UpdateStats,
    query_analysis_armed,
)
from repro.core.indexes.registry import create_index
from repro.core.list_cache import list_cache_pages_from_environ
from repro.errors import (
    HARD_FAULT_ERRORS,
    ExecutorError,
    ReproError,
    ShardQuarantinedError,
    StorageError,
    shard_of_error,
)
from repro.exec import ExecutorPool, ReadWriteLock, pump_plans
from repro.exec.fanout import DEFAULT_BLOCK_SIZE, INITIAL_BLOCK_SIZE
from repro.obs.events import EventLog, event_log_capacity_from_environ
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOTracker
from repro.obs.timeseries import (
    MetricsSampler,
    SamplerDaemon,
    sample_interval_from_environ,
)
from repro.obs.trace import SLOW_QUERIES, current_span, span, tracing_enabled
from repro.storage.environment import IOSnapshot, StorageEnvironment
from repro.storage.sharding import (
    ShardedEnvironment,
    ShardLoad,
    shard_load,
    shard_of_doc,
    shard_of_term,
)
from repro.text.documents import DocumentStore


def threads_from_environ() -> int:
    """Worker-thread default from ``REPRO_THREADS`` (1 when unset/invalid).

    The CI threaded leg sets ``REPRO_THREADS=4`` to rerun the tier-1 suite
    through the concurrent router; indexes built through that default run in
    deterministic-accounting mode so every fingerprint assertion still holds.
    """
    raw = os.environ.get("REPRO_THREADS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class ShardHealth:
    """One shard's failure-domain status as the router sees it."""

    shard: int
    quarantined: bool
    reason: "str | None" = None
    failures: int = 0


class _UpdateTicket:
    """One caller's update window waiting in the write-combining queue."""

    __slots__ = ("updates", "applied", "error", "event")

    def __init__(self, updates: list) -> None:
        self.updates = updates
        self.applied = 0
        self.error: BaseException | None = None
        self.event = threading.Event()

    def resolve(self) -> int:
        if self.error is not None:
            raise self.error
        return self.applied


class IndexRouter:
    """Route the ``InvertedIndex`` API over N term-partitioned environments.

    Wraps an existing index (``IndexRouter(index)``); use :meth:`build` to
    construct the environment, document store and index method in one call.

    Parameters
    ----------
    index:
        The wrapped index method.
    threads:
        Worker-thread budget for the concurrent execution subsystem.  ``1``
        (the default) creates no threads and no locks — the serial engine.
    deterministic:
        Serialize operations and skip the query pumps so I/O accounting is
        fingerprint-identical to the serial engine at any thread count.
        Defaults to ``False``; forced ``True`` when the environment is not
        sharded (the parallel fan-out needs the facade layer's latches).
    block_size:
        Postings per stream-pump block in the parallel query fan-out.
    combine_window_s:
        Group-commit gather interval: how long the leading update window of
        a drain parks so concurrent clients can enqueue theirs (see
        :meth:`_apply_batch_combined`).  The pause is paid once per *drain*
        (a lone client pays it per window — the same latency-for-throughput
        trade as a fixed fsync group-commit interval); zero disables
        gathering entirely.
    """

    def __init__(self, index: InvertedIndex, threads: int = 1,
                 deterministic: bool = False,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_block: int = INITIAL_BLOCK_SIZE,
                 combine_window_s: float = 0.001) -> None:
        self.index = index
        self.env = index.env
        self.threads = max(1, int(threads))
        self.block_size = block_size
        self.initial_block = initial_block
        self.combine_window_s = max(0.0, combine_window_s)
        self._pool: ExecutorPool | None = None
        self._lock: ReadWriteLock | None = None
        self._pending: "deque[_UpdateTicket]" = deque()
        self._pending_lock = threading.Lock()
        self.combined_windows = 0
        #: Quarantined failure domains: shard index -> reason.  Guarded by
        #: ``_health_lock`` (quarantine decisions can race on the concurrent
        #: engine); reads of the bare dict are snapshot-consistent enough for
        #: the fast-path emptiness checks.
        self._quarantined: dict[int, str] = {}
        self._shard_failures: dict[int, int] = {}
        self._health_lock = threading.Lock()
        #: Engine-wide metrics registry: the router, the executor pool and
        #: the hot-term list cache all feed it (see :mod:`repro.obs`).
        self.metrics = MetricsRegistry()
        if index.list_cache is not None:
            index.list_cache.metrics = self.metrics
        #: Router-owned event log: shard lifecycle, checkpoint and SLO burn
        #: events for *this* engine (capacity from ``REPRO_EVENT_LOG_CAP``).
        #: The module-level ``repro.obs.events.EVENTS`` log remains the
        #: fallback for emitters that run before any router exists
        #: (standalone recovery, the fault injector's escalation notes).
        self.events = EventLog(capacity=event_log_capacity_from_environ())
        self._attach_event_sinks()
        #: Rolling time-series windows plus SLO burn-rate tracking, advanced
        #: from the query/update paths (:meth:`_obs_tick`); setting
        #: ``REPRO_OBS_SAMPLE_MS`` adds a fixed-cadence daemon so windows
        #: keep rolling on an idle engine.
        self.sampler = MetricsSampler(self.metrics)
        self.slo = SLOTracker(self.sampler, metrics=self.metrics,
                              events=self.events)
        self._sampler_daemon: "SamplerDaemon | None" = None
        interval_s = sample_interval_from_environ()
        if interval_s is not None:
            self._sampler_daemon = SamplerDaemon(interval_s, self._obs_roll)
            self._sampler_daemon.start()
        if self.threads > 1 and not isinstance(self.env, ShardedEnvironment):
            # Without the facade layer there are no per-shard latches to
            # protect concurrent readers; run serialized instead of unsafely.
            deterministic = True
        self.deterministic = bool(deterministic)
        if self.threads > 1:
            self._pool = ExecutorPool(self.shard_count, threads=self.threads)
            self._pool.metrics = self.metrics
            self._lock = ReadWriteLock()
            if isinstance(self.env, ShardedEnvironment) and not self.deterministic:
                # Deterministic mode serializes whole operations, so the
                # facades need no latches — and must not get them, because
                # latched range scans trade laziness for isolation and an
                # eagerly drained prefix scan would charge I/O past the
                # serial engine's early-termination point.
                self.env.attach_execution(self._pool)

    @classmethod
    def build(cls, method: str, shard_count: int = 1,
              documents: DocumentStore | None = None, name: str = "svr",
              cache_pages: int = 4096, page_size: int = 4096,
              env: "StorageEnvironment | ShardedEnvironment | None" = None,
              threads: int = 1, deterministic: bool = False,
              **options: Any) -> "IndexRouter":
        """Create a sharded environment plus an index method routed over it.

        When the hot-term list cache is enabled (``list_cache_pages`` option
        or ``REPRO_LIST_CACHE_PAGES``), its budget is carved *out of*
        ``cache_pages`` before the environment is sized, so a cache-on
        configuration holds the same total memory as cache-off — the cache
        competes with the buffer pool rather than adding on top of it.
        """
        list_cache_pages = options.get("list_cache_pages")
        if list_cache_pages is None:
            list_cache_pages = list_cache_pages_from_environ()
            options["list_cache_pages"] = list_cache_pages
        if env is None:
            pool_pages = cache_pages
            if list_cache_pages:
                if list_cache_pages >= cache_pages:
                    raise StorageError(
                        f"list_cache_pages ({list_cache_pages}) must be smaller "
                        f"than cache_pages ({cache_pages}) — the hot-term cache "
                        "budget is split from the buffer pool, not added to it"
                    )
                pool_pages = cache_pages - list_cache_pages
            env = ShardedEnvironment(
                shard_count=shard_count, cache_pages=pool_pages, page_size=page_size
            )
        if documents is None:
            documents = DocumentStore()
        return cls(create_index(method, env, documents, name=name, **options),
                   threads=threads, deterministic=deterministic)

    # -- concurrency plumbing ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether queries fan out and update windows combine across threads."""
        return (self._pool is not None and self._pool.parallel
                and not self.deterministic)

    def _read_ctx(self):
        """Shared-mode context for queries and point reads."""
        if self._lock is None:
            return nullcontext()
        if self.deterministic:
            # Deterministic accounting: reads also change buffer-pool state
            # (LRU order, evictions), so even queries run one at a time.
            return self._lock.write_locked()
        return self._lock.read_locked()

    def _write_ctx(self):
        """Exclusive-mode context for anything that mutates index state."""
        if self._lock is None:
            return nullcontext()
        return self._lock.write_locked()

    def exclusive(self):
        """Writer-exclusive context for maintenance work (commit, checkpoint).

        The storage facades flush buffer pools during these operations, so
        they must not overlap queries or update windows.  A plain no-op
        context on the serial engine.
        """
        return self._write_ctx()

    def shutdown(self) -> None:
        """Stop the executor pool (idempotent; a no-op on the serial engine)."""
        if self._sampler_daemon is not None:
            self._sampler_daemon.stop()
            self._sampler_daemon = None
        if self._pool is not None:
            self._pool.close()

    # -- observability plumbing ----------------------------------------------------

    def _attach_event_sinks(self) -> None:
        """Route shard-environment events (checkpoints) into this router's log.

        Must be re-run whenever a shard's environment object is replaced
        (:meth:`reopen_shard` swaps in a recovered one).
        """
        if isinstance(self.env, ShardedEnvironment):
            for shard_env in self.env.shards:
                shard_env.event_sink = self.events
        else:
            self.env.event_sink = self.events

    def publish_gauges(self) -> None:
        """Refresh the gauges derived from storage-layer state.

        These are the numbers that only exist as live state (not as events
        the hot paths could increment): buffer-pool hit rates, WAL buffered
        bytes, and the lifetime shard-load skew.  Reading them is pure
        counter arithmetic — no accounted storage access — so exporters call
        this freely before every render.
        """
        self.metrics.set_gauge("shard.load_skew", self.shard_load().skew)
        if isinstance(self.env, ShardedEnvironment):
            shard_envs = self.env.shards
        else:
            shard_envs = [self.env]
        for shard_env in shard_envs:
            labels = ({} if shard_env.obs_shard is None
                      else {"shard": shard_env.obs_shard})
            self.metrics.set_gauge(
                "pool.hit_rate", shard_env.pool.hit_rate(), **labels
            )
            # Only the file-backed disk buffers WAL bytes; the simulated
            # disk reports a constant 0.
            self.metrics.set_gauge(
                "wal.buffered_bytes",
                float(getattr(shard_env.disk, "_buffered_bytes", 0)),
                **labels,
            )

    def _obs_tick(self) -> None:
        """Hot-path sampler advance: one clock read until a window is due."""
        if self.sampler.tick() is not None:
            self.publish_gauges()
            self.slo.evaluate()

    def _obs_roll(self) -> None:
        """Forced window roll + SLO evaluation (daemon cadence, tests)."""
        self.publish_gauges()
        if self.sampler.roll() is not None:
            self.slo.evaluate()

    # -- shard observability -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of term-space partitions (1 for a plain environment)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_count
        return 1

    def shard_of_term(self, term: str) -> int:
        """The shard owning a term's inverted lists."""
        return shard_of_term(term, self.shard_count)

    def shard_snapshots(self) -> list[IOSnapshot]:
        """Per-shard I/O snapshots (a single-element list for a plain env)."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_snapshots()
        return [self.env.snapshot()]

    def shard_deltas(self, earlier: list[IOSnapshot]):
        """Per-shard deltas since :meth:`shard_snapshots`."""
        if isinstance(self.env, ShardedEnvironment):
            return self.env.shard_deltas(earlier)
        if len(earlier) != 1:
            raise ValueError(f"expected 1 shard snapshot, got {len(earlier)}")
        return [self.env.delta_since(earlier[0])]

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard buffer-pool load and the max/mean skew."""
        return shard_load(self.env)

    # -- failure domains / quarantine ----------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether at least one shard is quarantined (answers are partial)."""
        return bool(self._quarantined)

    def quarantined_shards(self) -> tuple[int, ...]:
        """Quarantined shard indices, ascending."""
        return tuple(sorted(self._quarantined))

    def shard_health(self) -> list[ShardHealth]:
        """Per-shard health, in shard order."""
        with self._health_lock:
            return [
                ShardHealth(
                    shard=shard,
                    quarantined=shard in self._quarantined,
                    reason=self._quarantined.get(shard),
                    failures=self._shard_failures.get(shard, 0),
                )
                for shard in range(self.shard_count)
            ]

    def quarantine_shard(self, shard: int, reason: str) -> None:
        """Mark one failure domain untrustworthy; reads skip it, writes that
        touch it fail fast.  Idempotent (the first reason wins)."""
        if not 0 <= shard < self.shard_count:
            raise StorageError(
                f"shard index {shard} out of range for {self.shard_count} shards"
            )
        with self._health_lock:
            self._shard_failures[shard] = self._shard_failures.get(shard, 0) + 1
            newly = shard not in self._quarantined
            self._quarantined.setdefault(shard, reason)
        # Decoded postings filled from a now-untrustworthy shard must not
        # outlive the quarantine decision.
        self.index.invalidate_list_cache_shard(shard)
        if newly:
            self.metrics.inc("shard.quarantined", shard=shard)
            self.events.emit("quarantine", shard=shard, reason=reason)

    def _quarantine_from_error(self, error: BaseException) -> bool:
        """Quarantine the failure domain a hard error is tagged with.

        Only errors that mark a shard's storage (or executor) untrustworthy
        count: escalated retry exhaustion, ENOSPC, checksum failures, failed
        commits and executor death.  Returns whether a shard was quarantined.
        """
        if not isinstance(error, HARD_FAULT_ERRORS + (ExecutorError,)):
            return False
        shard = shard_of_error(error)
        if shard is None or not 0 <= shard < self.shard_count:
            return False
        self.quarantine_shard(shard, f"{type(error).__name__}: {error}")
        return True

    def _check_writable(self, doc_id: "int | None" = None,
                        terms: "Iterable[str] | None" = None) -> "list | None":
        """Fail fast when a write would touch a quarantined shard.

        Raises :class:`~repro.errors.ShardQuarantinedError` *before* any state
        is mutated, so the refusal is atomic.  When ``terms`` is ``None`` and
        the document is known, its terms come from the forward index (score
        updates touch the short lists of every term the document contains).
        Returns the materialized ``terms`` list when one was passed, so
        callers can forward the consumed iterable.
        """
        materialized = list(terms) if terms is not None else None
        if not self._quarantined:
            return materialized
        touched: set[int] = set()
        if doc_id is not None:
            touched.add(shard_of_doc(doc_id, self.shard_count))
            if materialized is None and self.index.documents.contains(doc_id):
                materialized_terms = self.index.documents.get(doc_id).distinct_terms
                touched.update(self.shard_of_term(t) for t in materialized_terms)
        if materialized is not None:
            touched.update(self.shard_of_term(t) for t in materialized)
        hit = sorted(touched & set(self._quarantined))
        if hit:
            reasons = "; ".join(
                f"shard {shard}: {self._quarantined[shard]}" for shard in hit
            )
            error = ShardQuarantinedError(
                f"write touches quarantined shard(s) {hit} — {reasons}"
            )
            error.shard = hit[0]
            raise error
        return materialized

    def _guard_write(self, fn):
        """Run a mutating operation, quarantining tagged hard failures."""
        try:
            return fn()
        except ReproError as exc:
            self._quarantine_from_error(exc)
            raise

    def reopen_shard(self, shard: int) -> None:
        """Re-admit a quarantined shard from its checkpoint + WAL.

        Recovers the shard's environment to its last committed batch (see
        :meth:`ShardedEnvironment.reopen_shard`), revives its executor when
        one died, and lifts the quarantine.  Runs writer-exclusive, so no
        query or update window observes the swap mid-flight.
        """
        with self._write_ctx():
            if isinstance(self.env, ShardedEnvironment):
                self.env.reopen_shard(shard)
            else:
                raise StorageError(
                    "reopen_shard needs a sharded environment; recover the "
                    "whole environment instead"
                )
            if self._pool is not None:
                self._pool.revive(shard)
            # The recovered shard is a fresh environment object; re-route its
            # events into this router's log.
            self._attach_event_sinks()
            with self._health_lock:
                was_quarantined = self._quarantined.pop(shard, None) is not None
            # The recovered shard may have rolled back past the postings any
            # cached entry was decoded from.
            self.index.invalidate_list_cache_shard(shard)
            self.metrics.inc("shard.reopened", shard=shard)
            self.events.emit("reopen", shard=shard,
                             lifted_quarantine=was_quarantined)

    # -- delegated InvertedIndex API ----------------------------------------------

    @property
    def method_name(self) -> str:
        return self.index.method_name

    @property
    def documents(self) -> DocumentStore:
        return self.index.documents

    @property
    def update_stats(self) -> UpdateStats:
        return self.index.update_stats

    @property
    def finalized(self) -> bool:
        return self.index.finalized

    def add_document(self, doc_id: int, score: float,
                     terms: Iterable[str] | None = None) -> None:
        terms = self._check_writable(doc_id=doc_id, terms=terms)
        with self._write_ctx():
            self._guard_write(
                lambda: self.index.add_document(doc_id, score, terms=terms)
            )
        self.metrics.inc("write.ops", op="add_document")

    def finalize(self) -> None:
        with self._write_ctx():
            self._guard_write(self.index.finalize)

    def current_score(self, doc_id: int) -> float | None:
        with self._read_ctx():
            return self.index.current_score(doc_id)

    def current_scores(self, doc_ids: Iterable[int]) -> dict[int, float]:
        """Latest scores of several documents under one lock acquisition.

        The service drivers resolve every update window against current
        scores; doing it per document would pay one reader-lock round trip
        per lookup under the concurrent engine, so the bulk form exists for
        them.  Unknown or deleted documents are absent from the result.
        """
        with self._read_ctx():
            scores: dict[int, float] = {}
            for doc_id in doc_ids:
                score = self.index.current_score(doc_id)
                if score is not None:
                    scores[doc_id] = score
            return scores

    def document_count(self) -> int:
        with self._read_ctx():
            return self.index.document_count()

    def update_score(self, doc_id: int, new_score: float) -> None:
        self._check_writable(doc_id=doc_id)
        with self._write_ctx():
            self._guard_write(lambda: self.index.update_score(doc_id, new_score))
        self.metrics.inc("write.ops", op="update_score")

    def apply_batch(self, updates: Iterable[tuple[int, float]]) -> int:
        updates = list(updates)
        if self._quarantined:
            for doc_id, _score in updates:
                self._check_writable(doc_id=doc_id)
        started = time.perf_counter()
        with span("write.window", updates=len(updates)):
            if not self.parallel:
                with self._write_ctx():
                    applied = self._guard_write(
                        lambda: self.index.apply_batch(updates)
                    )
            else:
                applied = self._guard_write(
                    lambda: self._apply_batch_combined(updates)
                )
        self.metrics.observe(
            "update.window_ms", (time.perf_counter() - started) * 1000.0
        )
        self.metrics.add_many({
            "update.windows": 1.0,
            "update.count": float(applied),
        })
        self._obs_tick()
        return applied

    def insert_document(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        terms = self._check_writable(doc_id=doc_id, terms=terms)
        with self._write_ctx():
            self._guard_write(
                lambda: self.index.insert_document(doc_id, terms, score)
            )
        self.metrics.inc("write.ops", op="insert_document")

    def delete_document(self, doc_id: int) -> None:
        self._check_writable(doc_id=doc_id)
        with self._write_ctx():
            self._guard_write(lambda: self.index.delete_document(doc_id))
        self.metrics.inc("write.ops", op="delete_document")

    def update_content(self, doc_id: int, new_terms: Iterable[str]) -> None:
        # A content update touches the document's *old* terms (looked up via
        # the forward index by the doc_id check) and its new ones.
        new_terms = self._check_writable(doc_id=doc_id, terms=new_terms)
        self._check_writable(doc_id=doc_id)
        with self._write_ctx():
            self._guard_write(lambda: self.index.update_content(doc_id, new_terms))
        self.metrics.inc("write.ops", op="update_content")

    def query(self, keywords: Iterable[str], k: int,
              conjunctive: bool = True) -> QueryResponse:
        """Top-k evaluation with graceful degradation under quarantine.

        Terms owned by quarantined shards are dropped before evaluation and
        reported via ``stats.degraded`` / ``stats.terms_skipped``; a hard
        shard-tagged fault *during* evaluation quarantines the shard and the
        query retries without it (reads never mutate index state, so the
        retry is safe).  A healthy router runs the exact pre-existing path.

        The wrapper here is pure observability: it times the evaluation into
        the ``query.*`` metrics and, when tracing is on, roots the query's
        span tree and offers it to the slow-query log.  The engine work all
        lives in :meth:`_query_impl`.
        """
        keywords = list(keywords)
        if not tracing_enabled():
            started = time.perf_counter()
            response = self._query_impl(keywords, k, conjunctive)
            self._record_query(response.stats,
                               (time.perf_counter() - started) * 1000.0)
            return response
        with span("query", keywords=tuple(keywords), k=k,
                  conjunctive=conjunctive) as root:
            started = time.perf_counter()
            response = self._query_impl(keywords, k, conjunctive)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._record_query(response.stats, elapsed_ms)
        if root is not None:
            SLOW_QUERIES.maybe_record(
                root, keywords, self._term_attribution(root, response.stats)
            )
        return response

    def _record_query(self, stats: QueryStats, elapsed_ms: float) -> None:
        """Fold one finished query into the registry (one lock trip each way)."""
        self.metrics.observe("query.latency_ms", elapsed_ms)
        values = {
            "query.count": 1.0,
            "query.pages_read": float(stats.pages_read),
            "query.pool_hits": float(stats.pool_hits),
            "query.postings_scanned": float(stats.postings_scanned),
            "query.blocks_skipped": float(stats.blocks_skipped),
        }
        if stats.degraded:
            values["query.degraded"] = 1.0
        self.metrics.add_many(values)
        self._obs_tick()

    @staticmethod
    def _term_attribution(root, stats: QueryStats) -> dict:
        """Per-term page/block attribution for the slow-query log.

        The fan-out path tags its span with exact per-term scan stats; the
        serial path has only the aggregate, reported under ``"*"``.
        """
        nodes = [root]
        while nodes:
            node = nodes.pop()
            term_stats = node.tags.get("term_stats")
            if term_stats is not None:
                return term_stats
            nodes.extend(node.children)
        return {"*": {
            "pages_read": stats.pages_read,
            "postings_scanned": stats.postings_scanned,
            "blocks_skipped": stats.blocks_skipped,
        }}

    def _query_impl(self, keywords: list, k: int,
                    conjunctive: bool) -> QueryResponse:
        if self._lock is None and not self._quarantined:
            # Single-route fast lane (threads=1, healthy): no latch context to
            # enter, no degradation filtering, no retry-loop bookkeeping —
            # straight into the method's query path.  A hard shard-tagged
            # fault still quarantines on the way out, and the retry re-enters
            # through the full path (``_quarantined`` is now non-empty).
            try:
                return self.index.query(keywords, k=k, conjunctive=conjunctive)
            except ReproError as exc:
                if not self._quarantine_from_error(exc):
                    raise
                return self._query_impl(keywords, k, conjunctive)
        attempts = self.shard_count + 1
        while True:
            if self._quarantined:
                kept = [kw for kw in keywords
                        if self.shard_of_term(kw) not in self._quarantined]
            else:
                kept = keywords
            skipped = len(keywords) - len(kept)
            try:
                if not kept and skipped:
                    # Every queried term lives on a quarantined shard; an
                    # empty-but-flagged answer (the empty query still raises
                    # its usual QueryError below).
                    response = QueryResponse(results=(), stats=QueryStats())
                elif not self.parallel:
                    with self._read_ctx():
                        response = self.index.query(kept, k=k,
                                                    conjunctive=conjunctive)
                else:
                    response = self._query_fanout(kept, k, conjunctive)
            except ReproError as exc:
                attempts -= 1
                if attempts > 0 and self._quarantine_from_error(exc):
                    continue
                raise
            if skipped:
                response.stats.degraded = True
                response.stats.terms_skipped = skipped
            return response

    def long_list_size_bytes(self) -> int:
        with self._read_ctx():
            return self.index.long_list_size_bytes()

    def short_list_size_bytes(self) -> int:
        with self._read_ctx():
            return self.index.short_list_size_bytes()

    def drop_long_list_cache(self) -> None:
        # Evicting mutates every shard's pool; treat it as a write.
        with self._write_ctx():
            self.index.drop_long_list_cache()

    # -- parallel query fan-out ----------------------------------------------------

    def _query_fanout(self, keywords: Iterable[str], k: int,
                      conjunctive: bool) -> QueryResponse:
        """Scatter per-term scans to the shard executors, gather into the heap.

        The per-shard epoch snapshot taken at admission attributes the I/O the
        query's scans perform on each shard; under concurrent traffic the
        attribution is approximate (another query's blocks may land inside the
        window), which is the documented accounting contract of the parallel
        mode — contents and top-k results remain exact.
        """
        assert self._lock is not None and self._pool is not None
        with self._lock.read_locked():
            with span("query.plan"):
                terms = self.index.prepare_query(keywords, k)
                stats = QueryStats()
                per_term = [QueryStats() for _ in terms]
                if query_analysis_armed():
                    # EXPLAIN ANALYZE journals skip decisions; the per-term
                    # stats live on executor threads, so each gets its own
                    # list and the coordinator folds them below.
                    stats.skip_events = []
                    for scan_stats in per_term:
                        scan_stats.skip_events = []
                epoch = self.shard_snapshots()
                # The threshold is shared by every per-term plan: the merge
                # thread publishes a monotone heap floor, shard executors
                # consult it while prefetching.  Stale reads only
                # under-prune, so no lock is needed.
                threshold = self.index._make_query_threshold()
                plans = self.index._term_scan_plans(
                    terms, lambda index: per_term[index], threshold
                )
                latches = getattr(self.env, "shard_latches", None)
                pumps = pump_plans(
                    self._pool,
                    [(self.shard_of_term(routing_term), plan, routing_term)
                     for routing_term, plan in plans],
                    latches=latches,
                    block_size=self.block_size,
                    initial_block=self.initial_block,
                )
            try:
                with span("query.merge"):
                    results = self.index._merge_term_streams(
                        [pump.stream() for pump in pumps], terms, k,
                        conjunctive, stats, threshold
                    )
            finally:
                for pump in pumps:
                    pump.close()
            for scan_stats in per_term:
                stats.postings_scanned += scan_stats.postings_scanned
                stats.chunks_scanned += scan_stats.chunks_scanned
                stats.blocks_skipped += scan_stats.blocks_skipped
                if stats.skip_events is not None and scan_stats.skip_events:
                    stats.skip_events.extend(scan_stats.skip_events)
            deltas = self.shard_deltas(epoch)
            stats.pages_read = sum(delta.page_reads for delta in deltas)
            stats.page_writes = sum(delta.page_writes for delta in deltas)
            stats.pool_hits = sum(delta.pool_hits for delta in deltas)
            stats.estimated_io_ms = sum(delta.cost_ms() for delta in deltas)
            self._record_fanout_shards(terms, per_term, deltas)
            return QueryResponse(results=tuple(results), stats=stats)

    def _record_fanout_shards(self, terms: list, per_term: "list[QueryStats]",
                              deltas: list) -> None:
        """Per-shard ``shard.*`` attribution for one fanned-out query.

        Only the fan-out path records per-shard metrics: it already paid for
        the epoch snapshot the page/pool attribution is derived from, whereas
        the serial fast lane would have to add shard snapshots to its hot
        path just to feed them.  Serial deployments still get per-shard
        list-cache and lifetime-I/O series.
        """
        per_shard: "dict[int, dict[str, float]]" = {}
        for term, scan_stats in zip(terms, per_term):
            bucket = per_shard.setdefault(self.shard_of_term(term), {
                "shard.postings_scanned": 0.0,
                "shard.blocks_skipped": 0.0,
            })
            bucket["shard.postings_scanned"] += float(scan_stats.postings_scanned)
            bucket["shard.blocks_skipped"] += float(scan_stats.blocks_skipped)
        for shard, delta in enumerate(deltas):
            if delta.page_reads or delta.pool_hits:
                bucket = per_shard.setdefault(shard, {})
                bucket["shard.pages_read"] = float(delta.page_reads)
                bucket["shard.pool_hits"] = float(delta.pool_hits)
        for shard, values in per_shard.items():
            self.metrics.add_many(values, shard=shard)
        if tracing_enabled():
            node = current_span()
            if node is not None:
                node.tags["term_stats"] = {
                    term: {
                        "shard": self.shard_of_term(term),
                        "postings_scanned": scan_stats.postings_scanned,
                        "blocks_skipped": scan_stats.blocks_skipped,
                        "chunks_scanned": scan_stats.chunks_scanned,
                    }
                    for term, scan_stats in zip(terms, per_term)
                }

    # -- combined update windows -----------------------------------------------------

    def _apply_batch_combined(self, updates: list) -> int:
        """Queue the window, let whoever holds the writer lock drain the queue.

        Windows that pile up while queries (or an earlier window) hold the
        lock are concatenated *in queue order* and applied as one batch —
        cross-client group application, the single-writer mailbox's analogue
        of group commit.  Each per-shard sub-batch of the combined window then
        executes concurrently on its shard executor via the store facades.

        Group-commit pacing, leader elected by queue position: the client
        whose window starts an empty queue becomes the *leader* and parks for
        the gather interval — its core time goes to whoever has work, and
        queries keep answering the whole time.  Clients whose windows arrive
        during that interval are *followers*: they park on their ticket
        without any deadline of their own (plus a generous safety timeout)
        because the leader is guaranteed to scoop their windows up.  One
        drain then applies everything queued as a single batch whose sorted
        per-shard sub-batches descend the trees once per leaf run instead of
        once per window — the same trade fsync group commit makes, paying at
        most one gather interval of latency per *drain* rather than per
        window.  ``combine_window_s=0`` disables the pause (every window
        drains immediately, still scooping whatever queued meanwhile).
        """
        assert self._lock is not None
        ticket = _UpdateTicket(updates)
        with self._pending_lock:
            self._pending.append(ticket)
            leader = len(self._pending) == 1
        if leader:
            if self.combine_window_s > 0.0 and ticket.event.wait(self.combine_window_s):
                return ticket.resolve()
        elif ticket.event.wait(max(1.0, 100.0 * self.combine_window_s)):
            return ticket.resolve()
        self._lock.acquire_write()
        try:
            if ticket.event.is_set():
                return ticket.resolve()
            with self._pending_lock:
                drained = []
                while self._pending:
                    drained.append(self._pending.popleft())
            self._drain_windows(drained)
        finally:
            self._lock.release_write()
        return ticket.resolve()

    def _drain_windows(self, drained: "list[_UpdateTicket]") -> None:
        combined: list = []
        for waiting in drained:
            combined.extend(waiting.updates)
        if len(drained) > 1:
            self.metrics.inc("update.windows_combined",
                             value=float(len(drained) - 1))
        try:
            with span("write.combine", windows=len(drained),
                      updates=len(combined)):
                applied = self.index.apply_batch(combined)
        except BaseException:
            # A bad update in one window must not fail its neighbours:
            # fall back to per-window application so each ticket gets its
            # own outcome, exactly as uncombined execution would.
            for waiting in drained:
                try:
                    waiting.applied = self.index.apply_batch(waiting.updates)
                except BaseException as exc:
                    waiting.error = exc
                waiting.event.set()
            return
        del applied  # == len(combined); per-ticket counts are the windows' own
        if len(drained) > 1:
            self.combined_windows += len(drained) - 1
        for waiting in drained:
            waiting.applied = len(waiting.updates)
            waiting.event.set()
