"""Bounded top-k result heap and the k-way gather merge that feeds it.

Every query algorithm in the paper keeps "a result heap ... to keep track of
the top-k results during the scan".  :class:`ResultHeap` is that structure: it
keeps at most ``k`` (document, score) entries, deduplicates by document id
(keeping the best score), and exposes the current k-th best score, which the
early-termination conditions of Algorithms 2 and 3 compare against.

:func:`merge_ranked_streams` is the gather side of the scan: every method's
query loop k-way merges its per-term posting streams through it and offers
the merged candidates into the heap.  The serial engine passes plain
generators; the parallel fan-out passes :class:`~repro.exec.fanout.StreamPump`
iterators whose blocks materialize on the owning shard executors — the merge
(and the heap) are agnostic to which one they are fed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import QueryError


def merge_ranked_streams(streams: "Iterable[Iterable[Any]]") -> Iterator[Any]:
    """K-way merge of rank-ordered per-term streams (the query gather step).

    Each stream must yield tuples in ascending tuple order (the methods encode
    their rank as the leading component: ``-score``, ``-chunk_id`` or
    ``doc_id``), so the merged sequence interleaves every term's postings in
    global rank order.  Streams are consumed lazily — early termination in the
    caller stops the merge without draining them.
    """
    return heapq.merge(*streams)


@dataclass(frozen=True)
class HeapEntry:
    """A (document, score) pair held by the result heap."""

    doc_id: int
    score: float


class HeapThreshold:
    """Monotone top-k floor shared between a query's heap and its block scans.

    The result heap publishes its k-th best score here once it is full; the
    long-list scans consult :attr:`floor` before fetching each posting block
    and stop as soon as the block's max-score bound cannot beat it (block-max
    pruning).  Two properties make one plain attribute safe to share across
    the parallel fan-out's shard executors without a lock:

    * the floor only ever rises (``publish`` keeps the maximum), and
    * a stale (lower) read merely *under*-prunes — the scan decodes a block
      it could have skipped, which costs pages but can never change results.

    ``gated=True`` starts the threshold pinned at ``-inf`` regardless of what
    the heap publishes; Chunk-TermScore opens the gate only once its
    remainList is empty, because until then a pruned block could still hold a
    fancy-list document whose term scores exceed the per-term floors the
    published bound assumes.  The gate, too, only ever opens — monotone, so
    racing readers stay conservative.
    """

    __slots__ = ("_floor", "_open")

    def __init__(self, gated: bool = False) -> None:
        self._floor = -math.inf
        self._open = not gated

    def publish(self, floor: float) -> None:
        """Raise the floor (lower values are ignored — the floor is monotone)."""
        if floor > self._floor:
            self._floor = floor

    def open_gate(self) -> None:
        """Allow readers to see the published floor (irreversible)."""
        self._open = True

    @property
    def floor(self) -> float:
        """The current prunable-below score; ``-inf`` while empty or gated."""
        return self._floor if self._open else -math.inf


class ResultHeap:
    """Keeps the best ``k`` documents seen so far, ordered by score.

    Ties are broken towards smaller document ids so query results are
    deterministic, which the equivalence tests between index methods rely on.

    Parameters
    ----------
    k:
        Maximum number of results to retain.  Must be positive.
    threshold:
        Optional :class:`HeapThreshold` to publish the k-th best score to
        whenever the heap is full (block-max pruning reads it).
    threshold_offset:
        Added to the published floor.  Chunk-TermScore publishes
        ``min_score - term_weight * sum(fancy floors)`` so the chunk-id bound
        comparison stays a plain ``lower_bound(c + 2) <= floor`` in the scans.
    """

    def __init__(self, k: int, threshold: "HeapThreshold | None" = None,
                 threshold_offset: float = 0.0) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        self.k = k
        # Min-heap of (score, -doc_id) so the worst retained entry is at the top;
        # -doc_id makes larger doc ids evict first on score ties.
        self._heap: list[tuple[float, int]] = []
        self._scores: dict[int, float] = {}
        self._threshold = threshold
        self._threshold_offset = threshold_offset

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._scores

    @property
    def is_full(self) -> bool:
        """Whether the heap already holds ``k`` documents."""
        return len(self._scores) >= self.k

    def add(self, doc_id: int, score: float) -> bool:
        """Offer a (document, score) pair; return whether it is currently retained.

        Re-offering a document keeps the maximum of its scores.  When the heap
        is full, a new document displaces the current worst entry only if it
        ranks strictly better under (score, then smaller doc id).
        """
        existing = self._scores.get(doc_id)
        if existing is not None:
            if score > existing:
                self._scores[doc_id] = score
                self._rebuild()
                self._publish()
            return True
        if len(self._scores) < self.k:
            self._scores[doc_id] = score
            heapq.heappush(self._heap, (score, -doc_id))
            self._publish()
            return True
        worst_score, neg_worst_doc = self._heap[0]
        worst_doc = -neg_worst_doc
        if (score, -doc_id) <= (worst_score, neg_worst_doc):
            return False
        heapq.heapreplace(self._heap, (score, -doc_id))
        del self._scores[worst_doc]
        self._scores[doc_id] = score
        self._publish()
        return True

    def min_score(self) -> float:
        """Score of the worst retained document; ``-inf`` until the heap is full.

        This is ``resultHeap.minScore(k)`` in Algorithm 3: the value future
        candidates must beat.  While fewer than ``k`` documents are retained,
        any candidate can still enter, hence ``-inf``.
        """
        if len(self._scores) < self.k:
            return -math.inf
        return self._heap[0][0]

    def would_accept(self, score: float) -> bool:
        """Whether a new document with ``score`` could enter the top-k."""
        return score > self.min_score() or not self.is_full

    def results(self) -> list[HeapEntry]:
        """Retained entries, best first (score descending, then doc id ascending)."""
        ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
        return [HeapEntry(doc_id=doc_id, score=score) for doc_id, score in ordered]

    def get(self, doc_id: int) -> float | None:
        """Score currently retained for ``doc_id``, or ``None``."""
        return self._scores.get(doc_id)

    def _publish(self) -> None:
        """Push the current floor to the shared threshold once the heap is full."""
        if self._threshold is not None and len(self._scores) >= self.k:
            self._threshold.publish(self._heap[0][0] + self._threshold_offset)

    def _rebuild(self) -> None:
        self._heap = [(score, -doc_id) for doc_id, score in self._scores.items()]
        heapq.heapify(self._heap)
