"""Core SVR contribution: score specification, maintenance, and the index family.

This package contains the paper's actual contribution:

* :mod:`repro.core.scorespec` — the SQL-based SVR score specification (§3.1),
* :mod:`repro.core.score_view` — incrementally maintained Score view plumbing (§3.2),
* :mod:`repro.core.indexes` — the inverted-list family and query algorithms (§4),
* :mod:`repro.core.text_index` — the text-management component combining an
  analyzer, forward index and one of the index methods,
* :mod:`repro.core.svr` — the SVR manager tying the relational database and the
  text index together, the equivalent of Figure 2's architecture.
"""

from repro.core.index_router import IndexRouter
from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats
from repro.core.indexes.registry import available_methods, create_index
from repro.core.result_heap import ResultHeap
from repro.core.scorespec import ScoreSpec
from repro.core.svr import SVRManager, SVRQueryResult
from repro.core.text_index import SVRTextIndex

__all__ = [
    "ScoreSpec",
    "IndexRouter",
    "InvertedIndex",
    "QueryResult",
    "QueryStats",
    "ResultHeap",
    "SVRTextIndex",
    "SVRManager",
    "SVRQueryResult",
    "create_index",
    "available_methods",
]
