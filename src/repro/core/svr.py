"""The SVR manager: Figure 2's architecture tied together.

:class:`SVRManager` connects a relational :class:`~repro.relational.database.Database`
with one or more :class:`~repro.core.text_index.SVRTextIndex` instances:

* ``create_text_index`` walks the scored table, computes every row's SVR score
  from the :class:`~repro.core.scorespec.ScoreSpec`, bulk-builds the chosen
  inverted-list method, creates the incrementally maintained Score view, and
  wires the change notifications — structured updates anywhere in the database
  flow to the view and from the view into the index as score updates, while
  inserts/deletes/text updates on the scored table itself flow straight into
  the index.
* ``search`` runs a top-k keyword query and joins the results back to the
  scored table's rows, which is what the SQL/MM query of Figure 1 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import ScoreSpecError, UnknownColumnError
from repro.core.score_view import ScoreMaintainer
from repro.core.scorespec import ScoreSpec
from repro.core.text_index import SVRTextIndex
from repro.relational.database import Database
from repro.relational.triggers import ChangeKind, RowChange


@dataclass(frozen=True)
class SVRQueryResult:
    """One result of an SVR keyword query, joined back to its table row."""

    doc_id: Any
    score: float
    row: Mapping[str, Any] | None


@dataclass
class _IndexBinding:
    """Internal record tying a text index to its table, column, spec and view."""

    name: str
    table: str
    text_column: str
    spec: ScoreSpec
    text_index: SVRTextIndex
    maintainer: ScoreMaintainer


class SVRManager:
    """Creates and queries SVR text indexes over a relational database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._bindings: dict[str, _IndexBinding] = {}

    # -- index creation --------------------------------------------------------------

    def create_text_index(
        self,
        name: str,
        table: str,
        text_column: str,
        spec: ScoreSpec,
        method: str = "chunk",
        score_dependencies: Iterable[tuple[str, str]] = (),
        **method_options: Any,
    ) -> SVRTextIndex:
        """Create an SVR text index over ``table.text_column``.

        Parameters
        ----------
        name:
            Index name (also used for the Score view: ``<name>_score``).
        table / text_column:
            The relation and text column being indexed (``R`` and ``C_t`` in §3.1).
        spec:
            SVR score specification (components + aggregate).
        method:
            Inverted-list method name.
        score_dependencies:
            ``(table, key_column)`` pairs describing which base-table changes
            affect which scored keys — e.g. ``("reviews", "movie_id")``.  The
            scored table itself is always included via its primary key.
        method_options:
            Extra options forwarded to the index method.
        """
        if name in self._bindings:
            raise ScoreSpecError(f"text index {name!r} already exists")
        scored_table = self.database.table(table)
        if not scored_table.schema.has_column(text_column):
            raise UnknownColumnError(f"{table!r} has no column {text_column!r}")
        if spec.include_term_score and not method.endswith("termscore"):
            raise ScoreSpecError(
                "the score specification includes a term score; use one of the "
                "TermScore index methods (id_termscore, chunk_termscore)"
            )

        text_index = SVRTextIndex(
            method=method, env=self.database.env, name=name, **method_options
        )
        primary_key = scored_table.schema.primary_key
        keys = []
        for row in scored_table.scan():
            key = row[primary_key]
            keys.append(key)
            text_index.add_document(key, row.get(text_column) or "", spec.svr_score(key))
        text_index.finalize()

        dependencies = [(table, primary_key), *score_dependencies]
        maintainer = ScoreMaintainer(
            self.database,
            name=f"{name}_score",
            spec=spec,
            dependencies=dependencies,
            initial_keys=keys,
        )
        maintainer.attach_index(text_index)

        binding = _IndexBinding(
            name=name, table=table, text_column=text_column, spec=spec,
            text_index=text_index, maintainer=maintainer,
        )
        self._bindings[name] = binding
        self.database.triggers.register(table, self._make_table_listener(binding))
        return text_index

    def _make_table_listener(self, binding: _IndexBinding):
        """Keep the text index in sync with inserts/deletes/text updates on the table."""

        def listener(change: RowChange) -> None:
            key = change.key
            if change.kind is ChangeKind.INSERT:
                text = (change.new_row or {}).get(binding.text_column) or ""
                binding.text_index.insert_document(key, text, binding.spec.svr_score(key))
            elif change.kind is ChangeKind.DELETE:
                if binding.text_index.current_score(key) is not None:
                    binding.text_index.delete_document(key)
            elif change.kind is ChangeKind.UPDATE:
                if binding.text_column in change.changed_columns():
                    new_text = (change.new_row or {}).get(binding.text_column) or ""
                    binding.text_index.update_content(key, new_text)

        return listener

    # -- lookups -----------------------------------------------------------------------

    def text_index(self, name: str) -> SVRTextIndex:
        """The text index registered under ``name``."""
        return self._binding(name).text_index

    def score_view(self, name: str) -> ScoreMaintainer:
        """The Score-view maintainer of the index registered under ``name``."""
        return self._binding(name).maintainer

    def index_names(self) -> list[str]:
        """Names of all registered text indexes."""
        return sorted(self._bindings)

    def _binding(self, name: str) -> _IndexBinding:
        binding = self._bindings.get(name)
        if binding is None:
            raise ScoreSpecError(f"unknown text index {name!r}")
        return binding

    # -- queries ------------------------------------------------------------------------

    def search(self, name: str, query: str | Iterable[str], k: int = 10,
               conjunctive: bool = True, fetch_rows: bool = True) -> list[SVRQueryResult]:
        """Top-k keyword search joined back to the scored table's rows.

        This is the evaluation of Figure 1's query: the text component returns
        the top-ranked documents with their scores and the relational engine
        merges them with the base rows.
        """
        binding = self._binding(name)
        response = binding.text_index.search(query, k=k, conjunctive=conjunctive)
        table = self.database.table(binding.table)
        results = []
        for result in response.results:
            row = table.get(result.doc_id) if fetch_rows else None
            results.append(SVRQueryResult(doc_id=result.doc_id, score=result.score, row=row))
        return results
