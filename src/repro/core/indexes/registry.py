"""Index-method registry: build any of the paper's methods by name."""

from __future__ import annotations

from typing import Any

from repro.errors import UnknownMethodError
from repro.core.indexes.base import InvertedIndex
from repro.core.indexes.chunk import ChunkIndex
from repro.core.indexes.chunk_termscore import ChunkTermScoreIndex
from repro.core.indexes.id_method import IDIndex
from repro.core.indexes.id_termscore import IDTermScoreIndex
from repro.core.indexes.score_method import ScoreIndex
from repro.core.indexes.score_threshold import ScoreThresholdIndex
from repro.storage.environment import StorageEnvironment
from repro.storage.sharding import ShardedEnvironment
from repro.text.documents import DocumentStore

_METHODS: dict[str, type[InvertedIndex]] = {
    IDIndex.method_name: IDIndex,
    ScoreIndex.method_name: ScoreIndex,
    ScoreThresholdIndex.method_name: ScoreThresholdIndex,
    ChunkIndex.method_name: ChunkIndex,
    IDTermScoreIndex.method_name: IDTermScoreIndex,
    ChunkTermScoreIndex.method_name: ChunkTermScoreIndex,
}


def available_methods() -> list[str]:
    """Names of all registered index methods."""
    return sorted(_METHODS)


def index_class(method: str) -> type[InvertedIndex]:
    """The index class registered under ``method``."""
    cls = _METHODS.get(method)
    if cls is None:
        raise UnknownMethodError(
            f"unknown index method {method!r}; available: {available_methods()}"
        )
    return cls


def create_index(method: str, env: "StorageEnvironment | ShardedEnvironment",
                 documents: DocumentStore, name: str = "svr",
                 **options: Any) -> InvertedIndex:
    """Instantiate an index method by name.

    ``options`` are passed to the method's constructor (e.g. ``chunk_ratio`` for
    the Chunk methods, ``threshold_ratio`` for Score-Threshold, ``term_weight``
    and ``fancy_size`` for the TermScore variants).  ``env`` may be a plain
    single-pool environment or a term-partitioned
    :class:`~repro.storage.sharding.ShardedEnvironment`.
    """
    return index_class(method)(env, documents, name=name, **options)
