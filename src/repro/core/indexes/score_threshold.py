"""The Score-Threshold method (§4.3.1, Algorithms 1 and 2).

Two ideas distinguish this method from the Score method:

1. Long inverted lists are ordered by (and store) the document score but are
   **never updated** — the stored score may be stale by up to a threshold.
2. A per-term **short list** receives postings only for documents whose new
   score exceeds ``thresholdValueOf(listScore) = ratio * listScore``; the
   ``ListScore`` table remembers each updated document's list score and
   whether it has short-list postings.

Queries merge the short and long lists in decreasing (possibly stale) score
order and keep scanning past the first k results until no remaining posting's
*latest* score — bounded by ``thresholdValueOf`` of its list score — can still
enter the top-k.  The update/query trade-off is tuned by the threshold ratio.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.errors import InvertedIndexError
from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats, _StagedDocument, _TermPlan
from repro.core.posting import (
    LazyBytesReader,
    ScoredPosting,
    encode_blocked_scored_postings,
    encode_scored_postings,
    iter_blocked_scored_postings_lazy,
    iter_scored_postings_lazy,
)
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.storage.heap_file import SegmentHandle
from repro.text.documents import Document, DocumentStore

_ADD = "ADD"
_REM = "REM"


class ScoreThresholdIndex(InvertedIndex):
    """The Score-Threshold method.

    Parameters
    ----------
    threshold_ratio:
        The multiplicative threshold ``thresholdValueOf(score) = ratio * score``.
        Must be at least 1.0; larger ratios mean fewer short-list updates but
        longer query scans (§4.3.1).
    """

    method_name = "score_threshold"
    stores_term_scores = False

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", threshold_ratio: float = 11.24,
                 blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        if threshold_ratio < 1.0:
            raise InvertedIndexError(
                f"threshold_ratio must be >= 1.0, got {threshold_ratio}"
            )
        self.threshold_ratio = float(threshold_ratio)
        self._long_lists = self._create_heapfile(f"{name}.long")
        self._segments: dict[str, SegmentHandle] = {}
        # Short list key: (term, -list_score, doc_id) -> (operation, unused term score).
        self._short = self._create_kvstore(f"{name}.short", key_shard="term")
        # ListScore table: doc_id -> (list_score, in_short_list).
        self._list_score = self._create_kvstore(f"{name}.listscore", key_shard="doc")

    # -- threshold ---------------------------------------------------------------

    def threshold_value_of(self, score: float) -> float:
        """``thresholdValueOf(score)`` — the largest latest score a document whose
        list score is ``score`` can have without owning short-list postings."""
        return self.threshold_ratio * score

    # -- build --------------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        term_docs: dict[str, list[tuple[float, int]]] = {}
        for document in staged:
            for term in document.term_frequencies:
                term_docs.setdefault(term, []).append((document.score, document.doc_id))
        for term, entries in term_docs.items():
            entries.sort(key=lambda entry: (-entry[0], entry[1]))
            postings = [
                ScoredPosting(doc_id=doc_id, score=score) for score, doc_id in entries
            ]
            if self.blocked_postings:
                payload = encode_blocked_scored_postings(postings, with_term_scores=False)
            else:
                payload = encode_scored_postings(postings, with_term_scores=False)
            self._segments[term] = self._long_lists.write(payload, key=term)
            self.update_stats.long_list_postings_written += len(postings)

    # -- size / cache ----------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        return self._long_lists.total_bytes()

    def short_list_size_bytes(self) -> int:
        return self._short.size_bytes()

    def drop_long_list_cache(self) -> None:
        self._long_lists.drop_from_cache()

    # -- score updates (Algorithm 1) ---------------------------------------------------

    def _after_score_update(self, doc_id: int, old_score: float, new_score: float) -> None:
        entry = self._list_score.get(doc_id, default=None)
        if entry is not None:
            list_score, in_short_list = entry
        else:
            list_score, in_short_list = old_score, False
            self._list_score.put(doc_id, (old_score, False))
        if new_score <= self.threshold_value_of(list_score):
            return
        for term in self._content_terms(doc_id):
            if in_short_list:
                self._short.delete_if_present((term, -list_score, doc_id))
            self._short.put((term, -new_score, doc_id), (_ADD, 0.0))
            self.update_stats.short_list_postings_written += 1
        self._list_score.put(doc_id, (new_score, True))
        self.update_stats.short_list_updates += 1

    def _after_score_batch(self, changes: list[tuple[int, float, float]]) -> None:
        """Replay the threshold decisions in order, flush the writes in bulk.

        The list state is the (stale) list score itself; see
        :meth:`InvertedIndex._batch_promote_short_lists` for the shared
        overlay-replay algorithm.
        """
        self._batch_promote_short_lists(
            changes, self._list_score, self._short,
            state_of=lambda score: score,
            payload_of=lambda doc_id, term: (_ADD, 0.0),
        )

    # -- document changes (Appendix A applied to this layout) -----------------------------

    def _after_insert(self, doc_id: int, score: float) -> None:
        entries = sorted(
            ((term, -score, doc_id), (_ADD, 0.0))
            for term in self._content_terms(doc_id)
        )
        self._short.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)
        self._list_score.put(doc_id, (score, True))

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        entry = self._list_score.get(doc_id, default=None)
        list_score = entry[0] if entry is not None else self.score_table.get(doc_id)
        added = new_document.distinct_terms - old_document.distinct_terms
        removed = old_document.distinct_terms - new_document.distinct_terms
        entries = sorted(
            [((term, -list_score, doc_id), (_ADD, 0.0)) for term in added]
            + [((term, -list_score, doc_id), (_REM, 0.0)) for term in removed]
        )
        self._short.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    # -- query (Algorithm 2) ----------------------------------------------------------------

    def _make_term_plan(self, term: str) -> _TermPlan:
        return _TermPlan(
            term,
            lambda index, stats, threshold:
                self._term_stream(index, term, stats, threshold),
        )

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        required = len(terms) if conjunctive else 1
        heap = ResultHeap(k, threshold=threshold)
        merged = merge_ranked_streams(streams)
        seen_terms: dict[int, set[int]] = {}
        seen_short: dict[int, bool] = {}
        processed: set[int] = set()
        for neg_score, doc_id, term_index, is_short in merged:
            list_score = -neg_score
            # Early termination: every remaining posting has list score <= the
            # current one, so its latest score is bounded by thresholdValueOf of
            # the current list score (Lemma 1.2/1.3).  Once that bound cannot
            # displace the heap floor, the top-k is final.
            if heap.is_full and self.threshold_value_of(list_score) < heap.min_score():
                stats.stopped_early = True
                break
            if doc_id in processed:
                continue
            terms_seen = seen_terms.setdefault(doc_id, set())
            terms_seen.add(term_index)
            seen_short[doc_id] = seen_short.get(doc_id, False) or is_short
            if len(terms_seen) < required:
                continue
            processed.add(doc_id)
            stats.candidates += 1
            self._process_candidate(doc_id, seen_short[doc_id], heap, stats)
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _process_candidate(self, doc_id: int, from_short: bool, heap: ResultHeap,
                           stats: QueryStats) -> None:
        if from_short:
            current = self._live_score(doc_id)
            stats.score_lookups += 1
            if current is None:
                return
            stats.heap_offers += 1
            heap.add(doc_id, current)
            return
        entry = self._list_score.get(doc_id, default=None)
        if entry is not None and entry[1]:
            # The document has short-list postings; its long-list postings are
            # ignored (it has been or will be processed through the short lists).
            return
        current = self._live_score(doc_id)
        stats.score_lookups += 1
        if current is None:
            return
        stats.heap_offers += 1
        heap.add(doc_id, current)

    # -- per-term stream construction ------------------------------------------------------

    def _term_stream(self, term_index: int, term: str, stats: QueryStats,
                     threshold: "HeapThreshold | None" = None,
                     ) -> Iterator[tuple[float, int, int, bool]]:
        """Merge the short and long lists of one term in decreasing score order.

        Yields ``(-list_score, doc_id, term_index, is_short)`` so that tuples
        from different terms interleave correctly inside ``heapq.merge``.
        """
        short_adds, removed = self._load_short(term)
        long_postings = self._iter_long(term, stats, threshold)

        def short_iter() -> Iterator[tuple[float, int, int, bool]]:
            for list_score, doc_id in short_adds:
                stats.postings_scanned += 1
                yield -list_score, doc_id, term_index, True

        def long_iter() -> Iterator[tuple[float, int, int, bool]]:
            for doc_id, score, _term_score in long_postings:
                if doc_id in removed:
                    continue
                yield -score, doc_id, term_index, False

        return heapq.merge(short_iter(), long_iter())

    def _iter_long(self, term: str, stats: QueryStats,
                   threshold: "HeapThreshold | None" = None,
                   ) -> "Iterator[tuple[int, float, float]]":
        """Stream ``(doc_id, score, term_score)`` tuples from the long list.

        With the blocked codec and a live threshold, the scan applies the
        block-max skip step: a block whose largest stored score ``s`` has
        ``thresholdValueOf(s) = ratio * s`` below the heap floor cannot
        contain a document able to enter the top-k (Lemma 1.2/1.3 at block
        granularity — any higher-scoring document has been promoted to the
        short lists, whose postings sort ahead of its long-list ones), and
        neither can any later block, so the stream ends without fetching
        their pages.
        """
        handle = self._segments.get(term)
        if handle is None:
            return
        if self.blocked_postings:
            cached = self._cached_long_postings(
                self._long_lists, handle, term, iter_blocked_scored_postings_lazy
            )
            if cached is not None:
                # Served from memory: no pages to save, so the block-max skip
                # step is moot — the merge still stops pulling at its own
                # termination condition (the stream stays lazy).
                for posting in cached:
                    stats.postings_scanned += 1
                    yield posting
                return
        reader = LazyBytesReader(self._long_lists.iter_pages(handle))
        if self.blocked_postings:
            prune = None
            on_skip = None
            if threshold is not None:
                ratio = self.threshold_ratio

                def prune(block, threshold=threshold, ratio=ratio):
                    return ratio * block.bound < threshold.floor

                def on_skip(skipped, block, stats=stats, term=term,
                            threshold=threshold, ratio=ratio):
                    stats.blocks_skipped += skipped
                    events = stats.skip_events
                    if events is not None:
                        events.append({
                            "term": term, "kind": "prune", "blocks": skipped,
                            "floor": threshold.floor,
                            "bound": ratio * block.bound,
                        })

            postings = iter_blocked_scored_postings_lazy(reader, prune=prune,
                                                         on_skip=on_skip)
        else:
            postings = iter_scored_postings_lazy(reader)
        for posting in self._tag_scan_errors(handle, postings):
            stats.postings_scanned += 1
            yield posting

    def _load_short(self, term: str) -> tuple[list[tuple[float, int]], set[int]]:
        """Load one term's short list: (list_score, doc_id) adds plus removed ids."""
        adds: list[tuple[float, int]] = []
        removed: set[int] = set()
        for (_term, neg_score, doc_id), (operation, _ts) in self._short.prefix_items((term,)):
            if operation == _ADD:
                adds.append((-neg_score, doc_id))
            else:
                removed.add(doc_id)
        adds.sort(key=lambda entry: (-entry[0], entry[1]))
        return adds, removed
