"""The ID method (§4.2.1): traditional ID-ordered inverted lists.

Each term's long inverted list holds the ids of the documents containing the
term, in increasing id order, delta-encoded and stored as an immutable binary
object.  A separate Score table (owned by the base class) maps document ids to
their current scores.

* **Score updates** only touch the Score table — the cheapest possible update.
* **Queries** must merge the *entire* long list of every query term, because a
  document anywhere in the lists may hold the highest current score.  This is
  the full-scan behaviour the paper measures as the ID method's weakness.
* **Incremental document changes** are handled with a small ID-ordered delta
  list per term (``(term, doc_id) -> ADD | REM``), merged with the long list at
  query time; this mirrors Appendix A applied to the ID layout.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats, _StagedDocument
from repro.core.posting import (
    LazyBytesReader,
    Posting,
    encode_blocked_id_postings,
    encode_id_postings,
    iter_blocked_id_postings_lazy,
    iter_id_postings_lazy,
)
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.storage.heap_file import SegmentHandle
from repro.text.documents import Document, DocumentStore

#: Marker values stored in the delta list.
_ADD = "ADD"
_REM = "REM"


def merge_streams_by_doc_id(
    streams: "list[Iterator[tuple[int, float]]]",
) -> Iterator[tuple[int, dict[int, tuple[int, float]]]]:
    """Merge ID-ordered ``(doc_id, term_score)`` streams, grouping by document id.

    Yields ``(doc_id, {stream_index: posting})`` in increasing document-id
    order; the mapping records which streams contained the document (and with
    which posting tuple, so term scores survive the merge).
    """
    def tag(index: int, stream: "Iterator[tuple[int, float]]") -> Iterator[tuple[int, int, tuple[int, float]]]:
        for posting in stream:
            yield posting[0], index, posting

    merged = merge_ranked_streams(
        tag(index, stream) for index, stream in enumerate(streams)
    )
    current_doc: int | None = None
    found: dict[int, tuple[int, float]] = {}
    for doc_id, index, posting in merged:
        if current_doc is None:
            current_doc = doc_id
        if doc_id != current_doc:
            yield current_doc, found
            current_doc = doc_id
            found = {}
        found[index] = posting
    if current_doc is not None:
        yield current_doc, found


class IDIndex(InvertedIndex):
    """The ID method: ID-ordered long lists plus a Score table."""

    method_name = "id"
    stores_term_scores = False

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True) -> None:
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning)
        self._long_lists = self._create_heapfile(f"{name}.long")
        self._segments: dict[str, SegmentHandle] = {}
        self._delta = self._create_kvstore(f"{name}.delta", key_shard="term")

    # -- build ---------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        term_docs: dict[str, list[int]] = {}
        for document in staged:
            for term in document.term_frequencies:
                term_docs.setdefault(term, []).append(document.doc_id)
        for term, doc_ids in term_docs.items():
            postings = [
                self._make_posting(doc_id, term) for doc_id in sorted(set(doc_ids))
            ]
            if self.blocked_postings:
                payload = encode_blocked_id_postings(
                    postings, with_term_scores=self.stores_term_scores
                )
            else:
                payload = encode_id_postings(
                    postings, with_term_scores=self.stores_term_scores
                )
            self._segments[term] = self._long_lists.write(payload, key=term)
            self.update_stats.long_list_postings_written += len(postings)

    def _make_posting(self, doc_id: int, term: str) -> Posting:
        """Build a long-list posting; overridden by the TermScore variant."""
        del term
        return Posting(doc_id=doc_id)

    # -- size / cache -------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        return self._long_lists.total_bytes()

    def short_list_size_bytes(self) -> int:
        return self._delta.size_bytes()

    def drop_long_list_cache(self) -> None:
        self._long_lists.drop_from_cache()

    # -- score updates -----------------------------------------------------------

    def _after_score_batch(self, changes: "list[tuple[int, float, float]]") -> None:
        """Score updates touch only the Score table for the ID layout.

        The bulk Score-table pass in :meth:`InvertedIndex.apply_batch` is the
        entire batched update; the ID-ordered long lists and the delta list
        never key on scores, so there is nothing to re-key.  (This applies to
        ID-TermScore as well: term scores are content-derived, not
        score-derived.)
        """

    # -- incremental document changes ----------------------------------------------

    def _after_insert(self, doc_id: int, score: float) -> None:
        entries = sorted(
            ((term, doc_id), (_ADD, self._delta_term_score(doc_id, term)))
            for term in self._content_terms(doc_id)
        )
        self._delta.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        added = new_document.distinct_terms - old_document.distinct_terms
        removed = old_document.distinct_terms - new_document.distinct_terms
        entries = sorted(
            [((term, doc_id), (_ADD, self._delta_term_score(doc_id, term)))
             for term in added]
            + [((term, doc_id), (_REM, 0.0)) for term in removed]
        )
        self._delta.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    def _delta_term_score(self, doc_id: int, term: str) -> float:
        """Per-term score stored with delta postings (0.0 for the plain ID method)."""
        del doc_id, term
        return 0.0

    # -- query -------------------------------------------------------------------

    def _term_scan_plans(self, terms: list[str], stats_for,
                         threshold: "HeapThreshold | None" = None):
        # No block-max skip step for the ID layout: result scores live in the
        # Score table and are unbounded by anything the ID-ordered postings
        # store, so no block bound can soundly rule documents out.  The
        # threshold is accepted (hook contract) and ignored.
        del threshold
        return [
            (term, lambda term=term, stats=stats_for(index): self._term_stream(term, stats))
            for index, term in enumerate(terms)
        ]

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        del threshold
        heap = ResultHeap(k)
        required = len(terms) if conjunctive else 1
        for doc_id, found in merge_streams_by_doc_id(streams):
            if len(found) < required:
                continue
            stats.candidates += 1
            score = self._live_score(doc_id)
            stats.score_lookups += 1
            if score is None:
                continue
            stats.heap_offers += 1
            heap.add(doc_id, self._result_score(doc_id, score, found, terms))
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _result_score(self, doc_id: int, svr_score: float,
                      found: dict[int, tuple[int, float]], terms: list[str]) -> float:
        """Final ranking score for a candidate (SVR only for the plain ID method)."""
        del doc_id, found, terms
        return svr_score

    def _term_stream(self, term: str, stats: QueryStats) -> "Iterator[tuple[int, float]]":
        """Long-list postings merged with the delta list for one term, ID order.

        Postings flow through the scan as plain ``(doc_id, term_score)`` tuples
        (the zero-copy decoders yield them directly; no per-posting objects).
        """
        adds, removed = self._load_delta(term)
        long_postings = self._iter_long_postings(term, stats)
        return self._merge_with_delta(long_postings, adds, removed, stats)

    def _iter_long_postings(self, term: str,
                            stats: QueryStats) -> "Iterator[tuple[int, float]]":
        handle = self._segments.get(term)
        if handle is None:
            return
        reader = LazyBytesReader(self._long_lists.iter_pages(handle))
        if self.blocked_postings:
            postings = iter_blocked_id_postings_lazy(reader)
        else:
            postings = iter_id_postings_lazy(reader)
        for posting in self._tag_scan_errors(handle, postings):
            stats.postings_scanned += 1
            yield posting

    def _load_delta(self, term: str) -> tuple[list[tuple[int, float]], set[int]]:
        adds: list[tuple[int, float]] = []
        removed: set[int] = set()
        for (_term, doc_id), (operation, term_score) in self._delta.prefix_items((term,)):
            if operation == _ADD:
                adds.append((doc_id, term_score))
            else:
                removed.add(doc_id)
        adds.sort()
        return adds, removed

    @staticmethod
    def _merge_with_delta(long_postings: "Iterable[tuple[int, float]]",
                          adds: list[tuple[int, float]], removed: set[int],
                          stats: QueryStats) -> "Iterator[tuple[int, float]]":
        add_index = 0
        seen_add_ids = {doc_id for doc_id, _ts in adds}
        for posting in long_postings:
            doc_id = posting[0]
            while add_index < len(adds) and adds[add_index][0] < doc_id:
                stats.postings_scanned += 1
                yield adds[add_index]
                add_index += 1
            if doc_id in removed:
                continue
            if doc_id in seen_add_ids:
                # The delta posting supersedes the long-list posting (content update).
                continue
            yield posting
        while add_index < len(adds):
            stats.postings_scanned += 1
            yield adds[add_index]
            add_index += 1
