"""The ID method (§4.2.1): traditional ID-ordered inverted lists.

Each term's long inverted list holds the ids of the documents containing the
term, in increasing id order, delta-encoded and stored as an immutable binary
object.  A separate Score table (owned by the base class) maps document ids to
their current scores.

* **Score updates** only touch the Score table — the cheapest possible update.
* **Queries** must merge the *entire* long list of every query term, because a
  document anywhere in the lists may hold the highest current score.  This is
  the full-scan behaviour the paper measures as the ID method's weakness.
* **Incremental document changes** are handled with a small ID-ordered delta
  list per term (``(term, doc_id) -> ADD | REM``), merged with the long list at
  query time; this mirrors Appendix A applied to the ID layout.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats, _StagedDocument, _TermPlan
from repro.core.posting import (
    BlockedIDSeeker,
    LazyBytesReader,
    Posting,
    encode_blocked_id_postings,
    encode_id_postings,
    iter_blocked_id_postings_lazy,
    iter_id_postings_lazy,
)
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.storage.heap_file import SegmentHandle
from repro.text.documents import Document, DocumentStore

#: Marker values stored in the delta list.
_ADD = "ADD"
_REM = "REM"


class _ListSeeker:
    """In-memory ``next_geq`` cursor over already-decoded postings.

    Presents the same cursor surface as :class:`BlockedIDSeeker` for postings
    served from the hot-term list cache, so the seek-merge works identically
    whether a term's list comes from pages or from memory.
    """

    __slots__ = ("head", "total", "_postings", "_docs", "_pos")

    def __init__(self, postings: "list[tuple[int, float]]") -> None:
        self._postings = postings
        self._docs = [posting[0] for posting in postings]
        self._pos = 0
        self.total = len(postings)
        self.head = postings[0] if postings else None

    def next_geq(self, target: int) -> "tuple[int, float] | None":
        if self.head is None or self.head[0] >= target:
            return self.head
        pos = bisect_left(self._docs, target, self._pos + 1)
        if pos >= len(self._postings):
            self.head = None
            return None
        self._pos = pos
        self.head = self._postings[pos]
        return self.head


class _SeekableTermStream:
    """One term's seekable scan: long-list cursor merged with the delta list.

    Mirrors :meth:`IDIndex._merge_with_delta` semantics posting-for-posting —
    delta adds interleave in id order, removed ids and ids superseded by an
    add are skipped — but exposes ``head`` / ``next_geq`` instead of a
    forward-only iterator, so the DAAT conjunctive merge can jump it.
    Failures surfacing from the underlying cursor are stamped with the
    segment's shard, matching ``_tag_scan_errors``.
    """

    __slots__ = ("head", "_seeker", "_adds", "_add_docs", "_add_pos",
                 "_removed", "_seen_add_ids", "_stats", "_shard")

    def __init__(self, seeker, adds: "list[tuple[int, float]]",
                 removed: set[int], stats: QueryStats,
                 shard: "int | None") -> None:
        self._seeker = seeker
        self._adds = adds
        self._add_docs = [doc_id for doc_id, _ts in adds]
        self._add_pos = 0
        self._removed = removed
        self._seen_add_ids = set(self._add_docs)
        self._stats = stats
        self._shard = shard
        self.head: "tuple[int, float] | None" = None
        self._settle(0)

    @property
    def approximate_length(self) -> int:
        """Directory-served list length (long list + delta adds)."""
        total = self._seeker.total if self._seeker is not None else 0
        return total + len(self._adds)

    def next_geq(self, target: int) -> "tuple[int, float] | None":
        if self.head is not None and self.head[0] >= target:
            return self.head
        self._settle(target)
        return self.head

    def _settle(self, target: int) -> None:
        """Position ``head`` on the smallest live posting with id >= target."""
        pos = bisect_left(self._add_docs, target, self._add_pos)
        self._add_pos = pos
        long_head = None
        if self._seeker is not None:
            try:
                long_head = self._seeker.next_geq(target)
                while long_head is not None and (
                        long_head[0] in self._removed
                        or long_head[0] in self._seen_add_ids):
                    long_head = self._seeker.next_geq(long_head[0] + 1)
            except ReproError as exc:
                if self._shard is not None and getattr(exc, "shard", None) is None:
                    exc.shard = self._shard
                raise
        if pos < len(self._adds) and (long_head is None
                                      or self._adds[pos][0] < long_head[0]):
            self.head = self._adds[pos]
        else:
            self.head = long_head
        if self.head is not None:
            self._stats.postings_scanned += 1


def merge_streams_by_doc_id(
    streams: "list[Iterator[tuple[int, float]]]",
) -> Iterator[tuple[int, dict[int, tuple[int, float]]]]:
    """Merge ID-ordered ``(doc_id, term_score)`` streams, grouping by document id.

    Yields ``(doc_id, {stream_index: posting})`` in increasing document-id
    order; the mapping records which streams contained the document (and with
    which posting tuple, so term scores survive the merge).
    """
    def tag(index: int, stream: "Iterator[tuple[int, float]]") -> Iterator[tuple[int, int, tuple[int, float]]]:
        for posting in stream:
            yield posting[0], index, posting

    merged = merge_ranked_streams(
        tag(index, stream) for index, stream in enumerate(streams)
    )
    current_doc: int | None = None
    found: dict[int, tuple[int, float]] = {}
    for doc_id, index, posting in merged:
        if current_doc is None:
            current_doc = doc_id
        if doc_id != current_doc:
            yield current_doc, found
            current_doc = doc_id
            found = {}
        found[index] = posting
    if current_doc is not None:
        yield current_doc, found


class IDIndex(InvertedIndex):
    """The ID method: ID-ordered long lists plus a Score table."""

    method_name = "id"
    stores_term_scores = False
    #: ID-ordered blocks carry no sound per-block score bound, so the heap
    #: threshold is accepted (constructor uniformity) but never prunes.
    prunes_blocks = False

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        self._long_lists = self._create_heapfile(f"{name}.long")
        self._segments: dict[str, SegmentHandle] = {}
        self._delta = self._create_kvstore(f"{name}.delta", key_shard="term")

    # -- build ---------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        term_docs: dict[str, list[int]] = {}
        for document in staged:
            for term in document.term_frequencies:
                term_docs.setdefault(term, []).append(document.doc_id)
        for term, doc_ids in term_docs.items():
            postings = [
                self._make_posting(doc_id, term) for doc_id in sorted(set(doc_ids))
            ]
            if self.blocked_postings:
                payload = encode_blocked_id_postings(
                    postings, with_term_scores=self.stores_term_scores
                )
            else:
                payload = encode_id_postings(
                    postings, with_term_scores=self.stores_term_scores
                )
            self._segments[term] = self._long_lists.write(payload, key=term)
            self.update_stats.long_list_postings_written += len(postings)

    def _make_posting(self, doc_id: int, term: str) -> Posting:
        """Build a long-list posting; overridden by the TermScore variant."""
        del term
        return Posting(doc_id=doc_id)

    # -- size / cache -------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        return self._long_lists.total_bytes()

    def short_list_size_bytes(self) -> int:
        return self._delta.size_bytes()

    def drop_long_list_cache(self) -> None:
        self._long_lists.drop_from_cache()

    # -- score updates -----------------------------------------------------------

    def _after_score_batch(self, changes: "list[tuple[int, float, float]]") -> None:
        """Score updates touch only the Score table for the ID layout.

        The bulk Score-table pass in :meth:`InvertedIndex.apply_batch` is the
        entire batched update; the ID-ordered long lists and the delta list
        never key on scores, so there is nothing to re-key.  (This applies to
        ID-TermScore as well: term scores are content-derived, not
        score-derived.)
        """

    # -- incremental document changes ----------------------------------------------

    def _after_insert(self, doc_id: int, score: float) -> None:
        entries = sorted(
            ((term, doc_id), (_ADD, self._delta_term_score(doc_id, term)))
            for term in self._content_terms(doc_id)
        )
        self._delta.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        added = new_document.distinct_terms - old_document.distinct_terms
        removed = old_document.distinct_terms - new_document.distinct_terms
        entries = sorted(
            [((term, doc_id), (_ADD, self._delta_term_score(doc_id, term)))
             for term in added]
            + [((term, doc_id), (_REM, 0.0)) for term in removed]
        )
        self._delta.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    def _delta_term_score(self, doc_id: int, term: str) -> float:
        """Per-term score stored with delta postings (0.0 for the plain ID method)."""
        del doc_id, term
        return 0.0

    # -- query -------------------------------------------------------------------

    def _make_term_plan(self, term: str) -> _TermPlan:
        # No block-max skip step for the ID layout: result scores live in the
        # Score table and are unbounded by anything the ID-ordered postings
        # store, so no block bound can soundly rule documents out.  The
        # threshold is accepted (hook contract) and ignored.
        return _TermPlan(
            term,
            lambda index, stats, threshold: self._term_stream(term, stats),
        )

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        del threshold
        heap = ResultHeap(k)
        required = len(terms) if conjunctive else 1
        for doc_id, found in merge_streams_by_doc_id(streams):
            if len(found) < required:
                continue
            stats.candidates += 1
            score = self._live_score(doc_id)
            stats.score_lookups += 1
            if score is None:
                continue
            stats.heap_offers += 1
            heap.add(doc_id, self._result_score(doc_id, score, found, terms))
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _result_score(self, doc_id: int, svr_score: float,
                      found: dict[int, tuple[int, float]], terms: list[str]) -> float:
        """Final ranking score for a candidate (SVR only for the plain ID method)."""
        del doc_id, found, terms
        return svr_score

    def _execute_query(self, terms: list[str], k: int, conjunctive: bool,
                       stats: QueryStats) -> list[QueryResult]:
        if (self.block_seeking and conjunctive and len(terms) > 1
                and self.blocked_postings):
            return self._execute_conjunctive_seek(terms, k, stats)
        return super()._execute_query(terms, k, conjunctive, stats)

    def _execute_conjunctive_seek(self, terms: list[str], k: int,
                                  stats: QueryStats) -> list[QueryResult]:
        """DAAT lockstep conjunctive merge with directory-directed seeking.

        Every term holds a ``next_geq`` cursor; the candidate is the maximum
        of the cursor heads, each round advances every cursor to it, and all
        cursors agreeing means a match.  Cursors are ordered rarest-first
        (directory-served length estimates) so the most selective list drives
        the candidate and the common lists absorb the jumps — a jump past
        whole blocks never fetches the pages underneath them.  Only available
        on the serial path: the parallel fan-out pumps forward-only streams
        through the shard executors, which cannot be jumped.
        """
        cursors: list[tuple[int, _SeekableTermStream]] = []
        for index, term in enumerate(terms):
            stream = self._seekable_term_stream(term, stats)
            if stream.head is None:
                # A term with no live postings empties the conjunction.
                return []
            cursors.append((index, stream))
        cursors.sort(key=lambda pair: pair[1].approximate_length)
        heap = ResultHeap(k)
        candidate = max(stream.head[0] for _index, stream in cursors)
        while True:
            matched = True
            for _index, stream in cursors:
                head = stream.next_geq(candidate)
                if head is None:
                    return [QueryResult(entry.doc_id, entry.score)
                            for entry in heap.results()]
                if head[0] != candidate:
                    candidate = head[0]
                    matched = False
                    break
            if not matched:
                continue
            found = {index: stream.head for index, stream in cursors}
            stats.candidates += 1
            score = self._live_score(candidate)
            stats.score_lookups += 1
            if score is not None:
                stats.heap_offers += 1
                heap.add(candidate, self._result_score(candidate, score, found, terms))
            candidate += 1

    def _seekable_term_stream(self, term: str,
                              stats: QueryStats) -> _SeekableTermStream:
        """Build one term's seekable cursor (cache-served when possible)."""
        adds, removed = self._load_delta(term)
        handle = self._segments.get(term)
        if handle is None:
            return _SeekableTermStream(None, adds, removed, stats, None)
        shard = getattr(handle, "shard", None)
        cached = self._cached_long_postings(
            self._long_lists, handle, term, iter_blocked_id_postings_lazy
        )
        if cached is not None:
            return _SeekableTermStream(_ListSeeker(cached), adds, removed,
                                       stats, shard)

        def on_skip(blocks: int, _block=None) -> None:
            stats.blocks_skipped += blocks
            events = stats.skip_events
            if events is not None:
                # A seek jump prunes against a document-id target, not a
                # score bound — there is no floor/bound pair to record.
                events.append({"term": term, "kind": "seek",
                               "blocks": blocks, "floor": None,
                               "bound": None})

        def open_pages(start_byte: int):
            return self._long_lists.iter_pages(handle, start_byte)

        try:
            seeker = BlockedIDSeeker(open_pages, on_skip=on_skip)
        except ReproError as exc:
            if shard is not None and getattr(exc, "shard", None) is None:
                exc.shard = shard
            raise
        return _SeekableTermStream(seeker, adds, removed, stats, shard)

    def _term_stream(self, term: str, stats: QueryStats) -> "Iterator[tuple[int, float]]":
        """Long-list postings merged with the delta list for one term, ID order.

        Postings flow through the scan as plain ``(doc_id, term_score)`` tuples
        (the zero-copy decoders yield them directly; no per-posting objects).
        """
        adds, removed = self._load_delta(term)
        long_postings = self._iter_long_postings(term, stats)
        return self._merge_with_delta(long_postings, adds, removed, stats)

    def _iter_long_postings(self, term: str,
                            stats: QueryStats) -> "Iterator[tuple[int, float]]":
        handle = self._segments.get(term)
        if handle is None:
            return
        if self.blocked_postings:
            cached = self._cached_long_postings(
                self._long_lists, handle, term, iter_blocked_id_postings_lazy
            )
            if cached is not None:
                for posting in cached:
                    stats.postings_scanned += 1
                    yield posting
                return
        reader = LazyBytesReader(self._long_lists.iter_pages(handle))
        if self.blocked_postings:
            postings = iter_blocked_id_postings_lazy(reader)
        else:
            postings = iter_id_postings_lazy(reader)
        for posting in self._tag_scan_errors(handle, postings):
            stats.postings_scanned += 1
            yield posting

    def _load_delta(self, term: str) -> tuple[list[tuple[int, float]], set[int]]:
        adds: list[tuple[int, float]] = []
        removed: set[int] = set()
        for (_term, doc_id), (operation, term_score) in self._delta.prefix_items((term,)):
            if operation == _ADD:
                adds.append((doc_id, term_score))
            else:
                removed.add(doc_id)
        adds.sort()
        return adds, removed

    @staticmethod
    def _merge_with_delta(long_postings: "Iterable[tuple[int, float]]",
                          adds: list[tuple[int, float]], removed: set[int],
                          stats: QueryStats) -> "Iterator[tuple[int, float]]":
        add_index = 0
        seen_add_ids = {doc_id for doc_id, _ts in adds}
        for posting in long_postings:
            doc_id = posting[0]
            while add_index < len(adds) and adds[add_index][0] < doc_id:
                stats.postings_scanned += 1
                yield adds[add_index]
                add_index += 1
            if doc_id in removed:
                continue
            if doc_id in seen_add_ids:
                # The delta posting supersedes the long-list posting (content update).
                continue
            yield posting
        while add_index < len(adds):
            stats.postings_scanned += 1
            yield adds[add_index]
            add_index += 1
