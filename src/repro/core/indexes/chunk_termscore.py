"""The Chunk-TermScore method (§4.3.3, Algorithm 3).

Extends the Chunk method to rank by the combined function
``f(d) = svr(d) + term_weight * sum_i termscore(t_i, d)`` and to support both
conjunctive and disjunctive queries:

* long and short-list postings additionally carry the normalised-TF term score;
* each term has a small ID-ordered **fancy list** [Long & Suel 2003] holding
  the postings with the highest term scores for that term.

Query processing first merges the fancy lists: documents appearing in *all* of
them are scored exactly and added to the result heap up front, documents
appearing in only some go to the ``remainList``.  The chunk-ordered merge then
proceeds as in the Chunk method, removing encountered documents from the
remainList; at each chunk boundary the remainList is pruned against an upper
bound (actual current SVR score plus known fancy term scores plus the minimum
fancy score of the other terms) and the scan stops once the remainList is
empty and no remaining document's combined upper bound can enter the top-k.
"""

from __future__ import annotations

from repro.core.indexes.base import QueryResult, QueryStats, _StagedDocument
from repro.core.indexes.chunk import ChunkIndex
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.text.documents import Document, DocumentStore


class ChunkTermScoreIndex(ChunkIndex):
    """The Chunk method extended with term scores and fancy lists.

    Parameters
    ----------
    term_weight:
        Weight of the term-score sum in the combined scoring function.
    fancy_size:
        Number of highest-term-score postings kept in each term's fancy list.
    """

    method_name = "chunk_termscore"
    stores_term_scores = True

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", chunk_ratio: float = 6.12, min_chunk_size: int = 100,
                 chunk_strategy=None, term_weight: float = 1.0,
                 fancy_size: int = 50, blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        super().__init__(env, documents, name=name, chunk_ratio=chunk_ratio,
                         min_chunk_size=min_chunk_size, chunk_strategy=chunk_strategy,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        self.term_weight = float(term_weight)
        self.fancy_size = int(fancy_size)
        # Fancy lists: (term, doc_id) -> term_score; small and cache-resident.
        # Entries are materialised only for terms with more than ``fancy_size``
        # postings — for rarer terms a fancy list cannot prune anything, so
        # only the per-term score ceiling below is kept.
        self._fancy = self._create_kvstore(f"{name}.fancy", key_shard="term")
        # Per-term upper bound on the term score of any document *not* present
        # in the term's fancy list (the pruning bound of Algorithm 3).
        self._fancy_floor_by_term: dict[str, float] = {}

    # -- term scores -----------------------------------------------------------

    def _normalized_tf(self, doc_id: int, term: str) -> float:
        document = self.documents.get(doc_id)
        if document.length == 0:
            return 0.0
        return document.term_frequency(term) / document.length

    def _build_term_score(self, doc_id: int, term: str) -> float:
        return self._normalized_tf(doc_id, term)

    def _current_term_score(self, doc_id: int, term: str) -> float:
        return self._normalized_tf(doc_id, term)

    # -- build ------------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        super()._build_long_lists(staged)
        term_entries: dict[str, list[tuple[float, int]]] = {}
        for document in staged:
            for term in document.term_frequencies:
                term_entries.setdefault(term, []).append(
                    (self._normalized_tf(document.doc_id, term), document.doc_id)
                )
        for term, entries in term_entries.items():
            if len(entries) <= self.fancy_size:
                # A fancy list that would contain every posting of the term
                # cannot prune anything; keep only the score ceiling.
                self._fancy_floor_by_term[term] = max(score for score, _ in entries)
                continue
            entries.sort(key=lambda entry: (-entry[0], entry[1]))
            kept = entries[: self.fancy_size]
            for term_score, doc_id in kept:
                self._fancy.put((term, doc_id), term_score)
            self._fancy_floor_by_term[term] = kept[-1][0]

    # -- fancy-list bounds ----------------------------------------------------------

    def _fancy_floor(self, term: str) -> float:
        """Upper bound on the term score of any document *not* in the fancy list."""
        return self._fancy_floor_by_term.get(term, 0.0)

    def _load_fancy(self, term: str) -> dict[int, float]:
        """Load one term's fancy list as a doc_id -> term_score mapping."""
        return {
            doc_id: term_score
            for (_term, doc_id), term_score in self._fancy.prefix_items((term,))
        }

    def _fancy_additions(self, doc_id: int,
                         terms: "set[str]") -> list[tuple[tuple[str, int], float]]:
        """Fancy-list entries to add when ``doc_id`` gains ``terms``.

        The invariant the pruning bound relies on is: any document absent from
        the fancy list of ``term`` has term score at most ``_fancy_floor(term)``.
        Adding the new posting whenever its score exceeds the floor preserves
        it without ever raising the floor.
        """
        additions: list[tuple[tuple[str, int], float]] = []
        for term in terms:
            term_score = self._normalized_tf(doc_id, term)
            if term_score > self._fancy_floor(term):
                additions.append(((term, doc_id), term_score))
        additions.sort()
        return additions

    # -- document changes ----------------------------------------------------------------

    def _after_insert(self, doc_id: int, score: float) -> None:
        super()._after_insert(doc_id, score)
        self._fancy.put_many(self._fancy_additions(doc_id, self._content_terms(doc_id)))

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        super()._after_content_update(doc_id, old_document, new_document)
        removed = old_document.distinct_terms - new_document.distinct_terms
        added = new_document.distinct_terms - old_document.distinct_terms
        self._fancy.delete_many(
            sorted((term, doc_id) for term in removed), ignore_missing=True
        )
        self._fancy.put_many(self._fancy_additions(doc_id, added))

    # -- query (Algorithm 3) ----------------------------------------------------------------

    def _make_query_threshold(self) -> "HeapThreshold | None":
        if not (self.blocked_postings and self.block_max_pruning):
            return None
        # The combined-scoring stopping rule is only sound once the remainList
        # is empty, so the threshold starts gated: block-max prune closures see
        # a -inf floor until phase 2 drains the remainList and opens the gate.
        return HeapThreshold(gated=True)

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        assert self.chunk_map is not None
        required = len(terms) if conjunctive else 1
        processed: set[int] = set()

        # Phase 1: merge the fancy lists (Algorithm 3, lines 8-9).  The fancy
        # lists are small and cache-resident; they are read on the coordinating
        # thread even under the parallel fan-out (the sharded facade's latches
        # serialize them against scans on the owning shards).
        fancy = [self._load_fancy(term) for term in terms]
        fancy_floors = [self._fancy_floor(term) for term in terms]
        # The chunk-granularity stopping rule compares the heap floor against
        # ``svr_bound + term_weight * sum_floors``; publishing
        # ``min_score - term_weight * sum_floors`` lets the inherited per-block
        # prune closure reuse the plain Chunk rule unchanged.
        heap = ResultHeap(k, threshold=threshold,
                          threshold_offset=-self.term_weight * sum(fancy_floors))
        all_fancy_docs = set().union(*fancy) if fancy else set()
        remain_list: dict[int, dict[int, float]] = {}
        for doc_id in sorted(all_fancy_docs):
            known = {
                index: fancy[index][doc_id]
                for index in range(len(terms))
                if doc_id in fancy[index]
            }
            if len(known) == len(terms):
                current = self._live_score(doc_id)
                stats.score_lookups += 1
                if current is not None:
                    combined = current + self.term_weight * sum(known.values())
                    stats.heap_offers += 1
                    heap.add(doc_id, combined)
                processed.add(doc_id)
            else:
                remain_list[doc_id] = known

        # Phase 2: merge short and long lists in chunk order (lines 10-34).
        if threshold is not None and not remain_list:
            threshold.open_gate()
        merged = merge_ranked_streams(streams)
        seen_terms: dict[int, dict[int, float]] = {}
        seen_short: dict[int, bool] = {}
        current_chunk: int | None = None
        sum_floors = sum(fancy_floors)
        for neg_chunk, doc_id, term_index, is_short, term_score in merged:
            chunk_id = -neg_chunk
            if chunk_id != current_chunk:
                if current_chunk is not None and self._termscore_can_stop(
                    chunk_id, heap, remain_list, fancy, fancy_floors, stats, sum_floors
                ):
                    stats.stopped_early = True
                    break
                if threshold is not None and not remain_list:
                    # _termscore_can_stop may have just pruned the remainList
                    # empty; from here on the combined bound is sound.
                    threshold.open_gate()
                current_chunk = chunk_id
                stats.chunks_scanned += 1
            if remain_list:
                remain_list.pop(doc_id, None)
                if threshold is not None and not remain_list:
                    threshold.open_gate()
            if doc_id in processed:
                continue
            found = seen_terms.setdefault(doc_id, {})
            found[term_index] = term_score
            seen_short[doc_id] = seen_short.get(doc_id, False) or is_short
            if len(found) < required:
                continue
            processed.add(doc_id)
            stats.candidates += 1
            self._process_termscore_candidate(doc_id, seen_short[doc_id], found, heap, stats)
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _process_termscore_candidate(self, doc_id: int, from_short: bool,
                                     found: dict[int, float], heap: ResultHeap,
                                     stats: QueryStats) -> None:
        if not from_short:
            entry = self._list_chunk.get(doc_id, default=None)
            if entry is not None and entry[1]:
                return
        current = self._live_score(doc_id)
        stats.score_lookups += 1
        if current is None:
            return
        combined = current + self.term_weight * sum(found.values())
        stats.heap_offers += 1
        heap.add(doc_id, combined)

    def _termscore_can_stop(self, next_chunk: int, heap: ResultHeap,
                            remain_list: dict[int, dict[int, float]],
                            fancy: list[dict[int, float]], fancy_floors: list[float],
                            stats: QueryStats, sum_floors: float) -> bool:
        """End-of-chunk pruning and stopping test (Algorithm 3, lines 26-34)."""
        assert self.chunk_map is not None
        if not heap.is_full:
            return False
        floor = heap.min_score()
        # Prune remainList entries whose combined upper bound cannot reach the heap.
        for doc_id in list(remain_list):
            known = remain_list[doc_id]
            svr = self._live_score(doc_id)
            stats.score_lookups += 1
            if svr is None:
                del remain_list[doc_id]
                continue
            term_bound = sum(
                known.get(index, fancy_floors[index]) for index in range(len(fancy))
            )
            if svr + self.term_weight * term_bound < floor:
                del remain_list[doc_id]
        if remain_list:
            return False
        svr_bound = self.chunk_map.lower_bound(next_chunk + 2)
        return floor >= svr_bound + self.term_weight * sum_floors
