"""The Score method (§4.2.2): score-ordered inverted lists maintained in place.

Each term's inverted list is kept in a clustered B+-tree ordered by decreasing
document score (key ``(term, -score, doc_id)``), which is the organisation
required by classic top-k algorithms: queries merge the lists in score order
and stop as soon as the top-k cannot change.

The price is update cost: when a document's score changes, its posting must be
re-keyed in the list of *every* distinct term the document contains — hundreds
to thousands of random B+-tree probes per update.  This is the behaviour the
paper measures as orders of magnitude slower than every other method (Figure 7).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats, _StagedDocument, _TermPlan
from repro.core.posting import build_rekey_operations
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.text.documents import Document, DocumentStore


class ScoreIndex(InvertedIndex):
    """The Score method: clustered score-ordered lists, updated on every score change."""

    method_name = "score"
    stores_term_scores = False
    #: Clustered B+-tree lists never go through the blocked layout, so there
    #: are no blocks to prune.
    prunes_blocks = False

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        # The clustered score lists live in a B+-tree, not heap-file payloads,
        # so the blocked codec (and its block-max skip step, seeking, and the
        # hot-term cache) does not apply; the flags are accepted for
        # constructor uniformity across methods.
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        # Key: (term, -score, doc_id) -> None.  Negating the score makes the
        # B+-tree's ascending key order correspond to descending score order.
        self._lists = self._create_kvstore(f"{name}.scorelists", key_shard="term")

    # -- build ---------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        for document in staged:
            for term in document.term_frequencies:
                self._lists.put((term, -document.score, document.doc_id), None)
                self.update_stats.long_list_postings_written += 1

    # -- size / cache ---------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        return self._lists.size_bytes()

    def drop_long_list_cache(self) -> None:
        # The enumeration is charged (accounted=True): establishing the
        # paper's cold cache walks the clustered list tree exactly like
        # BerkeleyDB would, and that walk is part of the modelled I/O the
        # experiments start from.  Under sharding each shard's pool drops its
        # own partition of the tree, with the same accounted walk.
        self._drop_store_pages(self._lists, accounted=True)

    # -- updates ----------------------------------------------------------------

    def _after_score_update(self, doc_id: int, old_score: float, new_score: float) -> None:
        if old_score == new_score:
            return
        for term in self._content_terms(doc_id):
            self._lists.delete_if_present((term, -old_score, doc_id))
            self._lists.put((term, -new_score, doc_id), None)
            self.update_stats.short_list_postings_written += 1
        self.update_stats.short_list_updates += 1

    def _after_score_batch(self, changes: list[tuple[int, float, float]]) -> None:
        """Re-key every touched posting through two sorted bulk passes.

        Updates are coalesced per document (first old score to final new
        score): the intermediate delete+insert pairs a sequential replay would
        perform cancel out, so the final clustered-list contents are identical
        while only the surviving keys are touched.  The sorted delete and
        insert batches then descend the list tree once per leaf run instead of
        once per posting — the per-update tree-probe storm Figure 7 measures
        becomes a pair of near-sequential passes.
        """
        terms_of: dict[int, set[str]] = {}

        def cached_terms(doc_id: int) -> set[str]:
            terms = terms_of.get(doc_id)
            if terms is None:
                terms = terms_of[doc_id] = self._content_terms(doc_id)
            return terms

        first_old: dict[int, float] = {}
        final: dict[int, float] = {}
        for doc_id, old_score, new_score in changes:
            first_old.setdefault(doc_id, old_score)
            final[doc_id] = new_score
            # Stats count the *logical* per-update work, exactly as the
            # sequential loop would, so the two modes report identically even
            # though coalescing writes fewer physical postings.
            if old_score != new_score:
                self.update_stats.short_list_postings_written += len(cached_terms(doc_id))
                self.update_stats.short_list_updates += 1
        coalesced = [
            (doc_id, first_old[doc_id], new_score)
            for doc_id, new_score in final.items()
        ]
        deletes, inserts = build_rekey_operations(coalesced, cached_terms)
        self._lists.delete_many(deletes, ignore_missing=True)
        self._lists.put_many((key, None) for key in inserts)

    def _after_insert(self, doc_id: int, score: float) -> None:
        keys = sorted((term, -score, doc_id) for term in self._content_terms(doc_id))
        self._lists.put_many((key, None) for key in keys)
        self.update_stats.long_list_postings_written += len(keys)

    def _after_delete(self, doc_id: int) -> None:
        # Deletions only flag the document; stale postings are filtered at
        # query time via the deleted table, mirroring Appendix A.2.
        return

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        score = self.score_table.get(doc_id)
        removed = sorted(
            (term, -score, doc_id)
            for term in old_document.distinct_terms - new_document.distinct_terms
        )
        added = sorted(
            (term, -score, doc_id)
            for term in new_document.distinct_terms - old_document.distinct_terms
        )
        self._lists.delete_many(removed, ignore_missing=True)
        self._lists.put_many((key, None) for key in added)
        self.update_stats.long_list_postings_written += len(added)

    # -- query --------------------------------------------------------------------

    def _make_term_plan(self, term: str) -> _TermPlan:
        def build(index: int, stats: QueryStats, threshold) -> Iterator[tuple[float, int, int]]:
            del threshold  # clustered lists hold exact scores; the merge's own
            # score-order early termination already stops at the optimal point.
            return self._stream_list(term, index, stats)

        return _TermPlan(term, build)

    def _stream_list(self, term: str, index: int,
                     stats: QueryStats) -> Iterator[tuple[float, int, int]]:
        for (_term, neg_score, doc_id), _ in self._lists.prefix_items((term,)):
            stats.postings_scanned += 1
            yield neg_score, doc_id, index

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        del threshold
        required = len(terms) if conjunctive else 1
        heap = ResultHeap(k)
        merged = merge_ranked_streams(streams)
        current: tuple[float, int] | None = None
        seen: set[int] = set()
        stopped = False
        for neg_score, doc_id, index in merged:
            key = (neg_score, doc_id)
            if key != current:
                if current is not None:
                    self._emit_candidate(current, seen, required, heap, stats)
                current = key
                seen = set()
                # Early termination: every later posting has a strictly lower
                # score than the current heap floor, so the top-k is final.
                if heap.is_full and -neg_score < heap.min_score():
                    stats.stopped_early = True
                    stopped = True
                    current = None
                    break
            seen.add(index)
        if not stopped and current is not None:
            self._emit_candidate(current, seen, required, heap, stats)
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _emit_candidate(self, key: tuple[float, int], seen: set[int], required: int,
                        heap: ResultHeap, stats: QueryStats) -> None:
        neg_score, doc_id = key
        if len(seen) < required:
            return
        stats.candidates += 1
        if self.deleted_table.contains(doc_id):
            return
        stats.heap_offers += 1
        heap.add(doc_id, -neg_score)
