"""Chunk-boundary strategies for the Chunk method (§4.3.2).

The Chunk method partitions the document collection into chunks by *original*
score: documents in higher chunks had higher scores at build time.  The paper
experimented with equal-sized and exponentially growing/shrinking chunks and
settled on score-ratio boundaries — adjacent chunks' lowest scores differ by a
constant factor (the *chunk ratio*), with a minimum number of documents per
chunk to survive very skewed score distributions.

All strategies produce a :class:`ChunkMap`, which assigns a chunk id to any
score (including scores produced by later updates) and exposes the chunk lower
bounds the query algorithm's stopping rule needs.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvertedIndexError


@dataclass(frozen=True)
class ChunkMap:
    """Assignment of scores to chunk ids.

    Chunk ids are 1-based and increase with score: chunk ``i`` covers scores in
    ``[lower_bounds[i-1], lower_bounds[i])`` and the top chunk is unbounded
    above.  ``lower_bounds[0]`` is always 0.0 so that every non-negative score
    (including scores that later decrease) maps to a chunk.
    """

    lower_bounds: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.lower_bounds:
            raise InvertedIndexError("a chunk map needs at least one chunk")
        if self.lower_bounds[0] != 0.0:
            raise InvertedIndexError("the first chunk's lower bound must be 0.0")
        if list(self.lower_bounds) != sorted(set(self.lower_bounds)):
            raise InvertedIndexError("chunk lower bounds must be strictly increasing")

    @property
    def num_chunks(self) -> int:
        """Number of chunks."""
        return len(self.lower_bounds)

    def chunk_of(self, score: float) -> int:
        """Chunk id (1-based) of a score."""
        if score < 0:
            raise InvertedIndexError(f"scores must be non-negative, got {score}")
        return bisect.bisect_right(self.lower_bounds, score)

    def lower_bound(self, chunk_id: int) -> float:
        """Lowest score belonging to ``chunk_id``.

        For chunk ids above the top chunk the bound is ``+inf`` — used by the
        query stopping rule, which can never terminate at the very top of the
        collection because scores there are unbounded.
        """
        if chunk_id < 1:
            raise InvertedIndexError(f"chunk ids are 1-based, got {chunk_id}")
        if chunk_id > self.num_chunks:
            return math.inf
        return self.lower_bounds[chunk_id - 1]

    def chunk_sizes(self, scores: Sequence[float]) -> dict[int, int]:
        """Histogram of chunk occupancy for a score population (diagnostics)."""
        sizes: dict[int, int] = {}
        for score in scores:
            chunk = self.chunk_of(score)
            sizes[chunk] = sizes.get(chunk, 0) + 1
        return sizes


def ratio_chunks(scores: Sequence[float], ratio: float,
                 min_chunk_size: int = 100) -> ChunkMap:
    """The paper's recommended strategy: geometric score boundaries.

    Boundaries are placed so that the lowest score of chunk ``i+1`` is ``ratio``
    times the lowest score of chunk ``i``, starting from the smallest positive
    score in the collection; chunks holding fewer than ``min_chunk_size``
    documents are merged into the chunk below.

    Parameters
    ----------
    scores:
        The original (build-time) document scores.
    ratio:
        Chunk ratio (> 1).  Larger ratios mean fewer, larger chunks — cheaper
        updates and more expensive queries (Table 2).
    min_chunk_size:
        Minimum number of documents per chunk (the paper uses 100).
    """
    if ratio <= 1.0:
        raise InvertedIndexError(f"chunk ratio must be greater than 1, got {ratio}")
    if min_chunk_size < 1:
        raise InvertedIndexError(f"min_chunk_size must be positive, got {min_chunk_size}")
    if not scores:
        return ChunkMap(lower_bounds=(0.0,))
    positive = sorted(score for score in scores if score > 0)
    if not positive:
        return ChunkMap(lower_bounds=(0.0,))
    maximum = positive[-1]
    base = positive[0]
    boundaries = [0.0]
    boundary = base * ratio
    while boundary <= maximum:
        boundaries.append(boundary)
        next_boundary = boundary * ratio
        if next_boundary <= boundary:
            # Float rounding can stall the geometric progression (a subnormal
            # base times a small ratio rounds back to itself); without this
            # guard the loop would never terminate.
            break
        boundary = next_boundary
    return _enforce_min_size(boundaries, sorted(scores), min_chunk_size)


def equal_count_chunks(scores: Sequence[float], num_chunks: int) -> ChunkMap:
    """Ablation strategy: chunks with (approximately) equal document counts."""
    if num_chunks < 1:
        raise InvertedIndexError(f"num_chunks must be positive, got {num_chunks}")
    ordered = sorted(scores)
    if not ordered or num_chunks == 1:
        return ChunkMap(lower_bounds=(0.0,))
    boundaries = [0.0]
    step = len(ordered) / num_chunks
    for index in range(1, num_chunks):
        boundary = ordered[min(int(index * step), len(ordered) - 1)]
        if boundary > boundaries[-1]:
            boundaries.append(boundary)
    return ChunkMap(lower_bounds=tuple(boundaries))


def exponential_count_chunks(scores: Sequence[float], num_chunks: int,
                             growth: float = 2.0) -> ChunkMap:
    """Ablation strategy: chunk document counts growing geometrically downwards.

    The top chunk is the smallest (so queries over the best documents touch few
    postings) and each lower chunk holds ``growth`` times more documents.
    """
    if num_chunks < 1:
        raise InvertedIndexError(f"num_chunks must be positive, got {num_chunks}")
    if growth <= 0:
        raise InvertedIndexError(f"growth must be positive, got {growth}")
    ordered = sorted(scores)
    if not ordered or num_chunks == 1:
        return ChunkMap(lower_bounds=(0.0,))
    # weights[0] belongs to the bottom chunk and must be the largest so that
    # chunk sizes shrink towards the top of the score range.
    weights = [growth ** (num_chunks - 1 - index) for index in range(num_chunks)]
    total_weight = sum(weights)
    counts = [max(1, round(len(ordered) * weight / total_weight)) for weight in weights]
    boundaries = [0.0]
    position = 0
    # counts[0] is the bottom (largest) chunk; walk from the bottom upwards.
    for count in counts[:-1]:
        position += count
        if position >= len(ordered):
            break
        boundary = ordered[position]
        if boundary > boundaries[-1]:
            boundaries.append(boundary)
    return ChunkMap(lower_bounds=tuple(boundaries))


def _enforce_min_size(boundaries: list[float], ordered_scores: list[float],
                      min_chunk_size: int) -> ChunkMap:
    """Drop boundaries until every chunk holds at least ``min_chunk_size`` docs.

    Underfull chunks are merged downwards (their lower boundary is removed),
    which matches the paper's intent of avoiding tiny chunks under skew.
    """
    def occupancy(bounds: list[float]) -> list[int]:
        counts = [0] * len(bounds)
        for score in ordered_scores:
            counts[bisect.bisect_right(bounds, score) - 1] += 1
        return counts

    bounds = list(boundaries)
    while len(bounds) > 1:
        counts = occupancy(bounds)
        underfull = [
            index for index, count in enumerate(counts) if count < min_chunk_size
        ]
        if not underfull:
            break
        # Remove the lower boundary of the highest underfull chunk, merging it
        # into the chunk below.  Index 0's lower bound (0.0) can never be
        # removed, so merge chunk 0 upwards by removing the boundary above it.
        target = underfull[-1]
        if target == 0:
            bounds.pop(1)
        else:
            bounds.pop(target)
    return ChunkMap(lower_bounds=tuple(bounds))
