"""The Chunk method (§4.3.2) — the paper's recommended index.

The document collection is partitioned into chunks by original score (see
:mod:`repro.core.indexes.chunking`).  Each term's long list stores postings
grouped by decreasing chunk id and, within a chunk, by increasing document id;
scores are *not* stored in the list (only the chunk id appears, once per
chunk), so the long lists stay as small as the ID method's.

Score updates touch the short lists only when a document's new score moves it
up by **more than one chunk** (``thresholdValueOf(cid) = cid + 1``), which
makes most updates a single Score-table write.  Queries scan chunks from the
top downwards, merging short and long lists, and stop one chunk after the
top-k results can no longer change — the chunk-granularity analogue of the
Score-Threshold stopping rule.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Sequence

from repro.errors import InvertedIndexError
from repro.core.indexes.base import InvertedIndex, QueryResult, QueryStats, _StagedDocument, _TermPlan
from repro.core.indexes.chunking import ChunkMap, ratio_chunks
from repro.core.posting import (
    LazyBytesReader,
    build_chunk_runs,
    encode_blocked_chunk_runs,
    encode_chunk_runs,
    iter_blocked_chunk_postings_lazy,
    iter_chunk_postings_lazy,
)
from repro.core.result_heap import HeapThreshold, ResultHeap, merge_ranked_streams
from repro.storage.environment import StorageEnvironment
from repro.storage.heap_file import SegmentHandle
from repro.text.documents import Document, DocumentStore

_ADD = "ADD"
_REM = "REM"

#: A chunk-boundary strategy: maps the build-time scores to a ChunkMap.
ChunkStrategy = Callable[[Sequence[float]], ChunkMap]


class ChunkIndex(InvertedIndex):
    """The Chunk method.

    Parameters
    ----------
    chunk_ratio:
        Ratio between adjacent chunks' lowest scores (Table 2's tuning knob).
    min_chunk_size:
        Minimum number of documents per chunk (the paper uses 100).
    chunk_strategy:
        Optional override of the boundary strategy; receives the build-time
        scores and returns a :class:`ChunkMap`.  When provided, ``chunk_ratio``
        and ``min_chunk_size`` are ignored.
    """

    method_name = "chunk"
    stores_term_scores = False

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", chunk_ratio: float = 6.12,
                 min_chunk_size: int = 100,
                 chunk_strategy: ChunkStrategy | None = None,
                 blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        if chunk_strategy is None and chunk_ratio <= 1.0:
            raise InvertedIndexError(f"chunk_ratio must be greater than 1, got {chunk_ratio}")
        self.chunk_ratio = float(chunk_ratio)
        self.min_chunk_size = int(min_chunk_size)
        self._chunk_strategy = chunk_strategy
        self.chunk_map: ChunkMap | None = None
        self._long_lists = self._create_heapfile(f"{name}.long")
        self._segments: dict[str, SegmentHandle] = {}
        # Short list key: (term, -chunk_id, doc_id) -> (operation, term_score).
        self._short = self._create_kvstore(f"{name}.short", key_shard="term")
        # ListChunk table: doc_id -> (list_chunk, in_short_list).
        self._list_chunk = self._create_kvstore(f"{name}.listchunk", key_shard="doc")

    # -- threshold --------------------------------------------------------------

    @staticmethod
    def threshold_value_of(chunk_id: int) -> int:
        """``thresholdValueOf(cid) = cid + 1``: postings move to the short list only
        when the new score climbs more than one chunk above the list chunk."""
        return chunk_id + 1

    # -- build -------------------------------------------------------------------

    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        scores = [document.score for document in staged]
        if self._chunk_strategy is not None:
            self.chunk_map = self._chunk_strategy(scores)
        else:
            self.chunk_map = ratio_chunks(
                scores, ratio=self.chunk_ratio, min_chunk_size=self.min_chunk_size
            )
        term_docs: dict[str, list[tuple[int, int, float]]] = {}
        for document in staged:
            chunk_id = self.chunk_map.chunk_of(document.score)
            for term in document.term_frequencies:
                term_docs.setdefault(term, []).append(
                    (document.doc_id, chunk_id, self._build_term_score(document.doc_id, term))
                )
        for term, entries in term_docs.items():
            runs = build_chunk_runs(entries)
            if self.blocked_postings:
                payload = encode_blocked_chunk_runs(
                    runs, with_term_scores=self.stores_term_scores
                )
            else:
                payload = encode_chunk_runs(
                    runs, with_term_scores=self.stores_term_scores
                )
            self._segments[term] = self._long_lists.write(payload, key=term)
            self.update_stats.long_list_postings_written += len(entries)

    def _build_term_score(self, doc_id: int, term: str) -> float:
        """Per-posting term score (0.0 for the plain Chunk method)."""
        del doc_id, term
        return 0.0

    # -- size / cache ---------------------------------------------------------------

    def long_list_size_bytes(self) -> int:
        return self._long_lists.total_bytes()

    def short_list_size_bytes(self) -> int:
        return self._short.size_bytes()

    def drop_long_list_cache(self) -> None:
        self._long_lists.drop_from_cache()

    # -- score updates (Algorithm 1 with chunks) ----------------------------------------

    def _after_score_update(self, doc_id: int, old_score: float, new_score: float) -> None:
        assert self.chunk_map is not None
        new_chunk = self.chunk_map.chunk_of(new_score)
        entry = self._list_chunk.get(doc_id, default=None)
        if entry is not None:
            list_chunk, in_short_list = entry
        else:
            list_chunk = self.chunk_map.chunk_of(old_score)
            in_short_list = False
            self._list_chunk.put(doc_id, (list_chunk, False))
        if new_chunk <= self.threshold_value_of(list_chunk):
            return
        for term in self._content_terms(doc_id):
            if in_short_list:
                self._short.delete_if_present((term, -list_chunk, doc_id))
            self._short.put(
                (term, -new_chunk, doc_id), (_ADD, self._current_term_score(doc_id, term))
            )
            self.update_stats.short_list_postings_written += 1
        self._list_chunk.put(doc_id, (new_chunk, True))
        self.update_stats.short_list_updates += 1

    def _after_score_batch(self, changes: list[tuple[int, float, float]]) -> None:
        """Replay the chunk-threshold decisions in order, flush writes in bulk.

        The list state is the chunk id of the score; see
        :meth:`InvertedIndex._batch_promote_short_lists` for the shared
        overlay-replay algorithm.  Chunk-TermScore inherits this unchanged
        (its per-posting term score comes through :meth:`_current_term_score`).
        """
        assert self.chunk_map is not None
        self._batch_promote_short_lists(
            changes, self._list_chunk, self._short,
            state_of=self.chunk_map.chunk_of,
            payload_of=lambda doc_id, term: (
                _ADD, self._current_term_score(doc_id, term)
            ),
        )

    def _current_term_score(self, doc_id: int, term: str) -> float:
        """Term score stored with short-list postings (0.0 for the plain Chunk method)."""
        del doc_id, term
        return 0.0

    # -- document changes (Appendix A) ----------------------------------------------------

    def _after_insert(self, doc_id: int, score: float) -> None:
        assert self.chunk_map is not None
        chunk_id = self.chunk_map.chunk_of(score)
        entries = sorted(
            ((term, -chunk_id, doc_id), (_ADD, self._current_term_score(doc_id, term)))
            for term in self._content_terms(doc_id)
        )
        self._short.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)
        self._list_chunk.put(doc_id, (chunk_id, True))

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        assert self.chunk_map is not None
        entry = self._list_chunk.get(doc_id, default=None)
        if entry is not None:
            list_chunk = entry[0]
        else:
            list_chunk = self.chunk_map.chunk_of(self.score_table.get(doc_id))
        added = new_document.distinct_terms - old_document.distinct_terms
        removed = old_document.distinct_terms - new_document.distinct_terms
        entries = sorted(
            [((term, -list_chunk, doc_id),
              (_ADD, self._current_term_score(doc_id, term))) for term in added]
            + [((term, -list_chunk, doc_id), (_REM, 0.0)) for term in removed]
        )
        self._short.put_many(entries)
        self.update_stats.short_list_postings_written += len(entries)

    # -- query (Algorithm 2 with chunks) ----------------------------------------------------

    def _make_term_plan(self, term: str) -> _TermPlan:
        return _TermPlan(
            term,
            lambda index, stats, threshold:
                self._term_stream(index, term, stats, threshold),
        )

    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        assert self.chunk_map is not None
        required = len(terms) if conjunctive else 1
        heap = ResultHeap(k, threshold=threshold)
        merged = merge_ranked_streams(streams)
        seen_terms: dict[int, set[int]] = {}
        seen_short: dict[int, bool] = {}
        processed: set[int] = set()
        current_chunk: int | None = None
        for neg_chunk, doc_id, term_index, is_short, _term_score in merged:
            chunk_id = -neg_chunk
            if chunk_id != current_chunk:
                # Crossing into a lower chunk: the previous chunk is complete, so
                # apply the end-of-chunk stopping rule before going on.
                if current_chunk is not None and self._can_stop(chunk_id, heap):
                    stats.stopped_early = True
                    break
                current_chunk = chunk_id
                stats.chunks_scanned += 1
            if doc_id in processed:
                continue
            terms_seen = seen_terms.setdefault(doc_id, set())
            terms_seen.add(term_index)
            seen_short[doc_id] = seen_short.get(doc_id, False) or is_short
            if len(terms_seen) < required:
                continue
            processed.add(doc_id)
            stats.candidates += 1
            self._process_candidate(doc_id, seen_short[doc_id], heap, stats)
        return [QueryResult(entry.doc_id, entry.score) for entry in heap.results()]

    def _can_stop(self, next_chunk: int, heap: ResultHeap) -> bool:
        """End-of-chunk stopping rule.

        Every document not yet fully seen has its postings in chunk
        ``next_chunk`` or below, so its *latest* score is below the lower bound
        of chunk ``next_chunk + 2`` (it could have silently climbed at most one
        chunk without entering the short lists).  Once the heap holds k results
        at or above that bound, no remaining document can displace them.
        """
        assert self.chunk_map is not None
        if not heap.is_full:
            return False
        bound = self.chunk_map.lower_bound(next_chunk + 2)
        return heap.min_score() >= bound

    def _process_candidate(self, doc_id: int, from_short: bool, heap: ResultHeap,
                           stats: QueryStats) -> None:
        if not from_short:
            entry = self._list_chunk.get(doc_id, default=None)
            if entry is not None and entry[1]:
                # Short-list postings exist; the long-list occurrence is ignored.
                return
        current = self._live_score(doc_id)
        stats.score_lookups += 1
        if current is None:
            return
        stats.heap_offers += 1
        heap.add(doc_id, current)

    # -- per-term streams ------------------------------------------------------------------

    def _term_stream(self, term_index: int, term: str, stats: QueryStats,
                     threshold: "HeapThreshold | None" = None,
                     ) -> Iterator[tuple[int, int, int, bool, float]]:
        """One term's short + long postings in (decreasing chunk, increasing doc id) order.

        Yields ``(-chunk_id, doc_id, term_index, is_short, term_score)``.
        """
        short_adds, removed = self._load_short(term)
        long_postings = self._iter_long(term, stats, threshold)

        def short_iter() -> Iterator[tuple[int, int, int, bool, float]]:
            for chunk_id, doc_id, term_score in short_adds:
                stats.postings_scanned += 1
                yield -chunk_id, doc_id, term_index, True, term_score

        def long_iter() -> Iterator[tuple[int, int, int, bool, float]]:
            for chunk_id, doc_id, term_score in long_postings:
                if doc_id in removed:
                    continue
                yield -chunk_id, doc_id, term_index, False, term_score

        return heapq.merge(short_iter(), long_iter())

    def _iter_long(self, term: str, stats: QueryStats,
                   threshold: "HeapThreshold | None" = None,
                   ) -> "Iterator[tuple[int, int, float]]":
        """Stream ``(chunk_id, doc_id, term_score)`` triples from the long list.

        With the blocked codec and a live threshold, the scan applies the
        block-max skip step: a block whose highest chunk id ``cid`` satisfies
        ``lower_bound(cid + 2) <= floor`` cannot hold a document able to enter
        the top-k (the end-of-chunk stopping rule of :meth:`_can_stop` applied
        per block — a document in chunk ``cid`` or below can have climbed at
        most one chunk without owning short-list postings), and neither can any
        later block, so the stream ends without fetching their pages.
        """
        handle = self._segments.get(term)
        if handle is None:
            return
        if self.blocked_postings:
            cached = self._cached_long_postings(
                self._long_lists, handle, term, iter_blocked_chunk_postings_lazy
            )
            if cached is not None:
                # Served from memory: no pages to save, so the block-max skip
                # step is moot — the merge still stops pulling at its own
                # stopping rule (the stream stays lazy).
                for posting in cached:
                    stats.postings_scanned += 1
                    yield posting
                return
        reader = LazyBytesReader(self._long_lists.iter_pages(handle))
        if self.blocked_postings:
            prune = None
            on_skip = None
            if threshold is not None and self.chunk_map is not None:
                chunk_map = self.chunk_map

                def prune(block, threshold=threshold, chunk_map=chunk_map):
                    return chunk_map.lower_bound(int(block.bound) + 2) <= threshold.floor

                def on_skip(skipped, block, stats=stats, term=term,
                            threshold=threshold, chunk_map=chunk_map):
                    stats.blocks_skipped += skipped
                    events = stats.skip_events
                    if events is not None:
                        events.append({
                            "term": term, "kind": "prune", "blocks": skipped,
                            "floor": threshold.floor,
                            "bound": chunk_map.lower_bound(int(block.bound) + 2),
                        })

            postings = iter_blocked_chunk_postings_lazy(reader, prune=prune,
                                                        on_skip=on_skip)
        else:
            postings = iter_chunk_postings_lazy(reader)
        for posting in self._tag_scan_errors(handle, postings):
            stats.postings_scanned += 1
            yield posting

    def _load_short(self, term: str) -> tuple[list[tuple[int, int, float]], set[int]]:
        """One term's short list: (chunk_id, doc_id, term_score) adds plus removed ids."""
        adds: list[tuple[int, int, float]] = []
        removed: set[int] = set()
        for (_term, neg_chunk, doc_id), (operation, term_score) in self._short.prefix_items((term,)):
            if operation == _ADD:
                adds.append((-neg_chunk, doc_id, term_score))
            else:
                removed.add(doc_id)
        adds.sort(key=lambda entry: (-entry[0], entry[1]))
        return adds, removed
