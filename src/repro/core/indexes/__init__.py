"""The inverted-list index family (§4 of the paper).

Six index methods are provided, all sharing the :class:`~repro.core.indexes.base.InvertedIndex`
interface:

* :class:`~repro.core.indexes.id_method.IDIndex` — §4.2.1, the traditional
  ID-ordered inverted list (fast updates, full-scan queries).
* :class:`~repro.core.indexes.score_method.ScoreIndex` — §4.2.2, score-ordered
  lists maintained in place (fast queries, very slow score updates).
* :class:`~repro.core.indexes.score_threshold.ScoreThresholdIndex` — §4.3.1,
  stale score-ordered long lists plus threshold-gated short lists.
* :class:`~repro.core.indexes.chunk.ChunkIndex` — §4.3.2, chunked ID-ordered
  lists plus chunk-gated short lists (the paper's recommended method).
* :class:`~repro.core.indexes.id_termscore.IDTermScoreIndex` — §5.2, the ID
  method extended with per-posting term scores (combined-scoring baseline).
* :class:`~repro.core.indexes.chunk_termscore.ChunkTermScoreIndex` — §4.3.3,
  the Chunk method extended with term scores and fancy lists (Algorithm 3).
"""

from repro.core.indexes.base import InvertedIndex, QueryResponse, QueryResult, QueryStats
from repro.core.indexes.chunk import ChunkIndex
from repro.core.indexes.chunk_termscore import ChunkTermScoreIndex
from repro.core.indexes.id_method import IDIndex
from repro.core.indexes.id_termscore import IDTermScoreIndex
from repro.core.indexes.registry import available_methods, create_index
from repro.core.indexes.score_method import ScoreIndex
from repro.core.indexes.score_threshold import ScoreThresholdIndex

__all__ = [
    "InvertedIndex",
    "QueryResult",
    "QueryResponse",
    "QueryStats",
    "IDIndex",
    "ScoreIndex",
    "ScoreThresholdIndex",
    "ChunkIndex",
    "IDTermScoreIndex",
    "ChunkTermScoreIndex",
    "create_index",
    "available_methods",
]
