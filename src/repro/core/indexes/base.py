"""Common interface and plumbing for the inverted-list index family.

Every index method shares the same operational contract (§4.1):

* **bulk build** — documents are staged with their initial SVR scores and
  :meth:`InvertedIndex.finalize` constructs the immutable long inverted lists;
* **score updates** — :meth:`InvertedIndex.update_score` must keep queries
  correct with respect to the *latest* scores;
* **top-k queries** — :meth:`InvertedIndex.query` evaluates conjunctive or
  disjunctive keyword queries and returns the top-k documents by current score;
* **incremental content changes** — document insertion, deletion and content
  update (Appendix A).

The base class owns the structures every method shares: the Score table
(document id -> current score, kept in a B+-tree exactly like the paper's
Score table), the deleted-document flags, and the forward-index access needed
by the update algorithms (``Content(id)`` in Algorithm 1).
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import (
    DocumentNotFoundError,
    InvertedIndexError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.core.list_cache import InvertedListCache, list_cache_pages_from_environ
from repro.core.posting import (
    LazyBytesReader,
    block_seeking_enabled,
    blocked_postings_enabled,
    peek_blocked_directory,
    read_blocked_total,
)
from repro.core.result_heap import HeapThreshold
from repro.obs.trace import span
from repro.storage.environment import StorageEnvironment
from repro.storage.sharding import ShardedEnvironment, ShardedKVStore
from repro.text.documents import Document, DocumentStore


@dataclass(frozen=True)
class QueryResult:
    """One ranked query result: a document id and its (latest) score."""

    doc_id: int
    score: float


@dataclass
class QueryStats:
    """Work counters collected while evaluating a single query.

    ``pages_read`` / ``pool_hits`` are filled in from the storage environment
    by :meth:`InvertedIndex.query`; the remaining counters are maintained by
    the per-method query algorithms.
    """

    postings_scanned: int = 0
    candidates: int = 0
    score_lookups: int = 0
    heap_offers: int = 0
    chunks_scanned: int = 0
    #: Long-list blocks whose pages were never fetched because their block-max
    #: bound could not beat the result heap's published threshold.
    blocks_skipped: int = 0
    stopped_early: bool = False
    pages_read: int = 0
    page_writes: int = 0
    pool_hits: int = 0
    estimated_io_ms: float = 0.0
    #: Partial-failure reporting (router quarantine): ``degraded`` marks a
    #: result computed without one or more quarantined shards, and
    #: ``terms_skipped`` counts the query terms whose lists were unreachable.
    degraded: bool = False
    terms_skipped: int = 0
    #: EXPLAIN ANALYZE's skip-decision journal: ``None`` (the default) keeps
    #: the hot path allocation-free; armed by :func:`capture_query_analysis`,
    #: each prune/seek skip appends one dict recording the term, the number
    #: of blocks skipped, the heap floor at the decision and the pruned
    #: block's bound.
    skip_events: "list[dict] | None" = None


_ANALYSIS = threading.local()


def query_analysis_armed() -> bool:
    """Whether the calling thread is inside :func:`capture_query_analysis`."""
    return getattr(_ANALYSIS, "armed", False)


@contextmanager
def capture_query_analysis():
    """Arm per-query skip-decision capture on the calling thread.

    EXPLAIN ANALYZE wraps the real query with this: every
    :class:`QueryStats` created while armed gets an empty ``skip_events``
    list, and the scan closures append one record per skip decision.  The
    journal is observational only — arming changes no storage access, no
    pruning decision and no answer, which is what keeps ANALYZE answers
    bit-identical to plain queries.
    """
    previous = getattr(_ANALYSIS, "armed", False)
    _ANALYSIS.armed = True
    try:
        yield
    finally:
        _ANALYSIS.armed = previous


@dataclass(frozen=True)
class QueryResponse:
    """Results plus the statistics of the query evaluation that produced them."""

    results: tuple[QueryResult, ...]
    stats: QueryStats

    def doc_ids(self) -> list[int]:
        """Result document ids, best first."""
        return [result.doc_id for result in self.results]


@dataclass
class UpdateStats:
    """Work counters accumulated across score updates and document changes."""

    score_updates: int = 0
    short_list_postings_written: int = 0
    short_list_updates: int = 0
    long_list_postings_written: int = 0
    documents_inserted: int = 0
    documents_deleted: int = 0
    content_updates: int = 0


@dataclass
class _StagedDocument:
    """A document waiting for :meth:`InvertedIndex.finalize`."""

    doc_id: int
    score: float
    term_frequencies: Mapping[str, int] = field(default_factory=dict)


class _TermPlan:
    """One term's reusable scan-plan object.

    Built once per ``(index, term)`` by :meth:`InvertedIndex._make_term_plan`
    and cached on the index.  The plan closes over nothing but the index and
    the term, so it never goes stale — all storage access happens inside the
    stream it constructs.  Invoking the plan with the query-specific inputs
    (term position, stats sink, shared pruning threshold) builds a fresh scan
    iterator for that query.
    """

    __slots__ = ("term", "_build")

    def __init__(self, term: str, build) -> None:
        self.term = term
        self._build = build

    def __call__(self, term_index: int, stats: "QueryStats",
                 threshold: "HeapThreshold | None"):
        return self._build(term_index, stats, threshold)


class InvertedIndex(abc.ABC):
    """Abstract base class of all index methods.

    Parameters
    ----------
    env:
        Storage environment holding the Score table, short lists and long
        lists.  A plain :class:`StorageEnvironment` gives the paper's
        single-pool layout; a :class:`ShardedEnvironment` partitions the term
        space, in which case every per-term store routes its keys through the
        environment's shard resolver (and the degenerate shard count 1 is
        fingerprint-identical to the plain layout).
    documents:
        Forward index.  Documents must be added to it before (or while) they
        are staged into the index; the update algorithms read ``Content(id)``
        from it.
    name:
        Index name, used to derive store names inside the environment.
    blocked_postings:
        Whether long lists are written with the blocked codec (per-block skip
        metadata + CRC; see :mod:`repro.core.posting`).  ``None`` (default)
        resolves the process-wide :func:`blocked_postings_enabled` flag —
        ``REPRO_BLOCKED_POSTINGS=0`` is the fidelity off-switch that keeps the
        seed's legacy payloads and I/O fingerprints bit-identical.
    block_max_pruning:
        Whether query scans may skip whole blocks whose max-score bound cannot
        beat the result-heap threshold.  Only effective with the blocked
        codec; the pruning-equivalence tests turn it off to compare against
        the unpruned scan over the *same* payloads.
    block_seeking:
        Whether conjunctive queries over the blocked ID layout may *jump*
        scans to the first viable block using the directory's ``last_doc_id``
        entries (DAAT ``next_geq`` cursors) instead of merging every posting.
        ``None`` resolves :func:`block_seeking_enabled`
        (``REPRO_BLOCK_SEEKING``, default off): seeking preserves the top-k
        but changes which pages a scan touches, so the pinned fig7/fig10
        fingerprints keep it off.
    list_cache_pages:
        Byte budget of the hot-term decoded-postings cache, expressed in
        pages (see :mod:`repro.core.list_cache`).  ``None`` resolves
        ``REPRO_LIST_CACHE_PAGES``; ``0`` disables the cache.  The router's
        build path carves this out of ``cache_pages`` so total memory stays
        comparable across configurations.
    """

    #: Registry name of the method; subclasses override.
    method_name = "abstract"
    #: Whether long-list postings carry a per-term score.
    stores_term_scores = False
    #: Whether this method's scan plans consult the shared
    #: :class:`HeapThreshold` to skip blocks (EXPLAIN's pruning-eligibility
    #: bit).  The ID family accepts the threshold but has no sound per-block
    #: score bound to prune on; it overrides this to ``False``.
    prunes_blocks = True

    def __init__(self, env: "StorageEnvironment | ShardedEnvironment",
                 documents: DocumentStore, name: str = "svr",
                 blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        self.env = env
        self.documents = documents
        self.name = name
        self.blocked_postings = (
            blocked_postings_enabled() if blocked_postings is None
            else bool(blocked_postings)
        )
        self.block_max_pruning = bool(block_max_pruning)
        self.block_seeking = (
            block_seeking_enabled() if block_seeking is None
            else bool(block_seeking)
        )
        self.list_cache = self._make_list_cache(list_cache_pages)
        self._plan_cache: "dict[str, _TermPlan]" = {}
        self.score_table = self._create_kvstore(f"{name}.score", key_shard="doc")
        self.deleted_table = self._create_kvstore(f"{name}.deleted", key_shard="doc")
        self.update_stats = UpdateStats()
        self._staged: list[_StagedDocument] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Store creation (shard-aware)
    # ------------------------------------------------------------------

    def _create_kvstore(self, name: str, key_shard: str):
        """Create a kv store, routed by ``key_shard`` when the env is sharded.

        ``key_shard`` is ``"term"`` for stores keyed by ``(term, ...)`` tuples
        (short lists, delta lists, clustered score lists, fancy lists) and
        ``"doc"`` for stores keyed by document id (Score, deleted,
        ListScore/ListChunk bookkeeping).

        On an environment rebuilt by crash recovery the store already exists
        (restored from the durability catalog); the index attaches to it
        instead of creating a fresh one.
        """
        if getattr(self.env, "recovered", False):
            try:
                return self.env.kvstore(name)
            except StorageError:
                pass
        if isinstance(self.env, ShardedEnvironment):
            return self.env.create_kvstore(name, key_shard=key_shard)
        return self.env.create_kvstore(name)

    def _create_heapfile(self, name: str, key_shard: str = "term"):
        """Create a heap file, with per-term segment routing when sharded.

        Attaches to the restored heap file on a recovered environment, like
        :meth:`_create_kvstore`.
        """
        if getattr(self.env, "recovered", False):
            try:
                return self.env.heapfile(name)
            except StorageError:
                pass
        if isinstance(self.env, ShardedEnvironment):
            return self.env.create_heapfile(name, key_shard=key_shard)
        return self.env.create_heapfile(name)

    def _drop_store_pages(self, store, accounted: bool = False) -> None:
        """Evict a kv store's pages from whichever pool(s) hold them."""
        if isinstance(store, ShardedKVStore):
            store.drop_from_cache(accounted=accounted)
        else:
            self.env.pool.drop(store.page_ids(accounted=accounted))

    # ------------------------------------------------------------------
    # Hot-term list cache + directory-served planner estimates
    # ------------------------------------------------------------------

    def _make_list_cache(self, list_cache_pages: "int | None") -> "InvertedListCache | None":
        pages = (list_cache_pages_from_environ() if list_cache_pages is None
                 else int(list_cache_pages))
        if pages <= 0:
            return None
        page_size = getattr(self.env, "page_size", None)
        if page_size is None:
            page_size = self.env.disk.page_size
        return InvertedListCache(budget_bytes=pages * page_size)

    def _invalidate_list_cache(self) -> None:
        """Drop every hot-term cache entry; called by every write entry point."""
        if self.list_cache is not None:
            self.list_cache.invalidate()

    def invalidate_list_cache_shard(self, shard: "int | None") -> None:
        """Drop one shard's hot-term cache entries (quarantine, reopen)."""
        if self.list_cache is not None:
            self.list_cache.invalidate_shard(shard)

    def _cached_long_postings(self, heapfile, handle, term: str, decode):
        """Serve ``term``'s decoded long list from the hot-term cache.

        Returns the decoded posting list on a hit, fills the cache through
        the accounting-free peek path on a miss, and returns ``None`` when
        the cache is off or the segment exceeds the whole budget (the caller
        falls back to the normal charged page scan).  Decode failures during
        a fill are shard-tagged exactly like scan failures, so the router's
        quarantine logic sees the same fault surface either way.
        """
        cache = self.list_cache
        if cache is None:
            return None
        shard = getattr(handle, "shard", None)
        postings = cache.get(shard, term)
        if postings is not None:
            return postings
        if handle.length > cache.budget_bytes:
            return None
        reader = LazyBytesReader(heapfile.peek_pages(handle))
        postings = list(self._tag_scan_errors(handle, decode(reader)))
        cache.put(shard, term, postings, nbytes=handle.length)
        return postings

    def estimate_term_list_length(self, term: str) -> "int | None":
        """Planner estimate of a term's long-list posting count.

        Served from the blocked header alone — four fixed bytes plus one
        varint on the segment's first page, read through the peek path so the
        estimate costs zero accounted I/O (``pages_read``-free).  Returns
        ``None`` when the method has no per-term segments, the payload
        predates the blocked format, or the header is unreadable; ``0`` when
        the term has no long list at all.
        """
        segments = getattr(self, "_segments", None)
        long_lists = getattr(self, "_long_lists", None)
        if segments is None or long_lists is None:
            return None
        handle = segments.get(term)
        if handle is None:
            return 0
        reader = LazyBytesReader(long_lists.peek_pages(handle))
        try:
            return read_blocked_total(reader)
        except ReproError:
            return None

    def describe_term_plan(self, term: str) -> dict:
        """Planner-visible description of one term's long-list scan.

        The EXPLAIN building block: everything here is served from existing
        in-memory state (segment dictionaries, cache membership) or the
        accounting-free peek path (the blocked header + directory), so
        describing a plan performs **zero accounted storage accesses**.

        ``layout`` is one of ``"blocked"`` (directory-backed payload),
        ``"legacy"`` (pre-blocked flat encoding), ``"btree-clustered"``
        (methods like Score whose postings live in a clustered B+-tree, not
        per-term segments), ``"absent"`` (no long list for this term) or
        ``"unreadable"`` (a blocked payload whose directory failed its CRC).
        """
        plan: dict = {
            "term": term,
            "layout": None,
            "codec": None,
            "blocks": None,
            "estimated_postings": None,
            "segment_bytes": None,
            "with_term_scores": None,
            "cache": None,
        }
        segments = getattr(self, "_segments", None)
        long_lists = getattr(self, "_long_lists", None)
        if segments is None or long_lists is None:
            plan["layout"] = "btree-clustered"
            return plan
        handle = segments.get(term)
        if handle is None:
            plan["layout"] = "absent"
            plan["estimated_postings"] = 0
            return plan
        plan["segment_bytes"] = handle.length
        cache = self.list_cache
        if cache is not None:
            shard = getattr(handle, "shard", None)
            plan["cache"] = {
                "cached": cache.peek(shard, term),
                "cacheable": handle.length <= cache.budget_bytes,
            }
        if not self.blocked_postings:
            plan["layout"] = "legacy"
            return plan
        try:
            directory = peek_blocked_directory(
                LazyBytesReader(long_lists.peek_pages(handle))
            )
        except ReproError:
            plan["layout"] = "unreadable"
            return plan
        if directory is None:
            plan["layout"] = "legacy"
            return plan
        plan["layout"] = "blocked"
        plan["codec"] = directory.codec
        plan["blocks"] = len(directory.blocks)
        plan["estimated_postings"] = directory.total
        plan["with_term_scores"] = directory.with_term_scores
        return plan

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def add_document(self, doc_id: int, score: float,
                     terms: Iterable[str] | None = None) -> None:
        """Stage a document for the bulk build.

        ``terms`` may be supplied to register the document's content with the
        forward index; if omitted the document must already be present there.
        Scores must be non-negative (§4.1).
        """
        self._check_not_finalized("add_document")
        score = self._validate_score(score)
        if terms is not None:
            if self.documents.contains(doc_id):
                raise InvertedIndexError(
                    f"document {doc_id} already exists in the forward index"
                )
            self.documents.add_terms(doc_id, terms)
        elif not self.documents.contains(doc_id):
            raise DocumentNotFoundError(
                f"document {doc_id} has no content in the forward index; "
                "pass terms= or add it to the DocumentStore first"
            )
        document = self.documents.get(doc_id)
        self._staged.append(
            _StagedDocument(doc_id=doc_id, score=score,
                            term_frequencies=dict(document.term_frequencies))
        )
        self.score_table.put(doc_id, score)

    def finalize(self) -> None:
        """Build the immutable long inverted lists from the staged documents."""
        self._check_not_finalized("finalize")
        self._build_long_lists(self._staged)
        self._staged = []
        self._finalized = True

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has been called."""
        return self._finalized

    # ------------------------------------------------------------------
    # Score access
    # ------------------------------------------------------------------

    def current_score(self, doc_id: int) -> float | None:
        """Latest score of a document, or ``None`` if unknown or deleted."""
        if self.deleted_table.contains(doc_id):
            return None
        return self.score_table.get(doc_id, default=None)

    def document_count(self) -> int:
        """Number of live (non-deleted) documents known to the index."""
        return len(self.score_table) - len(self.deleted_table)

    # ------------------------------------------------------------------
    # Updates (method-specific behaviour provided by subclasses)
    # ------------------------------------------------------------------

    def update_score(self, doc_id: int, new_score: float) -> None:
        """Record a new SVR score for a document (Algorithm 1).

        The base implementation performs the part every method shares —
        validating the score and updating the Score table — and then hands the
        old/new scores to :meth:`_after_score_update` for the method-specific
        short/long list maintenance.
        """
        self._check_finalized("update_score")
        new_score = self._validate_score(new_score)
        old_score = self.score_table.get(doc_id, default=None)
        if old_score is None:
            raise DocumentNotFoundError(f"document {doc_id} is not indexed")
        self.score_table.put(doc_id, new_score)
        self.update_stats.score_updates += 1
        self._invalidate_list_cache()
        self._after_score_update(doc_id, old_score, new_score)

    def apply_batch(self, updates: Iterable[tuple[int, float]]) -> int:
        """Apply a window of score updates as one batch (bulk Algorithm 1).

        ``updates`` yields ``(doc_id, new_score)`` pairs in arrival order.  The
        batch is semantically equivalent to calling :meth:`update_score` for
        each pair in sequence — the final Score table, short lists and
        bookkeeping tables are identical — but the write work is grouped: the
        Score table receives one sorted bulk pass over the touched documents,
        and each method's :meth:`_after_score_batch` groups its list
        maintenance per term so the underlying B+-trees descend once per leaf
        run instead of once per key.

        Returns the number of updates applied.  Like a sequential loop, a
        validation failure (negative score, unknown document) raises before
        any update in the batch is applied — the batch is pre-validated, which
        is strictly safer than the sequential loop's fail-midway behaviour.
        """
        self._check_finalized("apply_batch")
        changes: list[tuple[int, float, float]] = []
        pending: dict[int, float] = {}
        for doc_id, new_score in updates:
            new_score = self._validate_score(new_score)
            old_score = pending.get(doc_id)
            if old_score is None:
                old_score = self.score_table.get(doc_id, default=None)
                if old_score is None:
                    raise DocumentNotFoundError(f"document {doc_id} is not indexed")
            changes.append((doc_id, old_score, new_score))
            pending[doc_id] = new_score
        if not changes:
            return 0
        self.score_table.put_many(sorted(pending.items()))
        self.update_stats.score_updates += len(changes)
        self._invalidate_list_cache()
        self._after_score_batch(changes)
        return len(changes)

    def insert_document(self, doc_id: int, terms: Iterable[str], score: float) -> None:
        """Insert a new document after the index has been built (Appendix A.2)."""
        self._check_finalized("insert_document")
        score = self._validate_score(score)
        if self.score_table.contains(doc_id) and not self.deleted_table.contains(doc_id):
            raise InvertedIndexError(f"document {doc_id} already exists")
        if self.documents.contains(doc_id):
            self.documents.remove(doc_id)
        self.documents.add_terms(doc_id, terms)
        self.deleted_table.delete_if_present(doc_id)
        self.score_table.put(doc_id, score)
        self.update_stats.documents_inserted += 1
        self._invalidate_list_cache()
        self._after_insert(doc_id, score)

    def delete_document(self, doc_id: int) -> None:
        """Delete a document (Appendix A.2): mark it deleted in the Score table."""
        self._check_finalized("delete_document")
        if not self.score_table.contains(doc_id) or self.deleted_table.contains(doc_id):
            raise DocumentNotFoundError(f"document {doc_id} is not indexed")
        self.deleted_table.put(doc_id, True)
        self.update_stats.documents_deleted += 1
        self._invalidate_list_cache()
        self._after_delete(doc_id)

    def update_content(self, doc_id: int, new_terms: Iterable[str]) -> None:
        """Replace a document's content (Appendix A.1)."""
        self._check_finalized("update_content")
        if not self.score_table.contains(doc_id) or self.deleted_table.contains(doc_id):
            raise DocumentNotFoundError(f"document {doc_id} is not indexed")
        old_document = self.documents.get(doc_id)
        new_document = Document.from_terms(doc_id, new_terms)
        self.documents.replace(new_document)
        self.update_stats.content_updates += 1
        self._invalidate_list_cache()
        self._after_content_update(doc_id, old_document, new_document)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def prepare_query(self, keywords: Iterable[str], k: int) -> list[str]:
        """Validate a query and return its deduplicated term list.

        Shared by :meth:`query` and the router's parallel fan-out path, so
        both reject exactly the same inputs.
        """
        self._check_finalized("query")
        terms = list(dict.fromkeys(keywords))
        if not terms:
            raise QueryError("a query needs at least one keyword")
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        return terms

    def query(self, keywords: Iterable[str], k: int,
              conjunctive: bool = True) -> QueryResponse:
        """Evaluate a top-k keyword query against the latest scores.

        Parameters
        ----------
        keywords:
            Query terms (already analysed / normalised).
        k:
            Number of results to return.
        conjunctive:
            ``True`` for AND semantics (documents containing every keyword),
            ``False`` for OR semantics (documents containing at least one).
        """
        terms = self.prepare_query(keywords, k)
        stats = QueryStats()
        if query_analysis_armed():
            stats.skip_events = []
        before = self.env.snapshot()
        results = self._execute_query(terms, k, conjunctive, stats)
        delta = self.env.delta_since(before)
        stats.pages_read = delta.page_reads
        stats.page_writes = delta.page_writes
        stats.pool_hits = delta.pool_hits
        stats.estimated_io_ms = delta.cost_ms()
        return QueryResponse(results=tuple(results), stats=stats)

    # ------------------------------------------------------------------
    # Size / cache control (Table 1 and the cold-cache methodology)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def long_list_size_bytes(self) -> int:
        """Total serialized size of the long inverted lists (Table 1)."""

    @abc.abstractmethod
    def drop_long_list_cache(self) -> None:
        """Evict long-list pages from the buffer pool (cold-cache queries, §5.2)."""

    def short_list_size_bytes(self) -> int:
        """Total serialized size of the short lists (0 for methods without them)."""
        return 0

    # ------------------------------------------------------------------
    # Hooks implemented by subclasses
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _build_long_lists(self, staged: list[_StagedDocument]) -> None:
        """Construct the long inverted lists from the staged documents."""

    def _execute_query(self, terms: list[str], k: int, conjunctive: bool,
                       stats: QueryStats) -> list[QueryResult]:
        """Method-specific query evaluation: build every term's scan, merge.

        The two halves are separate hooks so the concurrent router can build
        the scans on the owning shard executors (through stream pumps) and
        still reuse the method's merge loop unchanged; this serial default
        constructs the streams inline, in term order, exactly as the
        pre-refactor monolithic implementations did.
        """
        with span("query.plan", terms=len(terms)):
            threshold = self._make_query_threshold()
            plans = self._term_scan_plans(terms, lambda term_index: stats,
                                          threshold)
            streams = [plan() for _term, plan in plans]
        with span("query.merge", k=k):
            return self._merge_term_streams(streams, terms, k, conjunctive,
                                            stats, threshold)

    def _make_query_threshold(self) -> "HeapThreshold | None":
        """Per-query shared threshold for block-max pruning, or ``None``.

        Created by the query driver *before* the scan plans are built so the
        parallel fan-out can hand the same object to every shard executor —
        the scans only ever read the (monotone) floor, the merge's result
        heap only ever raises it, so sharing it across threads is race-free
        by construction.  ``None`` whenever pruning cannot apply (legacy
        codec, or pruning disabled), which keeps the scans' skip step inert.
        """
        if not (self.blocked_postings and self.block_max_pruning):
            return None
        return HeapThreshold()

    def _tag_scan_errors(self, handle, postings):
        """Attribute hard scan failures to the owning failure domain.

        Long-list payload corruption (a failed block CRC, a torn varint) is
        detected by the codec deep inside a scan iterator, far from any shard
        bookkeeping.  When the segment handle carries a shard id — as it does
        on sharded environments — stamp untagged :class:`ReproError`\\ s with
        it on the way out, so the router's quarantine logic can confine the
        fault to that shard instead of failing the whole query.  Handles
        without a shard (single-shard environments) pass through untouched.
        """
        shard = getattr(handle, "shard", None)
        if shard is None:
            return postings

        def tagged():
            try:
                yield from postings
            except ReproError as exc:
                if getattr(exc, "shard", None) is None:
                    exc.shard = shard
                raise

        return tagged()

    #: Bound on the reusable per-term plan cache.  Plan objects are tiny
    #: (a term string plus one bound callable), so the cap only guards a
    #: pathological ad-hoc workload from growing the dict to vocabulary size.
    _PLAN_CACHE_LIMIT = 4096

    def _term_scan_plans(self, terms: list[str], stats_for,
                         threshold: "HeapThreshold | None" = None) -> "list[tuple[str, Any]]":
        """One ``(routing_term, build_stream)`` pair per query term.

        ``build_stream`` is a zero-argument callable constructing the term's
        scan iterator; *all* storage access of the scan (including any eager
        short-list load at construction time) happens inside it, which is
        what lets the parallel fan-out run it on the shard owning
        ``routing_term``.  ``stats_for(term_index)`` supplies the
        :class:`QueryStats` sink the scan should count into — the serial path
        passes one shared object, the parallel path one per term (merged
        afterwards) so concurrent scans never race on a counter.

        ``threshold`` is the query's shared :class:`HeapThreshold` (or
        ``None``): methods whose long-list rank order admits a sound bound
        consult ``threshold.floor`` before each blocked payload block and end
        the scan when the block's bound cannot make the top-k any more —
        the MaxScore/WAND-style skip step.

        The per-term plan itself (:class:`_TermPlan`, built by the
        method-specific :meth:`_make_term_plan` hook) is reusable and cached
        on the index: repeat queries over the same terms re-invoke the same
        plan objects with fresh query inputs instead of re-allocating the
        planning closures every time.
        """
        cache = self._plan_cache
        pairs: "list[tuple[str, Any]]" = []
        for index, term in enumerate(terms):
            plan = cache.get(term)
            if plan is None:
                if len(cache) >= self._PLAN_CACHE_LIMIT:
                    cache.clear()
                plan = cache[term] = self._make_term_plan(term)
            pairs.append((
                term,
                lambda plan=plan, index=index, stats=stats_for(index):
                    plan(index, stats, threshold),
            ))
        return pairs

    @abc.abstractmethod
    def _make_term_plan(self, term: str) -> "_TermPlan":
        """The reusable scan-plan object for ``term``.

        Called at most once per term per index instance (the base class
        caches the result); the plan must close over nothing but the index
        and the term so it can never go stale — every storage access happens
        inside the stream it builds at invocation time.
        """

    @abc.abstractmethod
    def _merge_term_streams(self, streams: list, terms: list[str], k: int,
                            conjunctive: bool, stats: QueryStats,
                            threshold: "HeapThreshold | None" = None) -> list[QueryResult]:
        """Merge pre-built per-term streams into the ranked top-k results.

        ``streams`` is aligned with ``terms`` and contains whatever
        ``_term_scan_plans`` built (plain iterators in the serial engine,
        stream pumps under the parallel fan-out).  ``threshold`` must be the
        same object the plans received; the merge wires it into its
        :class:`ResultHeap` so the scans see the floor rise as results land."""

    def _after_score_update(self, doc_id: int, old_score: float, new_score: float) -> None:
        """Method-specific reaction to a score update (default: Score table only)."""

    def _after_score_batch(self, changes: list[tuple[int, float, float]]) -> None:
        """Method-specific reaction to a batch of score updates.

        ``changes`` holds ``(doc_id, old_score, new_score)`` triples in arrival
        order; ``old_score`` is the score the document had just before that
        update (including earlier updates in the same batch), so replaying the
        triples through :meth:`_after_score_update` is exactly the sequential
        behaviour.  That replay is the default; methods with per-term list
        maintenance override this to group the writes into sorted bulk passes.
        """
        for doc_id, old_score, new_score in changes:
            self._after_score_update(doc_id, old_score, new_score)

    def _after_insert(self, doc_id: int, score: float) -> None:
        """Method-specific reaction to a document insertion."""
        raise InvertedIndexError(
            f"{self.method_name} does not support incremental document insertion"
        )

    def _after_delete(self, doc_id: int) -> None:
        """Method-specific reaction to a document deletion (default: flag only).

        The deleted flag in the Score table is already set by the caller; the
        default behaviour (ignore postings, filter at query time) is exactly
        the paper's Appendix A.2 scheme.
        """

    def _after_content_update(self, doc_id: int, old_document: Document,
                              new_document: Document) -> None:
        """Method-specific reaction to a content update."""
        raise InvertedIndexError(
            f"{self.method_name} does not support incremental content updates"
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _batch_promote_short_lists(self, changes: list[tuple[int, float, float]],
                                   bookkeeping, short_store,
                                   state_of, payload_of) -> None:
        """Shared batch replay for the threshold-style methods.

        Score-Threshold and Chunk share one update algorithm: a bookkeeping
        table maps ``doc_id -> (list_state, in_short_list)``, and an update
        promotes the document's postings into the short lists only when its
        new state exceeds ``threshold_value_of(list_state)`` (the caller must
        define that method).  Whether an update crosses the threshold depends
        on the state left by earlier updates in the batch, so decisions replay
        sequentially against an in-memory overlay of the bookkeeping table;
        the short-list operations coalesce to the last operation per key and
        flush as sorted bulk passes together with the dirtied rows.

        ``state_of`` maps a score to the method's list state (identity for
        Score-Threshold, ``chunk_of`` for Chunk); ``payload_of(doc_id, term)``
        builds the short-list value for a promoted posting.
        """
        state: dict[int, tuple] = {}
        dirty: set[int] = set()
        short_ops: dict[tuple, tuple | None] = {}
        for doc_id, old_score, new_score in changes:
            entry = state.get(doc_id)
            if entry is None:
                entry = bookkeeping.get(doc_id, default=None)
                if entry is None:
                    entry = (state_of(old_score), False)
                    dirty.add(doc_id)
                state[doc_id] = entry
            list_state, in_short_list = entry
            new_state = state_of(new_score)
            if new_state <= self.threshold_value_of(list_state):
                continue
            for term in self._content_terms(doc_id):
                if in_short_list:
                    short_ops[(term, -list_state, doc_id)] = None
                short_ops[(term, -new_state, doc_id)] = payload_of(doc_id, term)
                self.update_stats.short_list_postings_written += 1
            state[doc_id] = (new_state, True)
            dirty.add(doc_id)
            self.update_stats.short_list_updates += 1
        self._flush_coalesced_ops(short_store, short_ops)
        bookkeeping.put_many(sorted((doc_id, state[doc_id]) for doc_id in dirty))

    @staticmethod
    def _flush_coalesced_ops(store, ops: "dict[tuple, tuple | None]") -> None:
        """Apply coalesced per-key store operations (``None`` = delete) in bulk.

        ``ops`` maps a key to the *last* operation a sequential replay would
        have performed on it; deletes run before puts, each as one sorted
        bulk pass.  The ordering is safe because coalescing already resolved
        any within-batch delete/put sequence on the same key to its final
        outcome.
        """
        deletes = sorted(key for key, op in ops.items() if op is None)
        puts = sorted(
            ((key, op) for key, op in ops.items() if op is not None),
            key=lambda item: item[0],
        )
        store.delete_many(deletes, ignore_missing=True)
        store.put_many(puts)

    def _validate_score(self, score: float) -> float:
        if not isinstance(score, (int, float)) or isinstance(score, bool):
            raise InvertedIndexError(f"scores must be numbers, got {score!r}")
        score = float(score)
        if score < 0:
            raise InvertedIndexError(f"scores must be non-negative, got {score}")
        return score

    def _check_finalized(self, operation: str) -> None:
        if not self._finalized:
            raise InvertedIndexError(
                f"{operation} requires a finalized index; call finalize() first"
            )

    def _check_not_finalized(self, operation: str) -> None:
        if self._finalized:
            raise InvertedIndexError(f"{operation} is only valid before finalize()")

    def _content_terms(self, doc_id: int) -> set[str]:
        """``Content(id)`` from Algorithm 1: the distinct terms of a document."""
        return self.documents.get(doc_id).distinct_terms

    def _live_score(self, doc_id: int) -> float | None:
        """Score-table lookup used during query processing (skips deleted docs).

        With the hot-term cache enabled the lookup is memoised per document:
        scores are immutable between writes (every write entry point
        invalidates the cache, clearing the memo with it), and query
        processing probes the same hot documents over and over.  The memo is
        never consulted on the cache-off fidelity path, whose page accounting
        is pinned by the fig7/table1 fingerprints.
        """
        cache = self.list_cache
        if cache is None:
            if self.deleted_table.contains(doc_id):
                return None
            return self.score_table.get(doc_id, default=None)
        memo = cache.scores
        if doc_id in memo:
            return memo[doc_id]
        if self.deleted_table.contains(doc_id):
            score = None
        else:
            score = self.score_table.get(doc_id, default=None)
        if len(memo) < cache.SCORE_MEMO_LIMIT:
            memo[doc_id] = score
        return score
