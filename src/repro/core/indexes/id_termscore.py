"""The ID-TermScore method (§5.2): the combined-scoring baseline.

This is the ID method with a per-posting term score (the normalised term
frequency), so that queries can rank by the combined function
``f(d) = svr(d) + term_weight * sum_i termscore(t_i, d)`` (§4.3.3).  Like the
plain ID method it must scan every posting of every query term, which is the
behaviour Figure 9 compares Chunk-TermScore against.
"""

from __future__ import annotations

from repro.core.indexes.id_method import IDIndex
from repro.core.posting import Posting
from repro.storage.environment import StorageEnvironment
from repro.text.documents import DocumentStore


class IDTermScoreIndex(IDIndex):
    """ID-ordered long lists whose postings carry normalised-TF term scores.

    Parameters
    ----------
    term_weight:
        Weight of the term-score sum in the combined scoring function.
    """

    method_name = "id_termscore"
    stores_term_scores = True

    def __init__(self, env: StorageEnvironment, documents: DocumentStore,
                 name: str = "svr", term_weight: float = 1.0,
                 blocked_postings: "bool | None" = None,
                 block_max_pruning: bool = True,
                 block_seeking: "bool | None" = None,
                 list_cache_pages: "int | None" = None) -> None:
        super().__init__(env, documents, name=name,
                         blocked_postings=blocked_postings,
                         block_max_pruning=block_max_pruning,
                         block_seeking=block_seeking,
                         list_cache_pages=list_cache_pages)
        self.term_weight = float(term_weight)

    def _normalized_tf(self, doc_id: int, term: str) -> float:
        document = self.documents.get(doc_id)
        if document.length == 0:
            return 0.0
        return document.term_frequency(term) / document.length

    def _make_posting(self, doc_id: int, term: str) -> Posting:
        return Posting(doc_id=doc_id, term_score=self._normalized_tf(doc_id, term))

    def _delta_term_score(self, doc_id: int, term: str) -> float:
        return self._normalized_tf(doc_id, term)

    def _result_score(self, doc_id: int, svr_score: float,
                      found: dict[int, tuple[int, float]], terms: list[str]) -> float:
        term_sum = sum(term_score for _doc_id, term_score in found.values())
        return svr_score + self.term_weight * term_sum
