"""SVR score maintenance: the Score materialised view and its plumbing (§3.2).

Given a :class:`~repro.core.scorespec.ScoreSpec` and the relational database it
reads from, this module creates the incrementally maintained view

    Score(key) = Agg(S1(key), ..., Sm(key))

and forwards every change of a view value to the text index as a score update
(the notification assumed in §4.1).  The TF-IDF term, when the specification
includes one, is *not* part of the view: it is handled at query time by the
TermScore index variants, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.relational.database import Database
from repro.relational.materialized_view import (
    MaterializedView,
    ViewDependency,
    foreign_key_mapper,
    primary_key_mapper,
)
from repro.core.scorespec import ScoreSpec


class ScoreMaintainer:
    """Owns the Score materialised view for one SVR-indexed text column.

    Parameters
    ----------
    database:
        Database holding the base tables the scoring components read.
    name:
        Name of the materialised view (must be unique in the database).
    spec:
        The SVR score specification.
    dependencies:
        ``(table, key_column)`` pairs: changes to ``table`` affect the view key
        stored in that table's ``key_column``.  Use the scored table's primary
        key column for self-dependencies.
    initial_keys:
        Keys used to populate the view when it is created (normally every
        primary-key value of the scored table).
    """

    def __init__(self, database: Database, name: str, spec: ScoreSpec,
                 dependencies: Iterable[tuple[str, str]],
                 initial_keys: Iterable[Any] = ()) -> None:
        self.database = database
        self.spec = spec
        view_dependencies = [
            ViewDependency(table=table, key_mapper=self._mapper_for(table, column))
            for table, column in dependencies
        ]
        self.view: MaterializedView = database.create_materialized_view(
            name=name,
            compute=spec.svr_score,
            dependencies=view_dependencies,
            initial_keys=initial_keys,
        )

    def _mapper_for(self, table: str, column: str):
        schema = self.database.table(table).schema
        if schema.primary_key == column:
            return primary_key_mapper()
        return foreign_key_mapper(column)

    # -- reads --------------------------------------------------------------------

    def score(self, key: Any, default: float = 0.0) -> float:
        """Current SVR score of ``key`` according to the view."""
        value = self.view.get(key, default=None)
        return float(value) if value is not None else default

    def scores(self) -> dict[Any, float]:
        """All view entries as a dictionary (used by tests and examples)."""
        return {key: float(value) for key, value in self.view.items()}

    # -- notification ----------------------------------------------------------------

    def attach_index(self, text_index: Any) -> None:
        """Forward every subsequent view change to ``text_index.update_score``.

        Documents the index does not know (e.g. rows deleted from the scored
        table whose foreign-key rows still change) are ignored.
        """

        def forward(key: Any, _old: Any, new: Any) -> None:
            if new is None:
                return
            if text_index.current_score(key) is None:
                return
            text_index.update_score(key, float(new))

        self.view.subscribe(forward)
