"""Hot-term decoded-postings cache above the buffer pool.

Long inverted lists are immutable binary objects; a query over a hot term
re-reads and re-decodes the same segment every time.  The
:class:`InvertedListCache` keeps the *decoded* posting tuples of the hottest
terms in memory, keyed by ``(shard, term)``, so a repeat scan skips both the
page reads and the codec entirely.

The cache sits strictly *above* the buffer pool and is invisible to it:

* **fills read through the peek path** (:meth:`HeapFile.peek_pages` →
  :meth:`BufferPool.peek`) — no hit counters, no LRU movement, no disk-read
  charges, no admission.  Whether the cache is on or off, the buffer pool
  sees exactly the same access sequence, which is what keeps the fig7/table1
  I/O fingerprints byte-identical with the cache disabled and the
  accounting self-consistent with it enabled.
* **capacity is a byte budget** carved out of ``cache_pages`` at router
  build time (``list_cache_pages`` pages × page size), accounted by the
  encoded segment length — the decoded tuples cost more RAM than that, but
  the encoded length is the stable, workload-independent proxy the budget
  split is expressed in.
* **correctness is generation-based**: every write entry point
  (score updates, batched windows, document insert/delete/content update)
  bumps the cache generation, dropping every entry; shard quarantine and
  ``reopen_shard`` drop that shard's entries.  Long lists are immutable
  between those events, so a generation-valid entry can never be stale.

Entries are LRU-evicted once the budget is exceeded; a single list larger
than the whole budget is never admitted (the scan falls back to the charged
page path).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import InvertedIndexError


def list_cache_pages_from_environ() -> int:
    """Process-wide default hot-term cache budget (``REPRO_LIST_CACHE_PAGES``).

    The value is a page count carved out of the buffer pool's ``cache_pages``
    at router build time; ``0`` (the default) disables the cache, which is
    the fidelity configuration the fig7/table1 fingerprints are pinned to.
    """
    value = os.environ.get("REPRO_LIST_CACHE_PAGES", "0").strip()
    try:
        pages = int(value)
    except ValueError:
        raise InvertedIndexError(
            f"REPRO_LIST_CACHE_PAGES: expected a page count, got {value!r}"
        ) from None
    if pages < 0:
        raise InvertedIndexError(
            f"REPRO_LIST_CACHE_PAGES: page count must be >= 0, got {pages}"
        )
    return pages


@dataclass
class ListCacheStats:
    """Hit/miss/eviction counters (observability; not part of query stats)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0


@dataclass
class InvertedListCache:
    """LRU cache of decoded long-list postings, capped by a byte budget.

    Keys are ``(shard, term)`` pairs (``shard`` is ``None`` on unsharded
    environments); values are the fully decoded posting tuples of one long
    list, charged against the budget at the *encoded* segment length.
    """

    #: Largest number of memoised live-score lookups kept between writes.
    #: The memo is a side-car of the list cache (same lifetime, same
    #: invalidation events), so the cap only guards against a pathological
    #: read-only scan over an enormous corpus growing the dict without bound.
    SCORE_MEMO_LIMIT = 1 << 20

    budget_bytes: int
    used_bytes: int = 0
    stats: ListCacheStats = field(default_factory=ListCacheStats)
    _entries: "OrderedDict[Hashable, tuple[int, list]]" = field(
        default_factory=OrderedDict, repr=False
    )
    #: ``doc_id -> live score`` (``None`` = deleted/absent) memo for the
    #: query-time Score-table lookups.  Valid between writes for the same
    #: reason the list entries are: every write entry point calls
    #: :meth:`invalidate`.  Only consulted when the cache is enabled, so the
    #: cache-off fidelity path never sees it.
    scores: "dict[int, float | None]" = field(default_factory=dict, repr=False)
    #: Optional :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed)
    #: attached by the router.  The local :class:`ListCacheStats` counters are
    #: per-instance and lock-free (fine on the single-writer paths); the
    #: registry aggregates the same events *race-free* and per shard, which
    #: is what dashboards read.
    metrics: "object | None" = field(default=None, repr=False, compare=False)

    def _note(self, name: str, shard: "int | None") -> None:
        metrics = self.metrics
        if metrics is not None:
            if shard is None:
                metrics.inc(name)
            else:
                metrics.inc(name, shard=shard)

    def get(self, shard: "int | None", term: str) -> "list | None":
        """The cached postings for ``(shard, term)``, or ``None`` on a miss."""
        entry = self._entries.get((shard, term))
        if entry is None:
            self.stats.misses += 1
            self._note("list_cache.misses", shard)
            return None
        self._entries.move_to_end((shard, term))
        self.stats.hits += 1
        self._note("list_cache.hits", shard)
        return entry[1]

    def peek(self, shard: "int | None", term: str) -> bool:
        """Whether ``(shard, term)`` is cached, without observing the lookup.

        EXPLAIN's cache-status probe: unlike :meth:`get` it touches neither
        the hit/miss counters nor the LRU order, so describing a plan leaves
        the cache exactly as it found it.
        """
        return (shard, term) in self._entries

    def put(self, shard: "int | None", term: str, postings: list,
            nbytes: int) -> bool:
        """Admit ``postings`` charged at ``nbytes``; ``False`` if over budget."""
        if nbytes > self.budget_bytes:
            return False
        key = (shard, term)
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old[0]
        self._entries[key] = (nbytes, postings)
        self.used_bytes += nbytes
        while self.used_bytes > self.budget_bytes:
            evicted_key, (evicted_bytes, _postings) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_bytes
            self.stats.evictions += 1
            self._note("list_cache.evictions", evicted_key[0])
        return True

    def invalidate(self) -> None:
        """Drop every entry (a write happened somewhere in the index)."""
        if self._entries or self.scores:
            self.stats.invalidations += 1
        self._entries.clear()
        self.scores.clear()
        self.used_bytes = 0

    def invalidate_shard(self, shard: "int | None") -> None:
        """Drop the entries of one shard (quarantine / ``reopen_shard``)."""
        stale = [key for key in self._entries if key[0] == shard]
        if stale or self.scores:
            self.stats.invalidations += 1
        for key in stale:
            nbytes, _postings = self._entries.pop(key)
            self.used_bytes -= nbytes
        # Scores are not shard-partitioned from the index's point of view,
        # so a shard-level event conservatively drops the whole memo.
        self.scores.clear()

    def __len__(self) -> int:
        return len(self._entries)
