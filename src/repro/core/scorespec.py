"""SVR score specification (§3.1).

An SVR score for a text column is specified by a list of scoring components
``S1..Sm`` (each a scalar function of the scored row's primary key) and an
aggregation function ``Agg`` combining the component values.  Optionally the
specification also includes the built-in TF-IDF term score, in which case the
term component is *not* folded into the materialised Score view but handled by
the query algorithm (the TermScore index variants), exactly as §3.2 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ScoreSpecError
from repro.relational.functions import ScalarFunction, weighted_sum


@dataclass(frozen=True)
class ScoreSpec:
    """A complete SVR score specification.

    Attributes
    ----------
    components:
        The scoring component functions ``S1..Sm``; each takes the scored
        row's primary-key value and returns a float.
    aggregate:
        The ``Agg`` function combining the component scores into one number.
        Its arity must equal ``len(components)``.
    include_term_score:
        Whether the final ranking also includes a per-query term score (the
        ``TFIDF()`` built-in of §3.1).  When true, query processing uses the
        combined scoring function ``f = svr + term_weight * sum(term scores)``
        and the TermScore index variants are required.
    term_weight:
        Weight applied to the term-score sum in the combined function (the
        ``s4/2`` coefficient in the paper's example corresponds to 0.5).
    """

    components: tuple[ScalarFunction, ...]
    aggregate: ScalarFunction
    include_term_score: bool = False
    term_weight: float = 1.0
    _names: tuple[str, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        if not self.components:
            raise ScoreSpecError("an SVR specification needs at least one scoring component")
        if self.aggregate.arity != len(self.components):
            raise ScoreSpecError(
                f"aggregate {self.aggregate.name!r} expects {self.aggregate.arity} "
                f"arguments but {len(self.components)} components were given"
            )
        if self.term_weight < 0:
            raise ScoreSpecError("term_weight must be non-negative")
        object.__setattr__(self, "_names", tuple(fn.name for fn in self.components))

    @classmethod
    def weighted(cls, components: Sequence[ScalarFunction], weights: Sequence[float],
                 include_term_score: bool = False, term_weight: float = 1.0) -> "ScoreSpec":
        """Build a spec whose ``Agg`` is a weighted sum of the components.

        This covers the paper's example ``Agg(s1,s2,s3) = s1*100 + s2/2 + s3``.
        """
        if len(components) != len(weights):
            raise ScoreSpecError(
                f"got {len(components)} components but {len(weights)} weights"
            )
        aggregate = weighted_sum("Agg", weights)
        return cls(
            components=tuple(components),
            aggregate=aggregate,
            include_term_score=include_term_score,
            term_weight=term_weight,
        )

    @property
    def component_names(self) -> tuple[str, ...]:
        """Names of the scoring components, in order."""
        return self._names

    def svr_score(self, key: Any) -> float:
        """Evaluate ``Agg(S1(key), ..., Sm(key))`` — the structured part of the score.

        This is the expression the Score materialised view computes per row;
        it never includes the term score.
        """
        component_scores = [float(component(key)) for component in self.components]
        score = float(self.aggregate(*component_scores))
        if score < 0:
            raise ScoreSpecError(
                f"SVR scores must be non-negative (got {score} for key {key!r}); "
                "rescale the aggregation function"
            )
        return score

    def component_scores(self, key: Any) -> dict[str, float]:
        """Per-component score values for a key (useful for explain-style output)."""
        return {fn.name: float(fn(key)) for fn in self.components}
