"""Minimal relational engine substrate.

The SVR paper integrates its text indexes with a relational database: scores
are specified as SQL-bodied functions over base tables, materialised into an
incrementally maintained Score view, and the text component is notified when a
score changes (§3).  This package provides exactly that substrate:

* typed schemas and tables with primary keys and secondary indexes
  (:mod:`repro.relational.schema`, :mod:`repro.relational.table`),
* scalar "SQL-bodied" functions (:mod:`repro.relational.functions`),
* a small select/join/aggregate query evaluator (:mod:`repro.relational.query`),
* incrementally maintained materialised views with change notification
  (:mod:`repro.relational.materialized_view`), and
* a :class:`~repro.relational.database.Database` object tying them together.
"""

from repro.relational.database import Database
from repro.relational.functions import ScalarFunction, SQLBodiedFunction
from repro.relational.materialized_view import MaterializedView
from repro.relational.query import Query
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.triggers import RowChange, TriggerRegistry
from repro.relational.types import ColumnType

__all__ = [
    "ColumnType",
    "Column",
    "Schema",
    "Table",
    "Database",
    "Query",
    "ScalarFunction",
    "SQLBodiedFunction",
    "MaterializedView",
    "RowChange",
    "TriggerRegistry",
]
