"""Column types and value validation for the relational substrate."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    The reproduction only needs the handful of types that appear in the
    paper's example schema (integer keys, float scores/ratings, counters and
    text columns).
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    STRING = "string"
    BOOLEAN = "boolean"

    def validate(self, value: Any) -> Any:
        """Validate (and lightly coerce) ``value`` for this column type.

        Integers are accepted for FLOAT columns and coerced to ``float``;
        booleans are rejected for numeric columns (a common Python pitfall
        because ``bool`` subclasses ``int``).

        Raises
        ------
        SchemaError
            If the value cannot be stored in a column of this type.
        """
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected an integer, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected a number, got {value!r}")
            return float(value)
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected a boolean, got {value!r}")
            return value
        # TEXT and STRING both hold str; TEXT marks columns eligible for
        # full-text indexing.
        if not isinstance(value, str):
            raise SchemaError(f"expected a string, got {value!r}")
        return value

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can participate in numeric aggregates."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)
