"""Incrementally maintained materialised views.

Section 3.2 of the paper maintains SVR scores with a materialised view::

    create materialized view Score as
    SELECT R.Ck, Agg(S1(R.Ck), ..., Sm(R.Ck)) FROM R

and relies on incremental view maintenance so that updates to the structured
base tables (Reviews, Statistics, ...) immediately update the score.  This
module implements the mechanism: a view is a key-value mapping stored in a
B+-tree (small and cache-resident, exactly like the paper's Score table), a
set of *dependencies* saying which base-table changes affect which view keys,
and a list of subscribers that are notified whenever a view value changes —
the hook the SVR text indexes use to learn about score updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ViewError
from repro.relational.triggers import RowChange
from repro.storage.environment import StorageEnvironment

#: Maps a base-table row change to the view keys whose values may have changed.
KeyMapper = Callable[[RowChange], Iterable[Any]]

#: Subscriber signature: (view key, old value or None, new value or None).
ViewSubscriber = Callable[[Any, Any, Any], None]


@dataclass(frozen=True)
class ViewDependency:
    """A single base-table dependency of a materialised view.

    Attributes
    ----------
    table:
        Base-table name whose changes affect the view.
    key_mapper:
        Function translating a :class:`RowChange` on that table into the view
        keys that must be recomputed.
    """

    table: str
    key_mapper: KeyMapper


class MaterializedView:
    """A key -> value view maintained incrementally from base-table changes.

    Parameters
    ----------
    env:
        Storage environment (the view contents live in a B+-tree there).
    name:
        View name.
    compute:
        Function recomputing the view value for a single key from the base
        tables.  Returning ``None`` removes the key from the view.
    dependencies:
        Base tables whose changes trigger recomputation, with key mappers.
    database:
        The owning database; used to register trigger listeners.
    """

    def __init__(
        self,
        env: StorageEnvironment,
        name: str,
        compute: Callable[[Any], Any],
        dependencies: list[ViewDependency],
        database: Any,
    ) -> None:
        if not dependencies:
            raise ViewError(f"view {name!r} must declare at least one dependency")
        self.name = name
        self.compute = compute
        self.dependencies = list(dependencies)
        self._store = env.create_kvstore(f"view.{name}")
        self._subscribers: list[ViewSubscriber] = []
        self._maintenance_recomputes = 0
        for dependency in self.dependencies:
            database.triggers.register(dependency.table, self._make_listener(dependency))

    # -- reads ----------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the view value for ``key`` (or ``default``)."""
        return self._store.get(key, default=default)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs in key order."""
        return self._store.items()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Any) -> bool:
        return self._store.contains(key)

    @property
    def maintenance_recomputes(self) -> int:
        """Number of per-key recomputations performed by incremental maintenance."""
        return self._maintenance_recomputes

    # -- maintenance ---------------------------------------------------------------

    def refresh_key(self, key: Any) -> Any:
        """Recompute the view value for one key, notify subscribers, return it."""
        old_value = self._store.get(key, default=None)
        new_value = self.compute(key)
        self._maintenance_recomputes += 1
        if new_value is None:
            if old_value is not None:
                self._store.delete_if_present(key)
                self._notify(key, old_value, None)
            return None
        if new_value != old_value:
            self._store.put(key, new_value)
            self._notify(key, old_value, new_value)
        return new_value

    def refresh_keys(self, keys: Iterable[Any]) -> None:
        """Recompute the view for several keys (deduplicated)."""
        for key in dict.fromkeys(keys):
            self.refresh_key(key)

    def refresh_full(self, keys: Iterable[Any]) -> None:
        """Recompute the view for an explicit key population.

        Used at view-creation time (the initial population) and by tests that
        compare the incrementally maintained contents with a from-scratch
        computation.
        """
        self.refresh_keys(keys)

    # -- change notification ----------------------------------------------------------

    def subscribe(self, subscriber: ViewSubscriber) -> None:
        """Register a callback invoked whenever a view value changes."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: ViewSubscriber) -> None:
        """Remove a previously registered callback (no-op when absent)."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def _notify(self, key: Any, old_value: Any, new_value: Any) -> None:
        for subscriber in self._subscribers:
            subscriber(key, old_value, new_value)

    def _make_listener(self, dependency: ViewDependency) -> Callable[[RowChange], None]:
        def listener(change: RowChange) -> None:
            affected = list(dependency.key_mapper(change))
            if affected:
                self.refresh_keys(affected)

        return listener


def foreign_key_mapper(column: str) -> KeyMapper:
    """Key mapper for the common "base row carries the view key in ``column``" case.

    For the paper's example, changes to ``Reviews`` affect the view key stored
    in the review row's ``mID`` column; this helper extracts it from both the
    old and new row images (covering updates that move a row between keys).
    """

    def mapper(change: RowChange) -> Iterable[Any]:
        keys = []
        if change.old_row is not None and change.old_row.get(column) is not None:
            keys.append(change.old_row[column])
        if change.new_row is not None and change.new_row.get(column) is not None:
            keys.append(change.new_row[column])
        return keys

    return mapper


def primary_key_mapper() -> KeyMapper:
    """Key mapper for views keyed directly by the base table's primary key."""

    def mapper(change: RowChange) -> Iterable[Any]:
        return [change.key]

    return mapper
