"""Scalar ("SQL-bodied") functions.

Section 3.1 of the paper specifies SVR scoring components as SQL-bodied
functions: ``S1(id)`` returns the average review rating of the movie with
primary key ``id``, ``S2(id)`` the number of visits and so on, and ``Agg``
combines the component scores.  This module provides the Python equivalent:
named scalar functions, plus helpers that build the common "SELECT agg(col)
FROM t WHERE t.fk = id" shape against a :class:`~repro.relational.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import FunctionError


@dataclass(frozen=True)
class ScalarFunction:
    """A named scalar function of fixed arity.

    Attributes
    ----------
    name:
        Function name (used in error messages and the database catalogue).
    arity:
        Number of arguments the function expects.
    fn:
        The Python callable implementing the body.
    """

    name: str
    arity: int
    fn: Callable[..., Any]

    def __call__(self, *args: Any) -> Any:
        if len(args) != self.arity:
            raise FunctionError(
                f"function {self.name!r} expects {self.arity} arguments, got {len(args)}"
            )
        try:
            return self.fn(*args)
        except FunctionError:
            raise
        except Exception as exc:  # pragma: no cover - defensive conversion
            raise FunctionError(f"function {self.name!r} failed: {exc}") from exc


class SQLBodiedFunction(ScalarFunction):
    """A scalar function whose body is a query over database tables.

    Instances are typically created through the factory helpers below
    (:func:`column_lookup`, :func:`aggregate_lookup`) which mirror the SQL
    bodies in the paper's §3.1 example.
    """


_AGGREGATES: dict[str, Callable[[Sequence[float]], float]] = {
    "avg": lambda values: sum(values) / len(values) if values else 0.0,
    "sum": lambda values: float(sum(values)),
    "count": lambda values: float(len(values)),
    "min": lambda values: float(min(values)) if values else 0.0,
    "max": lambda values: float(max(values)) if values else 0.0,
}


def column_lookup(database: Any, name: str, table: str, key_column: str, value_column: str,
                  default: float = 0.0) -> SQLBodiedFunction:
    """Build ``f(id) = SELECT value_column FROM table WHERE key_column = id``.

    When several rows match, the first (in primary-key order) is used; when no
    row matches, ``default`` is returned.  Mirrors the paper's S2/S3 functions
    (``SELECT S.nVisit FROM Statistics S WHERE S.mID = id``).
    """

    def body(key: Any) -> float:
        for row in database.table(table).lookup_by_index(key_column, key):
            value = row.get(value_column)
            return float(value) if value is not None else default
        return default

    return SQLBodiedFunction(name=name, arity=1, fn=body)


def aggregate_lookup(database: Any, name: str, table: str, key_column: str,
                     value_column: str, aggregate: str = "avg",
                     default: float = 0.0) -> SQLBodiedFunction:
    """Build ``f(id) = SELECT agg(value_column) FROM table WHERE key_column = id``.

    Mirrors the paper's S1 function
    (``SELECT avg(R.rating) FROM Reviews R WHERE R.mID = id``).

    Parameters
    ----------
    aggregate:
        One of ``avg``, ``sum``, ``count``, ``min``, ``max``.
    default:
        Returned when no row matches.
    """
    agg_fn = _AGGREGATES.get(aggregate)
    if agg_fn is None:
        raise FunctionError(
            f"unknown aggregate {aggregate!r}; expected one of {sorted(_AGGREGATES)}"
        )

    def body(key: Any) -> float:
        values = [
            float(row[value_column])
            for row in database.table(table).lookup_by_index(key_column, key)
            if row.get(value_column) is not None
        ]
        if not values:
            return default
        return agg_fn(values)

    return SQLBodiedFunction(name=name, arity=1, fn=body)


def weighted_sum(name: str, weights: Sequence[float]) -> ScalarFunction:
    """Build an aggregation function ``Agg(s1..sm) = sum(w_i * s_i)``.

    The paper's example uses ``Agg(s1, s2, s3) = s1*100 + s2/2 + s3`` which is
    ``weighted_sum("Agg", [100, 0.5, 1])``.
    """
    weight_list = [float(w) for w in weights]

    def body(*scores: float) -> float:
        return sum(w * s for w, s in zip(weight_list, scores))

    return ScalarFunction(name=name, arity=len(weight_list), fn=body)
