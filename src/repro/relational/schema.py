"""Column and schema definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes
    ----------
    name:
        Column name (unique within the schema).
    type:
        Column type.
    nullable:
        Whether ``None`` is an acceptable value.
    """

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        """Validate a value destined for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        return self.type.validate(value)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns plus a primary-key designation.

    Attributes
    ----------
    columns:
        Column definitions, in declaration order.
    primary_key:
        Name of the primary-key column.  The primary key is implicitly
        non-nullable.
    """

    columns: tuple[Column, ...]
    primary_key: str
    _by_name: Mapping[str, Column] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        by_name = {column.name: column for column in self.columns}
        if self.primary_key not in by_name:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of the schema"
            )
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def build(cls, columns: list[Column] | tuple[Column, ...], primary_key: str) -> "Schema":
        """Convenience constructor accepting a list of columns."""
        return cls(columns=tuple(columns), primary_key=primary_key)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column definition by name."""
        column = self._by_name.get(name)
        if column is None:
            raise UnknownColumnError(f"unknown column {name!r}")
        return column

    def has_column(self, name: str) -> bool:
        """Whether the schema defines a column called ``name``."""
        return name in self._by_name

    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a full row and return a normalised copy.

        Missing nullable columns are filled with ``None``; unknown keys raise.
        The primary key must be present and non-null.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise UnknownColumnError(f"row has unknown columns: {sorted(unknown)}")
        validated: dict[str, Any] = {}
        for column in self.columns:
            value = row.get(column.name)
            if column.name == self.primary_key and value is None:
                raise SchemaError("primary key value must be present and non-null")
            validated[column.name] = column.validate(value)
        return validated

    def validate_update(self, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a partial update (column -> new value)."""
        unknown = set(changes) - set(self._by_name)
        if unknown:
            raise UnknownColumnError(f"update touches unknown columns: {sorted(unknown)}")
        if self.primary_key in changes:
            raise SchemaError("primary key columns cannot be updated in place")
        return {
            name: self._by_name[name].validate(value) for name, value in changes.items()
        }
