"""Predicates and projections for the mini query engine.

These helpers keep :mod:`repro.relational.query` readable: a predicate is any
callable from a row mapping to a boolean, and this module supplies composable
constructors for the comparisons the examples and benchmarks need.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

Row = Mapping[str, Any]
Predicate = Callable[[Row], bool]


def eq(column: str, value: Any) -> Predicate:
    """``row[column] == value``"""
    return lambda row: row.get(column) == value


def ne(column: str, value: Any) -> Predicate:
    """``row[column] != value``"""
    return lambda row: row.get(column) != value


def gt(column: str, value: Any) -> Predicate:
    """``row[column] > value`` (null-safe: null never satisfies)."""
    return lambda row: row.get(column) is not None and row[column] > value


def ge(column: str, value: Any) -> Predicate:
    """``row[column] >= value`` (null-safe)."""
    return lambda row: row.get(column) is not None and row[column] >= value


def lt(column: str, value: Any) -> Predicate:
    """``row[column] < value`` (null-safe)."""
    return lambda row: row.get(column) is not None and row[column] < value


def le(column: str, value: Any) -> Predicate:
    """``row[column] <= value`` (null-safe)."""
    return lambda row: row.get(column) is not None and row[column] <= value


def is_null(column: str) -> Predicate:
    """``row[column] IS NULL``"""
    return lambda row: row.get(column) is None


def in_(column: str, values: Sequence[Any]) -> Predicate:
    """``row[column] IN values``"""
    allowed = set(values)
    return lambda row: row.get(column) in allowed


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates (vacuously true when empty)."""
    return lambda row: all(predicate(row) for predicate in predicates)


def or_(*predicates: Predicate) -> Predicate:
    """Disjunction of predicates (vacuously false when empty)."""
    return lambda row: any(predicate(row) for predicate in predicates)


def not_(predicate: Predicate) -> Predicate:
    """Negation of a predicate."""
    return lambda row: not predicate(row)


def project(row: Row, columns: Sequence[str]) -> dict[str, Any]:
    """Return a copy of ``row`` restricted to ``columns``."""
    return {column: row.get(column) for column in columns}
