"""Relational tables with primary keys and secondary B+-tree indexes.

Row payloads are serialised into heap-file segments; a primary-key B+-tree maps
key values to segment handles and optional secondary indexes map column values
to primary keys.  All accesses therefore flow through the shared buffer pool
and show up in the experiment I/O accounting, just as they would in the
BerkeleyDB-backed implementation the paper measured.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConstraintError, UnknownColumnError
from repro.relational.schema import Schema
from repro.relational.triggers import ChangeKind, RowChange, TriggerRegistry
from repro.storage.environment import StorageEnvironment


class Table:
    """A table with a primary key, optional secondary indexes and triggers.

    Parameters
    ----------
    env:
        Storage environment providing the heap file and B+-trees.
    name:
        Table name (unique within the database).
    schema:
        Column definitions and primary-key designation.
    triggers:
        Registry receiving a :class:`RowChange` after every committed change.
    """

    def __init__(
        self,
        env: StorageEnvironment,
        name: str,
        schema: Schema,
        triggers: TriggerRegistry | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.schema = schema
        self.triggers = triggers if triggers is not None else TriggerRegistry()
        self._rows = env.create_heapfile(f"{name}.rows")
        self._pk_index = env.create_kvstore(f"{name}.pk")
        self._secondary: dict[str, Any] = {}

    # -- indexes -------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Create a secondary index on ``column`` (populating it from existing rows)."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(f"{self.name}: unknown column {column!r}")
        if column in self._secondary:
            return
        index = self.env.create_kvstore(f"{self.name}.idx.{column}")
        self._secondary[column] = index
        for row in self.scan():
            value = row.get(column)
            if value is not None:
                index.put((value, row[self.schema.primary_key]), None)

    def indexed_columns(self) -> list[str]:
        """Columns that currently have a secondary index."""
        return sorted(self._secondary)

    # -- row operations --------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> None:
        """Insert a new row (raises on duplicate primary key)."""
        validated = self.schema.validate_row(row)
        key = validated[self.schema.primary_key]
        if self._pk_index.contains(key):
            raise ConstraintError(f"{self.name}: duplicate primary key {key!r}")
        handle = self._rows.write(pickle.dumps(validated, protocol=pickle.HIGHEST_PROTOCOL))
        self._pk_index.put(key, handle)
        for column, index in self._secondary.items():
            value = validated.get(column)
            if value is not None:
                index.put((value, key), None)
        self.triggers.notify(
            RowChange(self.name, ChangeKind.INSERT, key, old_row=None, new_row=validated)
        )

    def get(self, key: Any) -> dict[str, Any] | None:
        """Return the row with primary key ``key``, or ``None``."""
        handle = self._pk_index.get(key, default=None)
        if handle is None:
            return None
        return pickle.loads(self._rows.read(handle))

    def update(self, key: Any, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Apply a partial update to the row with primary key ``key``.

        Returns the new row image.  Raises ``ConstraintError`` when the row
        does not exist.
        """
        validated_changes = self.schema.validate_update(changes)
        handle = self._pk_index.get(key, default=None)
        if handle is None:
            raise ConstraintError(f"{self.name}: no row with primary key {key!r}")
        old_row = pickle.loads(self._rows.read(handle))
        new_row = dict(old_row)
        new_row.update(validated_changes)
        if new_row == old_row:
            return new_row
        new_handle = self._rows.write(
            pickle.dumps(new_row, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._rows.delete(handle)
        self._pk_index.put(key, new_handle)
        for column, index in self._secondary.items():
            old_value = old_row.get(column)
            new_value = new_row.get(column)
            if old_value != new_value:
                if old_value is not None:
                    index.delete_if_present((old_value, key))
                if new_value is not None:
                    index.put((new_value, key), None)
        self.triggers.notify(
            RowChange(self.name, ChangeKind.UPDATE, key, old_row=old_row, new_row=new_row)
        )
        return new_row

    def delete(self, key: Any) -> dict[str, Any]:
        """Delete the row with primary key ``key`` and return its old image."""
        handle = self._pk_index.get(key, default=None)
        if handle is None:
            raise ConstraintError(f"{self.name}: no row with primary key {key!r}")
        old_row = pickle.loads(self._rows.read(handle))
        self._rows.delete(handle)
        self._pk_index.delete(key)
        for column, index in self._secondary.items():
            value = old_row.get(column)
            if value is not None:
                index.delete_if_present((value, key))
        self.triggers.notify(
            RowChange(self.name, ChangeKind.DELETE, key, old_row=old_row, new_row=None)
        )
        return old_row

    def upsert(self, row: Mapping[str, Any]) -> None:
        """Insert the row, or update it if its primary key already exists."""
        key = row.get(self.schema.primary_key)
        if key is not None and self._pk_index.contains(key):
            changes = {k: v for k, v in row.items() if k != self.schema.primary_key}
            self.update(key, changes)
        else:
            self.insert(row)

    # -- scans -----------------------------------------------------------------

    def scan(self) -> Iterator[dict[str, Any]]:
        """Iterate all rows in primary-key order."""
        for _key, handle in self._pk_index.items():
            yield pickle.loads(self._rows.read(handle))

    def scan_where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> Iterator[dict[str, Any]]:
        """Iterate rows satisfying ``predicate`` in primary-key order."""
        for row in self.scan():
            if predicate(row):
                yield row

    def lookup_by_index(self, column: str, value: Any) -> Iterator[dict[str, Any]]:
        """Iterate rows whose indexed ``column`` equals ``value``.

        Falls back to a full scan when the column has no secondary index.
        """
        index = self._secondary.get(column)
        if index is None:
            yield from self.scan_where(lambda row: row.get(column) == value)
            return
        for (_value, key), _ in index.prefix_items((value,)):
            row = self.get(key)
            if row is not None:
                yield row

    def keys(self) -> Iterator[Any]:
        """Iterate primary-key values in order."""
        for key, _handle in self._pk_index.items():
            yield key

    def __len__(self) -> int:
        return len(self._pk_index)

    def __contains__(self, key: Any) -> bool:
        return self._pk_index.contains(key)
