"""Row-change events and trigger registration.

Materialised views (and through them the SVR text indexes) must learn about
every insert, update and delete on their base tables.  The paper assumes "the
index structures are notified whenever the score of a document is updated in
the materialized view" (§4.1); this module provides the notification plumbing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Mapping


class ChangeKind(enum.Enum):
    """The three kinds of base-table row changes."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class RowChange:
    """A single row-level change on a table.

    Attributes
    ----------
    table:
        Name of the table the change applies to.
    kind:
        Insert, update or delete.
    key:
        Primary-key value of the affected row.
    old_row / new_row:
        Row images before and after the change.  ``old_row`` is ``None`` for
        inserts and ``new_row`` is ``None`` for deletes.
    """

    table: str
    kind: ChangeKind
    key: Any
    old_row: Mapping[str, Any] | None
    new_row: Mapping[str, Any] | None

    def changed_columns(self) -> set[str]:
        """Columns whose values differ between the old and new row images."""
        if self.old_row is None or self.new_row is None:
            columns = self.new_row or self.old_row or {}
            return set(columns)
        return {
            name
            for name in set(self.old_row) | set(self.new_row)
            if self.old_row.get(name) != self.new_row.get(name)
        }


Listener = Callable[[RowChange], None]


class TriggerRegistry:
    """Registry of row-change listeners, keyed by table name.

    Listeners registered for a table are invoked synchronously, in
    registration order, after each committed row change.  A listener
    registered under the table name ``"*"`` receives changes for every table.
    """

    def __init__(self) -> None:
        self._listeners: dict[str, list[Listener]] = {}

    def register(self, table: str, listener: Listener) -> None:
        """Register ``listener`` for changes on ``table`` (or ``"*"``)."""
        self._listeners.setdefault(table, []).append(listener)

    def unregister(self, table: str, listener: Listener) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        listeners = self._listeners.get(table, [])
        if listener in listeners:
            listeners.remove(listener)

    def notify(self, change: RowChange) -> None:
        """Deliver ``change`` to every listener registered for its table."""
        for listener in self._listeners.get(change.table, []):
            listener(change)
        for listener in self._listeners.get("*", []):
            listener(change)

    def listener_count(self, table: str) -> int:
        """Number of listeners registered for ``table`` (excluding ``"*"``)."""
        return len(self._listeners.get(table, []))
