"""A small select / join / aggregate / order-by / limit query evaluator.

The reproduction does not need a SQL parser; it needs the relational algebra
that the paper's SQL/MM example exercises — selection, projection, equi-joins
on foreign keys, grouping with aggregates, ordering and LIMIT/FETCH FIRST.
:class:`Query` provides those as a fluent builder over base tables, and is the
piece that the SVR manager combines with keyword-search scores to answer the
mixed structured/text queries of §3.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import RelationalError
from repro.relational.expressions import Predicate, project

Row = dict[str, Any]

_AGGREGATES: dict[str, Callable[[list[float]], float]] = {
    "avg": lambda values: sum(values) / len(values) if values else 0.0,
    "sum": lambda values: float(sum(values)),
    "count": lambda values: float(len(values)),
    "min": lambda values: float(min(values)) if values else 0.0,
    "max": lambda values: float(max(values)) if values else 0.0,
}


class Query:
    """A lazily evaluated pipeline over an iterable of rows.

    Build a query from a table (or any row iterable), chain transformation
    methods and call :meth:`rows` (or iterate) to execute it.  Each method
    returns a new :class:`Query`, so partially built queries can be reused.
    """

    def __init__(self, source: Iterable[Mapping[str, Any]] | Callable[[], Iterator[Row]]):
        if callable(source):
            self._source = source
        else:
            materialised = [dict(row) for row in source]
            self._source = lambda: iter(materialised)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_table(cls, table: Any) -> "Query":
        """Create a query scanning all rows of a table-like object with ``scan()``."""
        return cls(lambda: (dict(row) for row in table.scan()))

    # -- relational operators -----------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """Keep only rows satisfying ``predicate``."""
        source = self._source
        return Query(lambda: (row for row in source() if predicate(row)))

    def select(self, columns: Sequence[str]) -> "Query":
        """Project each row onto ``columns``."""
        source = self._source
        return Query(lambda: (project(row, columns) for row in source()))

    def extend(self, column: str, fn: Callable[[Row], Any]) -> "Query":
        """Add a computed column ``column = fn(row)`` to every row."""
        source = self._source

        def generate() -> Iterator[Row]:
            for row in source():
                extended = dict(row)
                extended[column] = fn(row)
                yield extended

        return Query(generate)

    def join(self, other: "Query | Any", left_on: str, right_on: str,
             prefix: str = "") -> "Query":
        """Equi-join with ``other`` on ``left_on == right_on`` (hash join).

        Columns from the right side are optionally prefixed to avoid clashes.
        Rows without a match are dropped (inner join).
        """
        right_query = other if isinstance(other, Query) else Query.from_table(other)
        source = self._source

        def generate() -> Iterator[Row]:
            build: dict[Any, list[Row]] = {}
            for row in right_query.rows():
                build.setdefault(row.get(right_on), []).append(row)
            for left_row in source():
                for right_row in build.get(left_row.get(left_on), []):
                    merged = dict(left_row)
                    for name, value in right_row.items():
                        merged[f"{prefix}{name}"] = value
                    yield merged

        return Query(generate)

    def group_by(self, keys: Sequence[str],
                 aggregates: Mapping[str, tuple[str, str]]) -> "Query":
        """Group rows by ``keys`` and compute aggregates.

        ``aggregates`` maps output column names to ``(aggregate, column)``
        pairs, e.g. ``{"avg_rating": ("avg", "rating")}``.
        """
        for output, (aggregate, _column) in aggregates.items():
            if aggregate not in _AGGREGATES:
                raise RelationalError(
                    f"unknown aggregate {aggregate!r} for output column {output!r}"
                )
        source = self._source

        def generate() -> Iterator[Row]:
            groups: dict[tuple[Any, ...], list[Row]] = {}
            for row in source():
                group_key = tuple(row.get(key) for key in keys)
                groups.setdefault(group_key, []).append(row)
            for group_key, rows in groups.items():
                result: Row = dict(zip(keys, group_key))
                for output, (aggregate, column) in aggregates.items():
                    values = [
                        float(row[column]) for row in rows if row.get(column) is not None
                    ]
                    result[output] = _AGGREGATES[aggregate](values)
                yield result

        return Query(generate)

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort rows by ``column`` (nulls last)."""
        source = self._source

        def generate() -> Iterator[Row]:
            rows = list(source())
            rows.sort(
                key=lambda row: (row.get(column) is None, row.get(column)),
                reverse=descending,
            )
            return iter(rows)

        return Query(generate)

    def limit(self, count: int) -> "Query":
        """Keep only the first ``count`` rows (SQL ``FETCH FIRST count ROWS``)."""
        if count < 0:
            raise RelationalError(f"limit must be non-negative, got {count}")
        source = self._source

        def generate() -> Iterator[Row]:
            for index, row in enumerate(source()):
                if index >= count:
                    return
                yield row

        return Query(generate)

    # -- execution ---------------------------------------------------------------

    def rows(self) -> list[Row]:
        """Execute the pipeline and return all result rows."""
        return list(self._source())

    def __iter__(self) -> Iterator[Row]:
        return self._source()

    def count(self) -> int:
        """Number of result rows."""
        return sum(1 for _row in self._source())

    def scalar(self, column: str) -> Any:
        """Value of ``column`` in the first result row (or ``None`` if empty)."""
        for row in self._source():
            return row.get(column)
        return None
