"""The database object: tables, views, functions and trigger wiring."""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import RelationalError, UnknownTableError
from repro.relational.functions import ScalarFunction
from repro.relational.materialized_view import MaterializedView, ViewDependency
from repro.relational.query import Query
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.triggers import TriggerRegistry
from repro.relational.types import ColumnType
from repro.storage.environment import StorageEnvironment


class Database:
    """A collection of tables, materialised views and scalar functions.

    Parameters
    ----------
    env:
        Storage environment shared by every table and view.  A fresh one is
        created when omitted.
    """

    def __init__(self, env: StorageEnvironment | None = None) -> None:
        self.env = env if env is not None else StorageEnvironment()
        self.triggers = TriggerRegistry()
        self._tables: dict[str, Table] = {}
        self._views: dict[str, MaterializedView] = {}
        self._functions: dict[str, ScalarFunction] = {}

    # -- tables -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[tuple[str, ColumnType] | Column],
        primary_key: str,
    ) -> Table:
        """Create a table from ``(name, type)`` pairs or :class:`Column` objects."""
        if name in self._tables:
            raise RelationalError(f"table {name!r} already exists")
        column_objects = [
            column if isinstance(column, Column) else Column(name=column[0], type=column[1])
            for column in columns
        ]
        schema = Schema.build(column_objects, primary_key=primary_key)
        table = Table(self.env, name=name, schema=schema, triggers=self.triggers)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise UnknownTableError(f"unknown table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    def query(self, table: str) -> Query:
        """Start a :class:`Query` scanning ``table``."""
        return Query.from_table(self.table(table))

    # -- materialised views -------------------------------------------------------

    def create_materialized_view(
        self,
        name: str,
        compute: Callable[[Any], Any],
        dependencies: list[ViewDependency],
        initial_keys: Iterable[Any] = (),
    ) -> MaterializedView:
        """Create an incrementally maintained view and populate it.

        ``initial_keys`` is the key population used for the initial refresh
        (typically the primary keys of the table being scored).
        """
        if name in self._views:
            raise RelationalError(f"view {name!r} already exists")
        for dependency in dependencies:
            if dependency.table not in self._tables:
                raise UnknownTableError(
                    f"view {name!r} depends on unknown table {dependency.table!r}"
                )
        view = MaterializedView(
            self.env, name=name, compute=compute, dependencies=dependencies, database=self
        )
        view.refresh_full(initial_keys)
        self._views[name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        """Look up a materialised view by name."""
        view = self._views.get(name)
        if view is None:
            raise RelationalError(f"unknown view {name!r}")
        return view

    def view_names(self) -> list[str]:
        """Sorted names of all materialised views."""
        return sorted(self._views)

    # -- functions --------------------------------------------------------------------

    def register_function(self, function: ScalarFunction) -> None:
        """Register a scalar function under its name."""
        if function.name in self._functions:
            raise RelationalError(f"function {function.name!r} already registered")
        self._functions[function.name] = function

    def function(self, name: str) -> ScalarFunction:
        """Look up a scalar function by name."""
        function = self._functions.get(name)
        if function is None:
            raise RelationalError(f"unknown function {name!r}")
        return function

    def function_names(self) -> list[str]:
        """Sorted names of all registered functions."""
        return sorted(self._functions)
